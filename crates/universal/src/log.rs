//! The wait-free operation log: Herlihy's universal construction over
//! one-shot consensus cells.
//!
//! Every log slot is a fresh consensus cell from a [`CellFactory`].
//! A process announces its operation's payload, then walks the log
//! proposing its operation id at each slot; whatever the slot decides is
//! applied to the process's local replica, and the process keeps walking
//! until a slot decides *its* operation. Because each slot's cell is
//! consensus, all replicas apply the same operation sequence — provided
//! the cells actually are consensus, which under functional faults is
//! exactly what Section 4's constructions buy (and what naive cells
//! lose — experiment E10).
//!
//! Both classic formulations are provided: the **lock-free** one
//! ([`UniversalLog::new`] — some process completes whenever a slot is
//! decided) and the **wait-free** one with Herlihy-style helping
//! ([`UniversalLog::with_helping`] — slot `k` proposes the pending
//! operation of process `k mod n`, so every announced operation is
//! decided within a bounded number of slots no matter how its owner is
//! scheduled).
//!
//! # Bounded logs: checkpoint + truncation
//!
//! An append-only log grows without bound. With
//! [`UniversalLog::checkpoint_every`] the log periodically replaces its
//! decided prefix by a snapshot and frees the prefix's cells and
//! announce entries. The subtlety is that *truncation must itself be
//! agreed on*: if replicas disagreed about which prefix was dropped,
//! a replica could silently skip (or re-apply) operations. So every
//! checkpoint boundary is decided by a dedicated **boundary consensus
//! cell** from the same factory as the log's cells — replicas agree on
//! the snapshot slot exactly as they agree on every operation, and a
//! boundary cell deciding anything else is proof the cells are broken
//! (the decision is recorded via [`UniversalLog::divergence_detected`]
//! and truncation is disabled rather than risking data loss). Physical
//! truncation additionally waits until every live [`Handle`] has passed
//! the snapshot slot (per-handle watermarks), so no replica ever needs
//! a dropped cell or a retired announce entry.

use crate::consensus_cell::CellFactory;
use crate::object::Replicated;
use ff_consensus::Consensus;
use ff_spec::Input;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bits of an operation id reserved for the sequence number.
const SEQ_BITS: u32 = 22;

/// An operation id: proposer plus per-proposer sequence number, packed
/// into the `u32` a consensus cell decides.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// Proposing process (< 1024).
    pub pid: u16,
    /// Per-proposer sequence number (< 2²²).
    pub seq: u32,
}

impl OpId {
    /// Pack into a consensus input.
    pub fn pack(self) -> u32 {
        assert!(self.pid < 1 << 10, "pid {} exceeds 10 bits", self.pid);
        assert!(
            self.seq < 1 << SEQ_BITS,
            "seq {} exceeds {} bits",
            self.seq,
            SEQ_BITS
        );
        ((self.pid as u32) << SEQ_BITS) | self.seq
    }

    /// Unpack from a consensus decision.
    pub fn unpack(v: u32) -> Self {
        OpId {
            pid: (v >> SEQ_BITS) as u16,
            seq: v & ((1 << SEQ_BITS) - 1),
        }
    }
}

/// FNV-1a basis for the rolling decided-opid digest.
const DIGEST_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one decided opid into a rolling FNV-1a digest. Replicas that
/// applied the same decided sequence have equal digests; a cheap,
/// O(1)-memory stand-in for comparing full applied logs once prefixes
/// have been truncated.
fn digest_step(digest: u64, opid: u32) -> u64 {
    let mut d = digest;
    for b in opid.to_le_bytes() {
        d = (d ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    d
}

/// An announced operation record: a single encoded op word, or a
/// combiner's batch of op words. A batch is decided by **one** consensus
/// decision (its opid occupies one slot) but is applied op-by-op on
/// every replica, so `Replicated` semantics, checkpoint boundaries, and
/// the decided-opid digests are unchanged — the digest folds the
/// record's opid once, and replicas agree on the record's contents
/// because the announce happens-before the propose.
///
/// Public because it is also the unit of durability: a [`SlotSink`]
/// receives each decided slot's record, and recovery feeds records back
/// through [`Handle::ingest_recovered`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotRecord {
    /// One encoded op word.
    Single(u64),
    /// A combiner's batch of encoded op words (applied op-by-op).
    Batch(Arc<[u64]>),
}

/// Receives the decided log as it becomes final: every decided slot
/// exactly once, in slot order, plus every installed checkpoint — the
/// seam a write-ahead log plugs into. Implementations must not call
/// back into the log (they run under the log's durability lock).
pub trait SlotSink: Send + Sync {
    /// Slot `slot` decided `record` under operation id `opid`;
    /// `digest_after` is the rolling decided-opid digest over slots
    /// `[0, slot]`.
    fn slot_decided(&self, slot: usize, opid: u32, record: &SlotRecord, digest_after: u64);

    /// A checkpoint snapshot covering slots `[0, slot)` was installed,
    /// carrying `digest` over the covered prefix and the
    /// [`Replicated::encode_snapshot`] words. Called after every slot
    /// below `slot` has been delivered via
    /// [`SlotSink::slot_decided`].
    fn checkpoint_installed(&self, slot: usize, digest: u64, words: &[u64]);
}

/// Exactly-once, in-order delivery state for the [`SlotSink`]: slots
/// are *applied* concurrently by many handles, so decided records are
/// buffered by slot and drained as a contiguous run.
#[derive(Default)]
struct DurableCursor {
    /// The next slot to deliver (everything below was delivered, or was
    /// covered by a recovered snapshot).
    next: usize,
    /// Out-of-order decided slots awaiting delivery.
    buffered: BTreeMap<usize, (u32, SlotRecord, u64)>,
}

/// The log's cell storage: slot `k` lives at `cells[k - base]`; slots
/// below `base` have been truncated away by a checkpoint.
struct CellChain {
    base: usize,
    cells: Vec<Arc<dyn Consensus>>,
}

/// The latest installed checkpoint.
struct Snapshot {
    /// First slot NOT covered by the snapshot (replicas resume here).
    slot: usize,
    /// Rolling digest over the decided opids of slots `[0, slot)`.
    digest: u64,
    /// The [`Replicated::encode_snapshot`] words.
    words: Arc<Vec<u64>>,
    /// Opids decided below `slot` whose announce entries can be freed
    /// once every live handle has passed `slot`.
    retired: Vec<u32>,
}

/// What a registering handle bootstraps from: the snapshot's slot, its
/// rolling digest, and the encoded state words.
type SnapshotView = (usize, u64, Arc<Vec<u64>>);

/// Checkpoint bookkeeping, all under one lock so snapshot reads and
/// watermark registration are atomic with respect to truncation.
#[derive(Default)]
struct CheckpointState {
    snapshot: Option<Snapshot>,
    /// Digest observed at each crossed boundary slot (pruned below the
    /// snapshot slot at truncation time).
    boundary_digests: Vec<(usize, u64)>,
    /// Per-live-handle progress: handle key → its `next_slot`.
    watermarks: HashMap<u64, usize>,
    installed: u64,
}

/// The shared core: the cell chain plus the announce table.
pub struct UniversalLog {
    factory: Arc<dyn CellFactory>,
    cells: Mutex<CellChain>,
    announce: Mutex<HashMap<u32, SlotRecord>>,
    /// Helping (Herlihy's wait-free upgrade): when `Some(n)`, slot `k`
    /// is reserved for helping process `k mod n`'s pending operation.
    helping_n: Option<usize>,
    /// Pending (announced, not yet decided) operation per process.
    pending: Mutex<HashMap<u16, u32>>,
    /// Checkpoint interval in slots (`None` → unbounded append-only log).
    interval: Option<usize>,
    /// One consensus cell per checkpoint boundary, deciding the slot the
    /// prefix is cut at (never truncated — one cell per `interval` slots).
    boundaries: Mutex<Vec<Arc<dyn Consensus>>>,
    ckpt: Mutex<CheckpointState>,
    /// Poison flag: the cells were caught misbehaving (boundary cell
    /// decided a foreign value, digest mismatch between replicas, or a
    /// decided-but-never-announced opid). Truncation stops permanently.
    diverged: AtomicBool,
    next_handle_key: AtomicU64,
    /// Exactly-once in-order delivery cursor for the durability sink.
    durable: Mutex<DurableCursor>,
    /// The attached durability sink, if any (see [`SlotSink`]).
    sink: Mutex<Option<Arc<dyn SlotSink>>>,
    /// Per-pid minimum sequence numbers after recovery: replayed opids
    /// reserve their `(pid, seq)` pairs so post-recovery handles never
    /// mint an opid that still resolves to a recovered record.
    seq_floors: Mutex<HashMap<u16, u32>>,
}

impl UniversalLog {
    /// A fresh log over `factory`'s cells, in the lock-free formulation
    /// (no helping: some process completes whenever a slot is decided,
    /// but an individual process can starve under an unfair scheduler).
    pub fn new(factory: Arc<dyn CellFactory>) -> Self {
        Self::build(factory, None)
    }

    fn build(factory: Arc<dyn CellFactory>, helping_n: Option<usize>) -> Self {
        UniversalLog {
            factory,
            cells: Mutex::new(CellChain {
                base: 0,
                cells: Vec::new(),
            }),
            announce: Mutex::new(HashMap::new()),
            helping_n,
            pending: Mutex::new(HashMap::new()),
            interval: None,
            boundaries: Mutex::new(Vec::new()),
            ckpt: Mutex::new(CheckpointState::default()),
            diverged: AtomicBool::new(false),
            next_handle_key: AtomicU64::new(0),
            durable: Mutex::new(DurableCursor::default()),
            sink: Mutex::new(None),
            seq_floors: Mutex::new(HashMap::new()),
        }
    }

    /// Enable checkpointing: every `interval` decided slots, replicas
    /// agree (through a boundary consensus cell) on a snapshot slot,
    /// the first replica to cross it installs a
    /// [`Replicated::encode_snapshot`] of its state, and the decided
    /// prefix is freed once every live handle has passed the slot. The
    /// replica type driving the log must support snapshots. Configure
    /// before creating handles.
    pub fn checkpoint_every(mut self, interval: usize) -> Self {
        assert!(interval >= 2, "checkpoint interval must be at least 2");
        self.interval = Some(interval);
        self
    }

    /// A log with Herlihy-style **helping** for up to `n` processes
    /// (pids `0 … n-1`): slot `k` proposes the pending operation of
    /// process `k mod n` when one exists, so every announced operation is
    /// decided within a bounded number of slots regardless of its owner's
    /// scheduling — the wait-free formulation.
    pub fn with_helping(factory: Arc<dyn CellFactory>, n: usize) -> Self {
        assert!(n >= 1, "helping needs at least one process");
        Self::build(factory, Some(n))
    }

    /// Register `opid` as `pid`'s pending operation (announce-for-help).
    fn register_pending(&self, pid: u16, opid: u32) {
        if self.helping_n.is_some() {
            self.pending.lock().insert(pid, opid);
        }
    }

    /// Clear `pid`'s pending entry if it still refers to `opid`.
    fn clear_pending(&self, pid: u16, opid: u32) {
        if self.helping_n.is_some() {
            let mut pending = self.pending.lock();
            if pending.get(&pid) == Some(&opid) {
                pending.remove(&pid);
            }
        }
    }

    /// The operation slot `k` should propose on behalf of the helped
    /// process, if any: the pending op of process `k mod n` that the
    /// proposer has not yet seen decided.
    fn help_target(&self, slot: usize, already_applied: &impl Fn(u32) -> bool) -> Option<u32> {
        let n = self.helping_n?;
        let helped = (slot % n) as u16;
        let candidate = *self.pending.lock().get(&helped)?;
        if already_applied(candidate) {
            None
        } else {
            Some(candidate)
        }
    }

    /// Publicly visible helping mode (for reports).
    pub fn helping(&self) -> Option<usize> {
        self.helping_n
    }

    /// Announce an operation on behalf of a process without walking the
    /// log — the "slow process" whose work others must finish. Used by
    /// tests and demos of the helping mechanism; normal callers go
    /// through [`Handle::invoke`].
    pub fn announce_for(&self, pid: u16, seq: u32, payload: u64) -> u32 {
        let opid = OpId { pid, seq }.pack();
        self.announce_op(opid, payload);
        self.register_pending(pid, opid);
        opid
    }

    /// The cell deciding slot `k` (created on demand).
    fn cell(&self, k: usize) -> Arc<dyn Consensus> {
        let mut chain = self.cells.lock();
        assert!(
            k >= chain.base,
            "slot {k} was already truncated (log base is {})",
            chain.base
        );
        while chain.base + chain.cells.len() <= k {
            chain.cells.push(self.factory.make());
        }
        let i = k - chain.base;
        Arc::clone(&chain.cells[i])
    }

    /// The consensus cell deciding checkpoint boundary `b` (the cut at
    /// slot `(b + 1) * interval`), created on demand.
    fn boundary_cell(&self, b: usize) -> Arc<dyn Consensus> {
        let mut cells = self.boundaries.lock();
        while cells.len() <= b {
            cells.push(self.factory.make());
        }
        Arc::clone(&cells[b])
    }

    /// Publish an operation's payload before proposing its id.
    fn announce_op(&self, opid: u32, payload: u64) {
        self.announce
            .lock()
            .insert(opid, SlotRecord::Single(payload));
    }

    /// Publish a multi-op batch record before proposing its id (the
    /// flat-combining append: one decided slot, many ops).
    fn announce_record(&self, opid: u32, ops: Arc<[u64]>) {
        assert!(!ops.is_empty(), "a batch record needs at least one op");
        self.announce.lock().insert(opid, SlotRecord::Batch(ops));
    }

    /// The record of a decided operation. The announce happens-before
    /// the propose (both through this table's lock), so with correct
    /// cells a decided id is always resolvable; `None` means a cell
    /// decided a value nobody proposed — proof the cells are broken.
    fn record_of(&self, opid: u32) -> Option<SlotRecord> {
        self.announce.lock().get(&opid).cloned()
    }

    /// Attach a durability sink. From this point every decided slot at
    /// or above the durable cursor is delivered exactly once, in slot
    /// order. Attach before handles run (or immediately after recovery
    /// replay) so no decided slot slips past unrecorded.
    pub fn set_slot_sink(&self, sink: Arc<dyn SlotSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// A handle applied `record` at `slot`: buffer it and deliver the
    /// contiguous run to the sink. Slots below the cursor were already
    /// delivered by another handle (replicas all decide the same
    /// sequence) and are dropped.
    fn offer_durable(&self, slot: usize, opid: u32, record: &SlotRecord, digest_after: u64) {
        let mut cur = self.durable.lock();
        if slot < cur.next {
            return;
        }
        let sink = self.sink.lock().clone();
        if slot == cur.next && cur.buffered.is_empty() {
            // In-order arrival, nothing buffered: deliver (or skip)
            // without a buffer round trip — this is every slot of a
            // single-writer run.
            cur.next += 1;
            if let Some(s) = sink.as_ref() {
                s.slot_decided(slot, opid, record, digest_after);
            }
            return;
        }
        cur.buffered
            .entry(slot)
            .or_insert_with(|| (opid, record.clone(), digest_after));
        // Drain under the cursor lock so sink appends stay in slot order.
        while let Some((opid, record, digest)) = {
            let next = cur.next;
            cur.buffered.remove(&next)
        } {
            let at = cur.next;
            cur.next += 1;
            if let Some(s) = sink.as_ref() {
                s.slot_decided(at, opid, &record, digest);
            }
        }
    }

    /// Deliver an installed checkpoint to the sink (called by the
    /// installing handle after [`Self::observe_boundary`] returns, so
    /// no checkpoint lock is held).
    fn emit_checkpoint(&self, slot: usize, digest: u64, words: &[u64]) {
        let sink = self.sink.lock().clone();
        if let Some(s) = sink {
            s.checkpoint_installed(slot, digest, words);
        }
    }

    /// Seed the log from a recovered checkpoint, before any handle or
    /// slot exists: the chain base, durable cursor and snapshot all
    /// start at `slot`, exactly as if this process had installed the
    /// checkpoint and truncated below it in a previous life.
    ///
    /// # Panics
    /// If the log has no checkpoint interval, `slot` is not a positive
    /// boundary multiple, or the log has already been used.
    pub fn install_recovered_snapshot(&self, slot: usize, digest: u64, words: Vec<u64>) {
        let interval = self
            .interval
            .expect("recovered snapshots need a checkpointed log");
        assert!(
            slot > 0 && slot.is_multiple_of(interval),
            "recovered snapshot slot {slot} is not a checkpoint boundary (interval {interval})"
        );
        {
            let mut chain = self.cells.lock();
            assert!(
                chain.base == 0 && chain.cells.is_empty(),
                "recovered snapshots must install before the log is used"
            );
            chain.base = slot;
        }
        let mut ckpt = self.ckpt.lock();
        assert!(
            ckpt.snapshot.is_none() && ckpt.watermarks.is_empty(),
            "recovered snapshots must install before any handle exists"
        );
        ckpt.boundary_digests.push((slot, digest));
        ckpt.snapshot = Some(Snapshot {
            slot,
            digest,
            words: Arc::new(words),
            retired: Vec::new(),
        });
        ckpt.installed += 1;
        drop(ckpt);
        self.durable.lock().next = slot;
    }

    /// `(slot, digest)` at every checkpoint boundary the log has seen a
    /// handle cross (pruned below the snapshot slot at truncation).
    /// Lets an external observer compare this log against another
    /// incarnation's — the recovered-vs-corpse consistency check.
    pub fn boundary_digest_view(&self) -> Vec<(usize, u64)> {
        self.ckpt.lock().boundary_digests.clone()
    }

    /// Reserve a recovered opid's `(pid, seq)` pair so later handles of
    /// the same pid mint fresh opids (see `seq_floors`).
    fn note_recovered_opid(&self, opid: u32) {
        let id = OpId::unpack(opid);
        let mut floors = self.seq_floors.lock();
        let floor = floors.entry(id.pid).or_insert(0);
        if id.seq >= *floor {
            *floor = id.seq + 1;
        }
    }

    /// The first sequence number `pid` may mint (0 unless recovery
    /// replayed records proposed by an earlier incarnation of `pid`).
    fn seq_floor(&self, pid: u16) -> u32 {
        self.seq_floors.lock().get(&pid).copied().unwrap_or(0)
    }

    /// Slots decided so far (an upper bound; cells may exist undecided).
    /// Includes truncated slots: this is a log position, not a size.
    pub fn slots_created(&self) -> usize {
        let chain = self.cells.lock();
        chain.base + chain.cells.len()
    }

    /// Cells currently held in memory (excludes the truncated prefix).
    /// With checkpointing on and consistent replicas keeping pace, this
    /// stays bounded by roughly one checkpoint interval plus the
    /// slowest live handle's lag.
    pub fn retained_len(&self) -> usize {
        self.cells.lock().cells.len()
    }

    /// Slots freed by checkpoint truncation (the log's current base).
    pub fn truncated_prefix(&self) -> usize {
        self.cells.lock().base
    }

    /// The checkpoint interval, if checkpointing is enabled.
    pub fn checkpoint_interval(&self) -> Option<usize> {
        self.interval
    }

    /// Number of snapshots installed so far.
    pub fn checkpoints_installed(&self) -> u64 {
        self.ckpt.lock().installed
    }

    /// Has any evidence of broken cells been observed? (A boundary cell
    /// deciding a foreign value, replicas crossing a boundary with
    /// different digests, or a decided-but-never-announced opid.) Once
    /// set, truncation is permanently disabled.
    pub fn divergence_detected(&self) -> bool {
        self.diverged.load(Ordering::Acquire)
    }

    /// Record evidence of broken cells (see
    /// [`Self::divergence_detected`]).
    fn mark_diverged(&self) {
        self.diverged.store(true, Ordering::Release);
    }

    /// Register a new handle: assign it a watermark key and give it the
    /// current snapshot to start from, atomically with respect to
    /// truncation (so the slots from its start onward cannot be freed
    /// underneath it).
    fn register_handle(&self) -> (u64, Option<SnapshotView>) {
        let key = self.next_handle_key.fetch_add(1, Ordering::Relaxed);
        let mut ckpt = self.ckpt.lock();
        let snap = ckpt
            .snapshot
            .as_ref()
            .map(|s| (s.slot, s.digest, Arc::clone(&s.words)));
        let start = snap.as_ref().map_or(0, |(slot, _, _)| *slot);
        ckpt.watermarks.insert(key, start);
        (key, snap)
    }

    /// Drop a handle's watermark (it no longer gates truncation).
    fn unregister_handle(&self, key: u64) {
        let mut ckpt = self.ckpt.lock();
        ckpt.watermarks.remove(&key);
        self.try_truncate(&mut ckpt);
    }

    /// Advance a handle's watermark to `next_slot`.
    fn update_watermark(&self, key: u64, next_slot: usize) {
        self.ckpt.lock().watermarks.insert(key, next_slot);
    }

    /// A handle crossed the agreed boundary at `slot` carrying `digest`
    /// over its applied opids: check agreement with other crossers,
    /// install the snapshot if this is the first crosser, and attempt
    /// physical truncation. Returns the installed snapshot words when
    /// *this* call installed (the caller then notifies the durability
    /// sink outside this lock).
    fn observe_boundary(
        &self,
        slot: usize,
        digest: u64,
        start_slot: usize,
        applied: &[u32],
        encode: &dyn Fn() -> Option<Vec<u64>>,
    ) -> Option<Arc<Vec<u64>>> {
        let mut ckpt = self.ckpt.lock();
        match ckpt.boundary_digests.iter().find(|(s, _)| *s == slot) {
            Some((_, d)) if *d != digest => {
                // Two replicas crossed the same agreed boundary having
                // applied different operation sequences.
                self.mark_diverged();
                return None;
            }
            Some(_) => {}
            None => ckpt.boundary_digests.push((slot, digest)),
        }
        let mut installed_words = None;
        if ckpt.snapshot.as_ref().is_none_or(|s| s.slot < slot) {
            let words = encode().unwrap_or_else(|| {
                panic!(
                    "checkpointing requires snapshot support: the replica type \
                     returned None from Replicated::encode_snapshot"
                )
            });
            // Snapshots install in boundary order (a handle crossing
            // this boundary crossed every earlier one first), so the
            // previous snapshot slot is within this handle's applied
            // range and the newly retired opids are exactly the slots
            // between the two snapshots.
            let prev = ckpt.snapshot.as_ref().map_or(0, |s| s.slot);
            let mut retired = ckpt.snapshot.take().map_or_else(Vec::new, |s| s.retired);
            retired.extend_from_slice(&applied[prev - start_slot..slot - start_slot]);
            let words = Arc::new(words);
            installed_words = Some(Arc::clone(&words));
            ckpt.snapshot = Some(Snapshot {
                slot,
                digest,
                words,
                retired,
            });
            ckpt.installed += 1;
        }
        self.try_truncate(&mut ckpt);
        installed_words
    }

    /// Free the decided prefix below the snapshot slot if every live
    /// handle has passed it and no divergence has been observed.
    fn try_truncate(&self, ckpt: &mut CheckpointState) {
        if self.diverged.load(Ordering::Acquire) {
            return;
        }
        let Some(snap) = ckpt.snapshot.as_mut() else {
            return;
        };
        let min_watermark = ckpt
            .watermarks
            .values()
            .copied()
            .min()
            .unwrap_or(usize::MAX);
        if min_watermark < snap.slot {
            return;
        }
        {
            let mut chain = self.cells.lock();
            if chain.base < snap.slot {
                let drop_n = (snap.slot - chain.base).min(chain.cells.len());
                chain.cells.drain(..drop_n);
                chain.base += drop_n;
            }
        }
        if !snap.retired.is_empty() {
            let mut announce = self.announce.lock();
            for opid in snap.retired.drain(..) {
                announce.remove(&opid);
            }
        }
        // Boundary digests below the snapshot can no longer be crossed
        // by anyone (every live handle is past them): prune.
        let cut = snap.slot;
        ckpt.boundary_digests.retain(|(s, _)| *s >= cut);
    }

    /// The factory's label.
    pub fn cell_label(&self) -> &'static str {
        self.factory.name()
    }
}

/// A process-local replica handle.
pub struct Handle<T: Replicated> {
    core: Arc<UniversalLog>,
    state: T,
    pid: u16,
    next_seq: u32,
    next_slot: usize,
    /// The slot this handle started replaying from (0, or the snapshot
    /// slot it was restored at). `applied[i]` is the opid of slot
    /// `start_slot + i`.
    start_slot: usize,
    applied: Vec<u32>,
    applied_set: std::collections::HashSet<u32>,
    /// Rolling FNV-1a digest over all decided opids of slots
    /// `[0, next_slot)` (seeded from the snapshot digest on restore).
    digest: u64,
    /// `(slot, digest)` at every checkpoint boundary this handle
    /// crossed (or was restored at).
    boundary_digests: Vec<(usize, u64)>,
    /// Watermark key in the core's checkpoint registry (unused when
    /// checkpointing is off).
    watermark_key: u64,
}

impl<T: Replicated> Handle<T> {
    /// A handle for process `pid` starting from `initial` state (all
    /// handles of one log must start from equal initial states). With
    /// helping enabled, `pid` must be below the log's `n`. On a
    /// checkpointed log that has already installed a snapshot, `initial`
    /// is replaced by the snapshot state and replay starts at the
    /// snapshot slot.
    pub fn new(core: Arc<UniversalLog>, pid: u16, initial: T) -> Self {
        if let Some(n) = core.helping() {
            assert!(
                (pid as usize) < n,
                "pid {pid} out of range for helping over {n} processes"
            );
        }
        let mut state = initial;
        let mut start_slot = 0;
        let mut digest = DIGEST_BASIS;
        let mut boundary_digests = Vec::new();
        let mut watermark_key = 0;
        if core.checkpoint_interval().is_some() {
            let (key, snapshot) = core.register_handle();
            watermark_key = key;
            if let Some((slot, snap_digest, words)) = snapshot {
                assert!(
                    state.restore_snapshot(&words),
                    "failed to restore the log's snapshot into a fresh replica"
                );
                start_slot = slot;
                digest = snap_digest;
                boundary_digests.push((slot, snap_digest));
            }
        }
        let next_seq = core.seq_floor(pid);
        Handle {
            core,
            state,
            pid,
            next_seq,
            next_slot: start_slot,
            start_slot,
            applied: Vec::new(),
            applied_set: std::collections::HashSet::new(),
            digest,
            boundary_digests,
            watermark_key,
        }
    }

    /// Resolve a decided opid's record. A missing announce entry means
    /// a cell decided a value nobody proposed (broken cells): record the
    /// divergence and degrade to an inert no-op so the replica at least
    /// stays responsive.
    fn resolve_record(&self, opid: u32) -> SlotRecord {
        self.core.record_of(opid).unwrap_or_else(|| {
            self.core.mark_diverged();
            SlotRecord::Single(crate::object::encoding::op(0, 0))
        })
    }

    /// Apply one decided slot's record op-by-op, plus all per-slot
    /// bookkeeping (digest fold, watermark, durability offer, boundary
    /// crossing). When `collect` is given, every op's response is pushed
    /// into it; the last response is returned either way (for single-op
    /// records that IS the record's response).
    fn apply_decided(&mut self, decided: u32, mut collect: Option<&mut Vec<u64>>) -> u64 {
        let mut last = crate::structures::EMPTY;
        let record = self.resolve_record(decided);
        match &record {
            SlotRecord::Single(w) => {
                last = self.state.apply(*w);
                if let Some(out) = collect.as_deref_mut() {
                    out.push(last);
                }
            }
            SlotRecord::Batch(ws) => {
                for &w in ws.iter() {
                    last = self.state.apply(w);
                    if let Some(out) = collect.as_deref_mut() {
                        out.push(last);
                    }
                }
            }
        }
        self.applied.push(decided);
        self.applied_set.insert(decided);
        self.core.clear_pending(OpId::unpack(decided).pid, decided);
        self.after_apply(decided, &record);
        last
    }

    /// Bookkeeping after applying one decided slot: fold the opid into
    /// the digest, offer the slot to the durability sink, advance the
    /// watermark, and handle checkpoint-boundary crossings.
    fn after_apply(&mut self, decided: u32, record: &SlotRecord) {
        self.digest = digest_step(self.digest, decided);
        let applied_slot = self.next_slot;
        self.next_slot += 1;
        // Offer before the boundary handling below: the slot whose
        // apply triggers a checkpoint install must reach the sink ahead
        // of the checkpoint record.
        self.core
            .offer_durable(applied_slot, decided, record, self.digest);
        let Some(interval) = self.core.checkpoint_interval() else {
            return;
        };
        self.core
            .update_watermark(self.watermark_key, self.next_slot);
        if self.next_slot == self.start_slot || !self.next_slot.is_multiple_of(interval) {
            return;
        }
        // Crossing checkpoint boundary b: agree on the snapshot slot
        // through a consensus cell, exactly like an operation slot. All
        // crossers propose the boundary's own slot, so any other
        // decision is evidence of broken cells.
        let slot = self.next_slot;
        let boundary = slot / interval - 1;
        let decided_slot = self
            .core
            .boundary_cell(boundary)
            .decide(Input(slot as u32))
            .0;
        if decided_slot as usize != slot {
            self.core.mark_diverged();
            return;
        }
        self.boundary_digests.push((slot, self.digest));
        let state = &self.state;
        let installed =
            self.core
                .observe_boundary(slot, self.digest, self.start_slot, &self.applied, &|| {
                    state.encode_snapshot()
                });
        if let Some(words) = installed {
            self.core.emit_checkpoint(slot, self.digest, &words);
        }
    }

    /// Re-ingest one recovered decided record through a fresh consensus
    /// cell: announce it under its **original** opid, propose, and
    /// apply whatever the cell decides. With robust cells a single
    /// proposer always gets its own proposal decided, so the recovered
    /// log is reconstructed exactly; a faulty cell deciding anything
    /// else is surfaced by the `false` return (and by the log's
    /// divergence flag when the decided value resolves to nothing).
    /// Recovery-only: call before any concurrent handle exists.
    pub fn ingest_recovered(&mut self, opid: u32, record: SlotRecord) -> bool {
        match &record {
            SlotRecord::Single(w) => self.core.announce_op(opid, *w),
            SlotRecord::Batch(ws) => self.core.announce_record(opid, Arc::clone(ws)),
        }
        self.core.note_recovered_opid(opid);
        let cell = self.core.cell(self.next_slot);
        let decided = cell.decide(Input(opid)).0;
        self.apply_decided(decided, None);
        // Confirm the cell actually *holds* the decision: agreement
        // guarantees a second decide returns the same value. A faulty
        // cell can answer the first decide correctly while storing junk
        // (an arbitrary-fault swap) — without this read-back it would
        // poison every replica that replays the slot later.
        let confirmed = cell.decide(Input(opid)).0;
        decided == opid && confirmed == opid
    }

    /// The rolling decided-opid digest over slots `[0, applied_to())`.
    /// Recovery cross-checks this against each WAL record's recorded
    /// digest to catch cells that mutated a re-ingested decision.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Invoke an encoded operation: agree on its position in the log,
    /// replaying every operation decided before it, and return its
    /// response on this replica. With helping enabled, slots reserved for
    /// other processes propose *their* pending operations, so lagging
    /// processes' work is finished by whoever is running.
    pub fn invoke(&mut self, op: u64) -> u64 {
        let opid = OpId {
            pid: self.pid,
            seq: self.next_seq,
        }
        .pack();
        self.next_seq += 1;
        self.core.announce_op(opid, op);
        self.core.register_pending(self.pid, opid);
        loop {
            let cell = self.core.cell(self.next_slot);
            let applied_set = &self.applied_set;
            let propose = self
                .core
                .help_target(self.next_slot, &|x| applied_set.contains(&x))
                .unwrap_or(opid);
            let decided = cell.decide(Input(propose)).0;
            let resp = self.apply_decided(decided, None);
            if decided == opid {
                return resp;
            }
        }
    }

    /// Invoke a *batch* of encoded operations as one log append (the
    /// flat-combining fast path): the whole batch is announced as a
    /// single multi-op record, decided by **one** consensus decision,
    /// and applied op-by-op wherever the record lands in the log —
    /// on this replica and on every other replica that replays the
    /// slot. Returns one response per operation, in order.
    ///
    /// Checkpoints and digests are unchanged relative to `ops.len()`
    /// separate [`Handle::invoke`] calls in the sense that replicas
    /// still agree on everything: a slot still folds exactly one opid
    /// into the digest and snapshots still cut at slot boundaries; the
    /// log is simply shorter (one slot per batch).
    pub fn invoke_many(&mut self, ops: &[u64]) -> Vec<u64> {
        assert!(!ops.is_empty(), "invoke_many needs at least one op");
        let opid = OpId {
            pid: self.pid,
            seq: self.next_seq,
        }
        .pack();
        self.next_seq += 1;
        self.core.announce_record(opid, Arc::from(ops));
        self.core.register_pending(self.pid, opid);
        let mut out = Vec::with_capacity(ops.len());
        loop {
            let cell = self.core.cell(self.next_slot);
            let applied_set = &self.applied_set;
            let propose = self
                .core
                .help_target(self.next_slot, &|x| applied_set.contains(&x))
                .unwrap_or(opid);
            let decided = cell.decide(Input(propose)).0;
            if decided == opid {
                self.apply_decided(decided, Some(&mut out));
                // Broken cells can lose the record (a decided id nobody
                // announced degrades to one inert no-op); pad so callers
                // still get one response per op — the divergence flag is
                // already raised in that case.
                out.resize(ops.len(), crate::structures::EMPTY);
                return out;
            }
            self.apply_decided(decided, None);
        }
    }

    /// Apply all operations decided up to the current end of the log
    /// without submitting anything — a passive catch-up that, with
    /// helping enabled, also observes operations others finished on this
    /// process's behalf. Returns the ops applied.
    pub fn catch_up(&mut self) -> usize {
        let known = self.core.slots_created();
        let mut applied = 0;
        while self.next_slot < known {
            // Re-deciding an already-decided cell with a dummy proposal
            // returns the decided value (cells are multi-shot consensus).
            let cell = self.core.cell(self.next_slot);
            let dummy = OpId {
                pid: self.pid,
                seq: self.next_seq,
            }
            .pack();
            // The dummy is announced so a (vanishingly unlikely) win at a
            // genuinely undecided trailing slot stays resolvable.
            self.core
                .announce_op(dummy, crate::object::encoding::op(0, 0));
            let decided = cell.decide(Input(dummy)).0;
            if decided == dummy {
                self.next_seq += 1;
            }
            self.apply_decided(decided, None);
            applied += 1;
        }
        applied
    }

    /// Catch up with the log by invoking an inert no-op (opcode 0 is
    /// reserved as inert by every object in [`crate::structures`]) and
    /// return the refreshed state.
    pub fn sync(&mut self) -> &T {
        self.invoke(crate::object::encoding::op(0, 0));
        &self.state
    }

    /// The local replica state.
    pub fn state(&self) -> &T {
        &self.state
    }

    /// The log index this replica's state reflects: [`Handle::state`]
    /// is exactly the fold of slots `[0, applied_to())` (snapshot
    /// prefix included). Together with `state()` this is a *versioned
    /// snapshot*: a reader that observed the log tail `T` may answer a
    /// read-only query from any replica with `applied_to() >= T`
    /// without a log pass or a consensus invocation.
    pub fn applied_to(&self) -> usize {
        self.next_slot
    }

    /// The decided operation ids this replica has applied, in order,
    /// starting at [`Self::start_slot`] (0 unless restored from a
    /// snapshot).
    pub fn applied_log(&self) -> &[u32] {
        &self.applied
    }

    /// The slot this replica started replaying from (0, or the snapshot
    /// slot it was restored at).
    pub fn start_slot(&self) -> usize {
        self.start_slot
    }

    /// `(slot, digest)` at every checkpoint boundary this replica
    /// crossed or was restored at; compare across replicas with
    /// [`digests_consistent`].
    pub fn boundary_digests(&self) -> &[(usize, u64)] {
        &self.boundary_digests
    }

    /// The shared log this handle replicates (for divergence checks and
    /// retention inspection without going through the owning store).
    pub fn log(&self) -> &Arc<UniversalLog> {
        &self.core
    }
}

impl<T: Replicated> Drop for Handle<T> {
    fn drop(&mut self) {
        if self.core.checkpoint_interval().is_some() {
            // A dead handle must not gate truncation forever.
            self.core.unregister_handle(self.watermark_key);
        }
    }
}

/// Are the given applied logs mutually consistent (every pair agrees on
/// their common prefix)? Divergence here means the cells failed to be
/// consensus — the observable corruption naive cells suffer under
/// overriding faults.
pub fn logs_consistent(logs: &[&[u32]]) -> bool {
    for (i, a) in logs.iter().enumerate() {
        for b in logs.iter().skip(i + 1) {
            let common = a.len().min(b.len());
            if a[..common] != b[..common] {
                return false;
            }
        }
    }
    true
}

/// Are the given replica log *windows* mutually consistent? Each view
/// is `([Handle::start_slot]`, `[Handle::applied_log])` — under
/// truncation replicas can bootstrap from different snapshot slots, so
/// only the slot ranges a pair both applied are compared. The
/// slot-by-slot analogue of [`digests_consistent`], catching
/// disagreements between checkpoint boundaries too.
pub fn log_windows_consistent(views: &[(usize, &[u32])]) -> bool {
    for (i, (sa, a)) in views.iter().enumerate() {
        for (sb, b) in views.iter().skip(i + 1) {
            let lo = (*sa).max(*sb);
            let hi = (sa + a.len()).min(sb + b.len());
            if lo < hi && a[lo - sa..hi - sa] != b[lo - sb..hi - sb] {
                return false;
            }
        }
    }
    true
}

/// Are the given replicas' [`Handle::boundary_digests`] views mutually
/// consistent (every pair agrees on the digest at every boundary slot
/// they both crossed)? The truncation-friendly analogue of
/// [`logs_consistent`]: once prefixes are dropped and replicas start at
/// different snapshot slots, raw applied logs are no longer comparable
/// by index, but the rolling digests still must agree.
pub fn digests_consistent(views: &[&[(usize, u64)]]) -> bool {
    for (i, a) in views.iter().enumerate() {
        for b in views.iter().skip(i + 1) {
            for (slot, digest) in a.iter() {
                if let Some((_, other)) = b.iter().find(|(s, _)| s == slot) {
                    if other != digest {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus_cell::{NaiveFaultyCells, ReliableCells, RobustCells};
    use crate::structures::Counter;

    #[test]
    fn opid_round_trip() {
        for (pid, seq) in [(0u16, 0u32), (1023, (1 << 22) - 1), (7, 99)] {
            let id = OpId { pid, seq };
            assert_eq!(OpId::unpack(id.pack()), id);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 10 bits")]
    fn oversized_pid_rejected() {
        let _ = OpId { pid: 1024, seq: 0 }.pack();
    }

    #[test]
    fn sequential_counter_over_reliable_cells() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut h = Handle::new(Arc::clone(&core), 0, Counter::default());
        assert_eq!(h.invoke(Counter::add_op(5)), 5);
        assert_eq!(h.invoke(Counter::add_op(3)), 8);
        assert_eq!(h.invoke(Counter::get_op()), 8);
        assert_eq!(core.slots_created(), 3);
    }

    #[test]
    fn two_handles_converge() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        a.invoke(Counter::add_op(5));
        b.invoke(Counter::add_op(7));
        assert_eq!(a.sync().value(), 12);
        assert_eq!(b.sync().value(), 12);
        assert!(logs_consistent(&[a.applied_log(), b.applied_log()]));
    }

    #[test]
    fn concurrent_counter_over_robust_cells_under_faults() {
        // E10 positive arm: heavy fault injection, robust cells, N
        // threads adding concurrently — the total must be exact.
        let threads = 4u64;
        let adds_each = 25u64;
        let core = Arc::new(UniversalLog::new(Arc::new(RobustCells::new(1, 0.5, 99))));
        let logs: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..threads)
                .map(|i| {
                    let core = Arc::clone(&core);
                    s.spawn(move || {
                        let mut h = Handle::new(core, i as u16, Counter::default());
                        for _ in 0..adds_each {
                            h.invoke(Counter::add_op(1));
                        }
                        h.applied_log().to_vec()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Every replica applied a consistent prefix of the one true log.
        let views: Vec<&[u32]> = logs.iter().map(|l| l.as_slice()).collect();
        assert!(logs_consistent(&views), "replica logs diverged: {logs:?}");
        // A fresh observer sees the exact total: every add applied once.
        let expected = threads * adds_each;
        let mut observer = Handle::new(core, 1000, Counter::default());
        assert_eq!(observer.invoke(Counter::get_op()), expected);
    }

    #[test]
    fn naive_cells_diverge_under_faults() {
        // E10 negative arm: the same workload over naive cells (Herlihy
        // straight on a faulty object) corrupts agreement in at least one
        // trial — sequential deciders suffice to exhibit it.
        let mut diverged = false;
        for seed in 0..30 {
            let core = Arc::new(UniversalLog::new(Arc::new(NaiveFaultyCells::new(
                1.0, seed,
            ))));
            let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
            let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
            let mut c = Handle::new(Arc::clone(&core), 2, Counter::default());
            a.invoke(Counter::add_op(1));
            b.invoke(Counter::add_op(10));
            c.invoke(Counter::add_op(100));
            if !logs_consistent(&[a.applied_log(), b.applied_log(), c.applied_log()]) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "naive cells never diverged under 100% fault rate");
    }

    #[test]
    fn helping_finishes_a_lagging_processs_operation() {
        // Process 2 announces an add but never walks the log; processes
        // 0 and 1 keep working. With helping over n = 3, slot k ≡ 2
        // (mod 3) proposes p2's pending op — it must get decided and
        // applied without p2 taking a single step.
        let core = Arc::new(UniversalLog::with_helping(Arc::new(ReliableCells), 3));
        let ghost_opid = core.announce_for(2, 0, Counter::add_op(1_000));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        for _ in 0..4 {
            a.invoke(Counter::add_op(1));
            b.invoke(Counter::add_op(1));
        }
        assert!(
            a.applied_set.contains(&ghost_opid) || b.applied_set.contains(&ghost_opid),
            "the ghost's operation was never helped to a decision"
        );
        // The ghost's 1000 is included exactly once in the totals.
        assert_eq!(a.sync().value(), 8 + 1_000);
    }

    #[test]
    fn helping_applies_each_operation_exactly_once() {
        // Heavier: concurrent handles + a ghost; the ghost op must be
        // counted exactly once despite many potential helpers.
        for seed in 0..10u64 {
            // One pid per handle (operation ids embed the pid): workers
            // are 0–2, the ghost is 3, the observer is 4.
            let core = Arc::new(UniversalLog::with_helping(
                Arc::new(RobustCells::new(1, 0.4, seed)),
                5,
            ));
            core.announce_for(3, 0, Counter::add_op(1_000));
            std::thread::scope(|s| {
                for p in 0..3u16 {
                    let core = Arc::clone(&core);
                    s.spawn(move || {
                        let mut h = Handle::new(core, p, Counter::default());
                        for _ in 0..10 {
                            h.invoke(Counter::add_op(1));
                        }
                    });
                }
            });
            let mut observer = Handle::new(core, 4, Counter::default());
            let total = observer.invoke(Counter::get_op());
            assert_eq!(total, 30 + 1_000, "seed {seed}");
        }
    }

    #[test]
    fn invoke_many_decides_a_whole_batch_in_one_slot() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut h = Handle::new(Arc::clone(&core), 0, Counter::default());
        let resps = h.invoke_many(&[Counter::add_op(5), Counter::add_op(3), Counter::get_op()]);
        assert_eq!(resps, vec![5, 8, 8]);
        assert_eq!(core.slots_created(), 1, "a batch occupies one slot");
        assert_eq!(h.applied_to(), 1);
        // A passive replica replays the record op-by-op.
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        b.catch_up();
        assert_eq!(b.state().value(), 8);
        assert!(logs_consistent(&[h.applied_log(), b.applied_log()]));
    }

    #[test]
    fn batches_and_singles_interleave_consistently_under_faults() {
        for seed in 0..5u64 {
            let core = Arc::new(
                UniversalLog::new(Arc::new(RobustCells::new(1, 0.5, seed))).checkpoint_every(8),
            );
            let digests: Vec<Vec<(usize, u64)>> = std::thread::scope(|s| {
                (0..3u16)
                    .map(|p| {
                        let core = Arc::clone(&core);
                        s.spawn(move || {
                            let mut h = Handle::new(core, p, Counter::default());
                            for i in 0..10u64 {
                                if p == 0 {
                                    let batch: Vec<u64> =
                                        (0..4).map(|_| Counter::add_op(1)).collect();
                                    h.invoke_many(&batch);
                                } else {
                                    h.invoke(Counter::add_op(1 + i % 2));
                                }
                            }
                            h.boundary_digests().to_vec()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let views: Vec<&[(usize, u64)]> = digests.iter().map(|d| d.as_slice()).collect();
            assert!(digests_consistent(&views), "seed {seed}: digests diverged");
            assert!(!core.divergence_detected());
            // A fresh observer (snapshot + tail replay, batch records
            // decoded op-by-op) sees the exact total.
            let mut observer = Handle::new(core, 1000, Counter::default());
            let p0 = 10 * 4;
            let others = 2 * (5 + 5 * 2);
            assert_eq!(
                observer.invoke(Counter::get_op()),
                p0 + others,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn batch_responses_come_back_in_op_order() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        a.invoke(Counter::add_op(100));
        let resps = b.invoke_many(&[Counter::get_op(), Counter::add_op(1), Counter::get_op()]);
        // b first replays a's add, then applies its own record in order.
        assert_eq!(resps, vec![100, 101, 101]);
    }

    #[test]
    fn catch_up_applies_decided_slots_passively() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        a.invoke(Counter::add_op(5));
        a.invoke(Counter::add_op(7));
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        let applied = b.catch_up();
        assert!(applied >= 2);
        assert_eq!(b.state().value(), 12);
    }

    #[test]
    fn helping_rejects_out_of_range_pid() {
        let core = Arc::new(UniversalLog::with_helping(Arc::new(ReliableCells), 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Handle::new(core, 2, Counter::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn logs_consistent_detects_mismatch() {
        assert!(logs_consistent(&[&[1, 2, 3], &[1, 2], &[1, 2, 3, 4]]));
        assert!(!logs_consistent(&[&[1, 2, 3], &[1, 9]]));
        assert!(logs_consistent(&[]));
        assert!(logs_consistent(&[&[][..]]));
    }

    #[test]
    fn log_windows_consistent_compares_overlap_only() {
        // b starts at slot 2 (snapshot bootstrap): only slots 2..4
        // overlap with a.
        assert!(log_windows_consistent(&[
            (0, &[1, 2, 3, 4]),
            (2, &[3, 4, 5])
        ]));
        assert!(!log_windows_consistent(&[(0, &[1, 2, 3, 4]), (2, &[9, 4])]));
        // Disjoint windows are vacuously consistent.
        assert!(log_windows_consistent(&[
            (0, &[1, 2][..]),
            (5, &[7, 8][..])
        ]));
        assert!(log_windows_consistent(&[]));
    }

    #[test]
    fn digests_consistent_compares_common_boundaries() {
        let a = [(8usize, 1u64), (16, 2)];
        let b = [(16usize, 2u64), (24, 3)];
        let c = [(16usize, 9u64)];
        assert!(digests_consistent(&[&a, &b]));
        assert!(!digests_consistent(&[&a, &c]));
        assert!(digests_consistent(&[&a, &[][..]]));
    }

    #[test]
    fn checkpointing_truncates_and_preserves_state() {
        let interval = 8;
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(interval));
        let mut h = Handle::new(Arc::clone(&core), 0, Counter::default());
        for _ in 0..50 {
            h.invoke(Counter::add_op(1));
        }
        assert!(core.checkpoints_installed() >= 1);
        assert!(!core.divergence_detected());
        // The sole handle keeps pace, so the retained chain stays within
        // one interval of the log head.
        assert!(
            core.retained_len() <= interval,
            "retained {} cells with interval {interval}",
            core.retained_len()
        );
        assert!(core.truncated_prefix() >= 50 - interval);
        assert_eq!(h.invoke(Counter::get_op()), 50);
    }

    #[test]
    fn fresh_handle_restores_from_snapshot() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(4));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        for _ in 0..10 {
            a.invoke(Counter::add_op(1));
        }
        // A fresh replica starts from the snapshot, not slot 0, yet
        // observes the full history.
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        assert!(b.start_slot() >= 4, "start_slot {}", b.start_slot());
        assert_eq!(b.invoke(Counter::get_op()), 10);
        assert!(digests_consistent(&[
            a.boundary_digests(),
            b.boundary_digests()
        ]));
    }

    #[test]
    fn laggard_handle_blocks_truncation_until_dropped() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(4));
        let laggard = Handle::new(Arc::clone(&core), 1, Counter::default());
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        for _ in 0..20 {
            a.invoke(Counter::add_op(1));
        }
        // The laggard sits at slot 0, so nothing may be freed...
        assert_eq!(core.truncated_prefix(), 0);
        assert!(core.checkpoints_installed() >= 1);
        // ...until it goes away.
        drop(laggard);
        assert!(core.truncated_prefix() >= 4);
    }

    /// A sink that records everything it is given, for asserting the
    /// exactly-once in-order delivery contract.
    #[derive(Default)]
    struct CollectSink {
        slots: Mutex<Vec<(usize, u32, SlotRecord, u64)>>,
        ckpts: Mutex<Vec<(usize, u64, Vec<u64>)>>,
    }

    impl SlotSink for CollectSink {
        fn slot_decided(&self, slot: usize, opid: u32, record: &SlotRecord, digest_after: u64) {
            self.slots
                .lock()
                .push((slot, opid, record.clone(), digest_after));
        }

        fn checkpoint_installed(&self, slot: usize, digest: u64, words: &[u64]) {
            self.ckpts.lock().push((slot, digest, words.to_vec()));
        }
    }

    #[test]
    fn sink_sees_every_slot_exactly_once_in_order() {
        let core =
            Arc::new(UniversalLog::new(Arc::new(RobustCells::new(1, 0.5, 11))).checkpoint_every(8));
        let sink = Arc::new(CollectSink::default());
        core.set_slot_sink(Arc::clone(&sink) as Arc<dyn SlotSink>);
        std::thread::scope(|s| {
            for p in 0..4u16 {
                let core = Arc::clone(&core);
                s.spawn(move || {
                    let mut h = Handle::new(core, p, Counter::default());
                    for _ in 0..20 {
                        h.invoke(Counter::add_op(1));
                    }
                });
            }
        });
        let slots = sink.slots.lock();
        assert!(slots.len() >= 80, "sank {} slots", slots.len());
        for (i, (slot, ..)) in slots.iter().enumerate() {
            assert_eq!(*slot, i, "slots arrived out of order or duplicated");
        }
        // Every checkpoint arrived after all the slots it covers.
        let ckpts = sink.ckpts.lock();
        assert!(!ckpts.is_empty(), "no checkpoint reached the sink");
        for (slot, ..) in ckpts.iter() {
            assert!(slots.iter().any(|(s, ..)| s + 1 == *slot));
        }
    }

    #[test]
    fn recovery_reconstructs_state_from_sunk_records() {
        // Run a workload on one log, collect its decided records, then
        // rebuild a second log by re-ingesting them — the recovered
        // replica must expose the same state and digest.
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(4));
        let sink = Arc::new(CollectSink::default());
        core.set_slot_sink(Arc::clone(&sink) as Arc<dyn SlotSink>);
        let mut h = Handle::new(Arc::clone(&core), 3, Counter::default());
        for i in 0..10 {
            h.invoke(Counter::add_op(i));
        }
        h.invoke_many(&[Counter::add_op(100), Counter::add_op(200)]);
        let want = h.state().value();
        let want_digest = h.digest();

        let core2 = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(4));
        let mut r = Handle::new(Arc::clone(&core2), 1000, Counter::default());
        for (_, opid, record, digest_after) in sink.slots.lock().iter() {
            assert!(r.ingest_recovered(*opid, record.clone()));
            assert_eq!(r.digest(), *digest_after, "digest mismatch mid-replay");
        }
        assert_eq!(r.state().value(), want);
        assert_eq!(r.digest(), want_digest);
        // The original proposer's (pid, seq) space is reserved: a new
        // handle for pid 3 mints fresh opids above the replayed floor.
        drop(r);
        let mut h2 = Handle::new(core2, 3, Counter::default());
        h2.catch_up();
        assert_eq!(h2.state().value(), want);
        h2.invoke(Counter::add_op(1));
        assert_eq!(h2.state().value(), want + 1);
    }

    #[test]
    fn recovery_restores_from_snapshot_and_tail() {
        // Collect a checkpoint plus its tail, seed a fresh log with
        // install_recovered_snapshot, replay only the tail.
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(4));
        let sink = Arc::new(CollectSink::default());
        core.set_slot_sink(Arc::clone(&sink) as Arc<dyn SlotSink>);
        let mut h = Handle::new(Arc::clone(&core), 0, Counter::default());
        for _ in 0..11 {
            h.invoke(Counter::add_op(2));
        }
        let want = h.state().value();
        let (ckpt_slot, ckpt_digest, words) = {
            let ckpts = sink.ckpts.lock();
            ckpts.last().cloned().expect("a checkpoint was installed")
        };

        let core2 = Arc::new(UniversalLog::new(Arc::new(ReliableCells)).checkpoint_every(4));
        core2.install_recovered_snapshot(ckpt_slot, ckpt_digest, words);
        let mut r = Handle::new(Arc::clone(&core2), 1000, Counter::default());
        assert_eq!(r.start_slot(), ckpt_slot);
        for (slot, opid, record, _) in sink.slots.lock().iter() {
            if *slot >= ckpt_slot {
                assert!(r.ingest_recovered(*opid, record.clone()));
            }
        }
        assert_eq!(r.state().value(), want);
        assert!(!core2.divergence_detected());
    }

    #[test]
    fn checkpointing_under_concurrency_and_faults() {
        let threads = 4u64;
        let adds_each = 30u64;
        let interval = 8;
        let core = Arc::new(
            UniversalLog::new(Arc::new(RobustCells::new(1, 0.5, 7))).checkpoint_every(interval),
        );
        let digests: Vec<Vec<(usize, u64)>> = std::thread::scope(|s| {
            (0..threads)
                .map(|i| {
                    let core = Arc::clone(&core);
                    s.spawn(move || {
                        let mut h = Handle::new(core, i as u16, Counter::default());
                        for _ in 0..adds_each {
                            h.invoke(Counter::add_op(1));
                        }
                        h.boundary_digests().to_vec()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let views: Vec<&[(usize, u64)]> = digests.iter().map(|d| d.as_slice()).collect();
        assert!(digests_consistent(&views), "boundary digests diverged");
        assert!(!core.divergence_detected());
        assert!(core.checkpoints_installed() >= 1);
        // All workers are gone: truncation catches up to the snapshot.
        assert!(core.truncated_prefix() > 0);
        // A fresh observer (snapshot + tail replay) sees the exact total.
        let mut observer = Handle::new(core, 1000, Counter::default());
        assert_eq!(observer.invoke(Counter::get_op()), threads * adds_each);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::consensus_cell::{ReliableCells, RobustCells};
    use crate::object::Replicated;
    use crate::structures::{Counter, FifoQueue, RegisterObject};
    use proptest::prelude::*;

    /// Interleave two handles' invocations per `schedule` (false → handle
    /// A, true → handle B), then sync both and compare replicas.
    fn converges<T: Replicated + PartialEq + std::fmt::Debug>(
        initial: T,
        ops_a: &[u64],
        ops_b: &[u64],
        schedule: &[bool],
        robust: bool,
    ) {
        let factory: Arc<dyn CellFactory> = if robust {
            Arc::new(RobustCells::new(1, 0.5, 99))
        } else {
            Arc::new(ReliableCells)
        };
        let core = Arc::new(UniversalLog::new(factory));
        let mut a = Handle::new(Arc::clone(&core), 0, initial.clone());
        let mut b = Handle::new(Arc::clone(&core), 1, initial);
        let (mut ia, mut ib) = (0usize, 0usize);
        for &pick_b in schedule {
            if pick_b {
                if ib < ops_b.len() {
                    b.invoke(ops_b[ib]);
                    ib += 1;
                }
            } else if ia < ops_a.len() {
                a.invoke(ops_a[ia]);
                ia += 1;
            }
        }
        while ia < ops_a.len() {
            a.invoke(ops_a[ia]);
            ia += 1;
        }
        while ib < ops_b.len() {
            b.invoke(ops_b[ib]);
            ib += 1;
        }
        a.sync();
        b.sync();
        assert_eq!(a.state(), b.state(), "replicas diverged");
        assert!(logs_consistent(&[a.applied_log(), b.applied_log()]));
    }

    fn counter_op() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(Counter::add_op)
    }

    fn register_op() -> impl Strategy<Value = u64> {
        prop_oneof![
            (0u64..1000).prop_map(RegisterObject::write_op),
            Just(RegisterObject::read_op()),
        ]
    }

    fn queue_op() -> impl Strategy<Value = u64> {
        prop_oneof![
            (0u64..1000).prop_map(FifoQueue::enq_op),
            Just(FifoQueue::deq_op()),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn counters_converge_on_any_interleaving(
            ops_a in proptest::collection::vec(counter_op(), 0..12),
            ops_b in proptest::collection::vec(counter_op(), 0..12),
            schedule in proptest::collection::vec(any::<bool>(), 0..24),
            robust in any::<bool>(),
        ) {
            converges(Counter::default(), &ops_a, &ops_b, &schedule, robust);
        }

        #[test]
        fn registers_converge_on_any_interleaving(
            ops_a in proptest::collection::vec(register_op(), 0..12),
            ops_b in proptest::collection::vec(register_op(), 0..12),
            schedule in proptest::collection::vec(any::<bool>(), 0..24),
        ) {
            converges(RegisterObject::default(), &ops_a, &ops_b, &schedule, false);
        }

        #[test]
        fn queues_converge_on_any_interleaving(
            ops_a in proptest::collection::vec(queue_op(), 0..12),
            ops_b in proptest::collection::vec(queue_op(), 0..12),
            schedule in proptest::collection::vec(any::<bool>(), 0..24),
            robust in any::<bool>(),
        ) {
            converges(FifoQueue::default(), &ops_a, &ops_b, &schedule, robust);
        }
    }
}
