//! The wait-free operation log: Herlihy's universal construction over
//! one-shot consensus cells.
//!
//! Every log slot is a fresh consensus cell from a [`CellFactory`].
//! A process announces its operation's payload, then walks the log
//! proposing its operation id at each slot; whatever the slot decides is
//! applied to the process's local replica, and the process keeps walking
//! until a slot decides *its* operation. Because each slot's cell is
//! consensus, all replicas apply the same operation sequence — provided
//! the cells actually are consensus, which under functional faults is
//! exactly what Section 4's constructions buy (and what naive cells
//! lose — experiment E10).
//!
//! Both classic formulations are provided: the **lock-free** one
//! ([`UniversalLog::new`] — some process completes whenever a slot is
//! decided) and the **wait-free** one with Herlihy-style helping
//! ([`UniversalLog::with_helping`] — slot `k` proposes the pending
//! operation of process `k mod n`, so every announced operation is
//! decided within a bounded number of slots no matter how its owner is
//! scheduled).

use crate::consensus_cell::CellFactory;
use crate::object::Replicated;
use ff_consensus::Consensus;
use ff_spec::Input;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Bits of an operation id reserved for the sequence number.
const SEQ_BITS: u32 = 22;

/// An operation id: proposer plus per-proposer sequence number, packed
/// into the `u32` a consensus cell decides.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// Proposing process (< 1024).
    pub pid: u16,
    /// Per-proposer sequence number (< 2²²).
    pub seq: u32,
}

impl OpId {
    /// Pack into a consensus input.
    pub fn pack(self) -> u32 {
        assert!(self.pid < 1 << 10, "pid {} exceeds 10 bits", self.pid);
        assert!(
            self.seq < 1 << SEQ_BITS,
            "seq {} exceeds {} bits",
            self.seq,
            SEQ_BITS
        );
        ((self.pid as u32) << SEQ_BITS) | self.seq
    }

    /// Unpack from a consensus decision.
    pub fn unpack(v: u32) -> Self {
        OpId {
            pid: (v >> SEQ_BITS) as u16,
            seq: v & ((1 << SEQ_BITS) - 1),
        }
    }
}

/// The shared core: the cell chain plus the announce table.
pub struct UniversalLog {
    factory: Arc<dyn CellFactory>,
    cells: Mutex<Vec<Arc<dyn Consensus>>>,
    announce: Mutex<HashMap<u32, u64>>,
    /// Helping (Herlihy's wait-free upgrade): when `Some(n)`, slot `k`
    /// is reserved for helping process `k mod n`'s pending operation.
    helping_n: Option<usize>,
    /// Pending (announced, not yet decided) operation per process.
    pending: Mutex<HashMap<u16, u32>>,
}

impl UniversalLog {
    /// A fresh log over `factory`'s cells, in the lock-free formulation
    /// (no helping: some process completes whenever a slot is decided,
    /// but an individual process can starve under an unfair scheduler).
    pub fn new(factory: Arc<dyn CellFactory>) -> Self {
        UniversalLog {
            factory,
            cells: Mutex::new(Vec::new()),
            announce: Mutex::new(HashMap::new()),
            helping_n: None,
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// A log with Herlihy-style **helping** for up to `n` processes
    /// (pids `0 … n-1`): slot `k` proposes the pending operation of
    /// process `k mod n` when one exists, so every announced operation is
    /// decided within a bounded number of slots regardless of its owner's
    /// scheduling — the wait-free formulation.
    pub fn with_helping(factory: Arc<dyn CellFactory>, n: usize) -> Self {
        assert!(n >= 1, "helping needs at least one process");
        UniversalLog {
            factory,
            cells: Mutex::new(Vec::new()),
            announce: Mutex::new(HashMap::new()),
            helping_n: Some(n),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Register `opid` as `pid`'s pending operation (announce-for-help).
    fn register_pending(&self, pid: u16, opid: u32) {
        if self.helping_n.is_some() {
            self.pending.lock().insert(pid, opid);
        }
    }

    /// Clear `pid`'s pending entry if it still refers to `opid`.
    fn clear_pending(&self, pid: u16, opid: u32) {
        if self.helping_n.is_some() {
            let mut pending = self.pending.lock();
            if pending.get(&pid) == Some(&opid) {
                pending.remove(&pid);
            }
        }
    }

    /// The operation slot `k` should propose on behalf of the helped
    /// process, if any: the pending op of process `k mod n` that the
    /// proposer has not yet seen decided.
    fn help_target(&self, slot: usize, already_applied: &impl Fn(u32) -> bool) -> Option<u32> {
        let n = self.helping_n?;
        let helped = (slot % n) as u16;
        let candidate = *self.pending.lock().get(&helped)?;
        if already_applied(candidate) {
            None
        } else {
            Some(candidate)
        }
    }

    /// Publicly visible helping mode (for reports).
    pub fn helping(&self) -> Option<usize> {
        self.helping_n
    }

    /// Announce an operation on behalf of a process without walking the
    /// log — the "slow process" whose work others must finish. Used by
    /// tests and demos of the helping mechanism; normal callers go
    /// through [`Handle::invoke`].
    pub fn announce_for(&self, pid: u16, seq: u32, payload: u64) -> u32 {
        let opid = OpId { pid, seq }.pack();
        self.announce_op(opid, payload);
        self.register_pending(pid, opid);
        opid
    }

    /// The cell deciding slot `k` (created on demand).
    fn cell(&self, k: usize) -> Arc<dyn Consensus> {
        let mut cells = self.cells.lock();
        while cells.len() <= k {
            cells.push(self.factory.make());
        }
        Arc::clone(&cells[k])
    }

    /// Publish an operation's payload before proposing its id.
    fn announce_op(&self, opid: u32, payload: u64) {
        self.announce.lock().insert(opid, payload);
    }

    /// The payload of a decided operation. The announce happens-before
    /// the propose (both through this table's lock), so a decided id is
    /// always resolvable.
    fn payload_of(&self, opid: u32) -> u64 {
        *self
            .announce
            .lock()
            .get(&opid)
            .expect("decided operation was never announced")
    }

    /// Slots decided so far (an upper bound; cells may exist undecided).
    pub fn slots_created(&self) -> usize {
        self.cells.lock().len()
    }

    /// The factory's label.
    pub fn cell_label(&self) -> &'static str {
        self.factory.label()
    }
}

/// A process-local replica handle.
pub struct Handle<T: Replicated> {
    core: Arc<UniversalLog>,
    state: T,
    pid: u16,
    next_seq: u32,
    next_slot: usize,
    applied: Vec<u32>,
    applied_set: std::collections::HashSet<u32>,
}

impl<T: Replicated> Handle<T> {
    /// A handle for process `pid` starting from `initial` state (all
    /// handles of one log must start from equal initial states). With
    /// helping enabled, `pid` must be below the log's `n`.
    pub fn new(core: Arc<UniversalLog>, pid: u16, initial: T) -> Self {
        if let Some(n) = core.helping() {
            assert!(
                (pid as usize) < n,
                "pid {pid} out of range for helping over {n} processes"
            );
        }
        Handle {
            core,
            state: initial,
            pid,
            next_seq: 0,
            next_slot: 0,
            applied: Vec::new(),
            applied_set: std::collections::HashSet::new(),
        }
    }

    /// Invoke an encoded operation: agree on its position in the log,
    /// replaying every operation decided before it, and return its
    /// response on this replica. With helping enabled, slots reserved for
    /// other processes propose *their* pending operations, so lagging
    /// processes' work is finished by whoever is running.
    pub fn invoke(&mut self, op: u64) -> u64 {
        let opid = OpId {
            pid: self.pid,
            seq: self.next_seq,
        }
        .pack();
        self.next_seq += 1;
        self.core.announce_op(opid, op);
        self.core.register_pending(self.pid, opid);
        let mut own_response: Option<u64> = None;
        loop {
            let cell = self.core.cell(self.next_slot);
            let applied_set = &self.applied_set;
            let propose = self
                .core
                .help_target(self.next_slot, &|x| applied_set.contains(&x))
                .unwrap_or(opid);
            let decided = cell.decide(Input(propose)).0;
            let payload = self.core.payload_of(decided);
            let resp = self.state.apply(payload);
            self.applied.push(decided);
            self.applied_set.insert(decided);
            self.core.clear_pending(OpId::unpack(decided).pid, decided);
            self.next_slot += 1;
            if decided == opid {
                own_response = Some(resp);
            }
            if let Some(r) = own_response {
                return r;
            }
        }
    }

    /// Apply all operations decided up to the current end of the log
    /// without submitting anything — a passive catch-up that, with
    /// helping enabled, also observes operations others finished on this
    /// process's behalf. Returns the ops applied.
    pub fn catch_up(&mut self) -> usize {
        let known = self.core.slots_created();
        let mut applied = 0;
        while self.next_slot < known {
            // Re-deciding an already-decided cell with a dummy proposal
            // returns the decided value (cells are multi-shot consensus).
            let cell = self.core.cell(self.next_slot);
            let dummy = OpId {
                pid: self.pid,
                seq: self.next_seq,
            }
            .pack();
            // The dummy is announced so a (vanishingly unlikely) win at a
            // genuinely undecided trailing slot stays resolvable.
            self.core
                .announce_op(dummy, crate::object::encoding::op(0, 0));
            let decided = cell.decide(Input(dummy)).0;
            if decided == dummy {
                self.next_seq += 1;
            }
            let payload = self.core.payload_of(decided);
            self.state.apply(payload);
            self.applied.push(decided);
            self.applied_set.insert(decided);
            self.next_slot += 1;
            applied += 1;
        }
        applied
    }

    /// Catch up with the log by invoking an inert no-op (opcode 0 is
    /// reserved as inert by every object in [`crate::structures`]) and
    /// return the refreshed state.
    pub fn sync(&mut self) -> &T {
        self.invoke(crate::object::encoding::op(0, 0));
        &self.state
    }

    /// The local replica state.
    pub fn state(&self) -> &T {
        &self.state
    }

    /// The decided operation ids this replica has applied, in order.
    pub fn applied_log(&self) -> &[u32] {
        &self.applied
    }
}

/// Are the given applied logs mutually consistent (every pair agrees on
/// their common prefix)? Divergence here means the cells failed to be
/// consensus — the observable corruption naive cells suffer under
/// overriding faults.
pub fn logs_consistent(logs: &[&[u32]]) -> bool {
    for (i, a) in logs.iter().enumerate() {
        for b in logs.iter().skip(i + 1) {
            let common = a.len().min(b.len());
            if a[..common] != b[..common] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus_cell::{NaiveFaultyCells, ReliableCells, RobustCells};
    use crate::structures::Counter;

    #[test]
    fn opid_round_trip() {
        for (pid, seq) in [(0u16, 0u32), (1023, (1 << 22) - 1), (7, 99)] {
            let id = OpId { pid, seq };
            assert_eq!(OpId::unpack(id.pack()), id);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 10 bits")]
    fn oversized_pid_rejected() {
        let _ = OpId { pid: 1024, seq: 0 }.pack();
    }

    #[test]
    fn sequential_counter_over_reliable_cells() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut h = Handle::new(Arc::clone(&core), 0, Counter::default());
        assert_eq!(h.invoke(Counter::add_op(5)), 5);
        assert_eq!(h.invoke(Counter::add_op(3)), 8);
        assert_eq!(h.invoke(Counter::get_op()), 8);
        assert_eq!(core.slots_created(), 3);
    }

    #[test]
    fn two_handles_converge() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        a.invoke(Counter::add_op(5));
        b.invoke(Counter::add_op(7));
        assert_eq!(a.sync().value(), 12);
        assert_eq!(b.sync().value(), 12);
        assert!(logs_consistent(&[a.applied_log(), b.applied_log()]));
    }

    #[test]
    fn concurrent_counter_over_robust_cells_under_faults() {
        // E10 positive arm: heavy fault injection, robust cells, N
        // threads adding concurrently — the total must be exact.
        let threads = 4u64;
        let adds_each = 25u64;
        let core = Arc::new(UniversalLog::new(Arc::new(RobustCells::new(1, 0.5, 99))));
        let logs: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..threads)
                .map(|i| {
                    let core = Arc::clone(&core);
                    s.spawn(move || {
                        let mut h = Handle::new(core, i as u16, Counter::default());
                        for _ in 0..adds_each {
                            h.invoke(Counter::add_op(1));
                        }
                        h.applied_log().to_vec()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Every replica applied a consistent prefix of the one true log.
        let views: Vec<&[u32]> = logs.iter().map(|l| l.as_slice()).collect();
        assert!(logs_consistent(&views), "replica logs diverged: {logs:?}");
        // A fresh observer sees the exact total: every add applied once.
        let expected = threads * adds_each;
        let mut observer = Handle::new(core, 1000, Counter::default());
        assert_eq!(observer.invoke(Counter::get_op()), expected);
    }

    #[test]
    fn naive_cells_diverge_under_faults() {
        // E10 negative arm: the same workload over naive cells (Herlihy
        // straight on a faulty object) corrupts agreement in at least one
        // trial — sequential deciders suffice to exhibit it.
        let mut diverged = false;
        for seed in 0..30 {
            let core = Arc::new(UniversalLog::new(Arc::new(NaiveFaultyCells::new(
                1.0, seed,
            ))));
            let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
            let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
            let mut c = Handle::new(Arc::clone(&core), 2, Counter::default());
            a.invoke(Counter::add_op(1));
            b.invoke(Counter::add_op(10));
            c.invoke(Counter::add_op(100));
            if !logs_consistent(&[a.applied_log(), b.applied_log(), c.applied_log()]) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "naive cells never diverged under 100% fault rate");
    }

    #[test]
    fn helping_finishes_a_lagging_processs_operation() {
        // Process 2 announces an add but never walks the log; processes
        // 0 and 1 keep working. With helping over n = 3, slot k ≡ 2
        // (mod 3) proposes p2's pending op — it must get decided and
        // applied without p2 taking a single step.
        let core = Arc::new(UniversalLog::with_helping(Arc::new(ReliableCells), 3));
        let ghost_opid = core.announce_for(2, 0, Counter::add_op(1_000));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        for _ in 0..4 {
            a.invoke(Counter::add_op(1));
            b.invoke(Counter::add_op(1));
        }
        assert!(
            a.applied_set.contains(&ghost_opid) || b.applied_set.contains(&ghost_opid),
            "the ghost's operation was never helped to a decision"
        );
        // The ghost's 1000 is included exactly once in the totals.
        assert_eq!(a.sync().value(), 8 + 1_000);
    }

    #[test]
    fn helping_applies_each_operation_exactly_once() {
        // Heavier: concurrent handles + a ghost; the ghost op must be
        // counted exactly once despite many potential helpers.
        for seed in 0..10u64 {
            // One pid per handle (operation ids embed the pid): workers
            // are 0–2, the ghost is 3, the observer is 4.
            let core = Arc::new(UniversalLog::with_helping(
                Arc::new(RobustCells::new(1, 0.4, seed)),
                5,
            ));
            core.announce_for(3, 0, Counter::add_op(1_000));
            std::thread::scope(|s| {
                for p in 0..3u16 {
                    let core = Arc::clone(&core);
                    s.spawn(move || {
                        let mut h = Handle::new(core, p, Counter::default());
                        for _ in 0..10 {
                            h.invoke(Counter::add_op(1));
                        }
                    });
                }
            });
            let mut observer = Handle::new(core, 4, Counter::default());
            let total = observer.invoke(Counter::get_op());
            assert_eq!(total, 30 + 1_000, "seed {seed}");
        }
    }

    #[test]
    fn catch_up_applies_decided_slots_passively() {
        let core = Arc::new(UniversalLog::new(Arc::new(ReliableCells)));
        let mut a = Handle::new(Arc::clone(&core), 0, Counter::default());
        a.invoke(Counter::add_op(5));
        a.invoke(Counter::add_op(7));
        let mut b = Handle::new(Arc::clone(&core), 1, Counter::default());
        let applied = b.catch_up();
        assert!(applied >= 2);
        assert_eq!(b.state().value(), 12);
    }

    #[test]
    fn helping_rejects_out_of_range_pid() {
        let core = Arc::new(UniversalLog::with_helping(Arc::new(ReliableCells), 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Handle::new(core, 2, Counter::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn logs_consistent_detects_mismatch() {
        assert!(logs_consistent(&[&[1, 2, 3], &[1, 2], &[1, 2, 3, 4]]));
        assert!(!logs_consistent(&[&[1, 2, 3], &[1, 9]]));
        assert!(logs_consistent(&[]));
        assert!(logs_consistent(&[&[][..]]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::consensus_cell::{ReliableCells, RobustCells};
    use crate::object::Replicated;
    use crate::structures::{Counter, FifoQueue, RegisterObject};
    use proptest::prelude::*;

    /// Interleave two handles' invocations per `schedule` (false → handle
    /// A, true → handle B), then sync both and compare replicas.
    fn converges<T: Replicated + PartialEq + std::fmt::Debug>(
        initial: T,
        ops_a: &[u64],
        ops_b: &[u64],
        schedule: &[bool],
        robust: bool,
    ) {
        let factory: Arc<dyn CellFactory> = if robust {
            Arc::new(RobustCells::new(1, 0.5, 99))
        } else {
            Arc::new(ReliableCells)
        };
        let core = Arc::new(UniversalLog::new(factory));
        let mut a = Handle::new(Arc::clone(&core), 0, initial.clone());
        let mut b = Handle::new(Arc::clone(&core), 1, initial);
        let (mut ia, mut ib) = (0usize, 0usize);
        for &pick_b in schedule {
            if pick_b {
                if ib < ops_b.len() {
                    b.invoke(ops_b[ib]);
                    ib += 1;
                }
            } else if ia < ops_a.len() {
                a.invoke(ops_a[ia]);
                ia += 1;
            }
        }
        while ia < ops_a.len() {
            a.invoke(ops_a[ia]);
            ia += 1;
        }
        while ib < ops_b.len() {
            b.invoke(ops_b[ib]);
            ib += 1;
        }
        a.sync();
        b.sync();
        assert_eq!(a.state(), b.state(), "replicas diverged");
        assert!(logs_consistent(&[a.applied_log(), b.applied_log()]));
    }

    fn counter_op() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(Counter::add_op)
    }

    fn register_op() -> impl Strategy<Value = u64> {
        prop_oneof![
            (0u64..1000).prop_map(RegisterObject::write_op),
            Just(RegisterObject::read_op()),
        ]
    }

    fn queue_op() -> impl Strategy<Value = u64> {
        prop_oneof![
            (0u64..1000).prop_map(FifoQueue::enq_op),
            Just(FifoQueue::deq_op()),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn counters_converge_on_any_interleaving(
            ops_a in proptest::collection::vec(counter_op(), 0..12),
            ops_b in proptest::collection::vec(counter_op(), 0..12),
            schedule in proptest::collection::vec(any::<bool>(), 0..24),
            robust in any::<bool>(),
        ) {
            converges(Counter::default(), &ops_a, &ops_b, &schedule, robust);
        }

        #[test]
        fn registers_converge_on_any_interleaving(
            ops_a in proptest::collection::vec(register_op(), 0..12),
            ops_b in proptest::collection::vec(register_op(), 0..12),
            schedule in proptest::collection::vec(any::<bool>(), 0..24),
        ) {
            converges(RegisterObject::default(), &ops_a, &ops_b, &schedule, false);
        }

        #[test]
        fn queues_converge_on_any_interleaving(
            ops_a in proptest::collection::vec(queue_op(), 0..12),
            ops_b in proptest::collection::vec(queue_op(), 0..12),
            schedule in proptest::collection::vec(any::<bool>(), 0..24),
            robust in any::<bool>(),
        ) {
            converges(FifoQueue::default(), &ops_a, &ops_b, &schedule, robust);
        }
    }
}
