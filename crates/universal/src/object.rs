//! Replicated deterministic objects and operation encoding.
//!
//! Herlihy's universality result (cited throughout Section 1 of the
//! paper) says consensus objects suffice to implement *any* wait-free
//! shared object: agree, slot by slot, on the order of operations and
//! replay them on local copies. The objects here are deterministic
//! sequential state machines over a compact `u64` operation encoding.

/// A deterministic sequential object that can be replicated through an
/// operation log.
pub trait Replicated: Clone + Send + 'static {
    /// Apply one encoded operation, returning an encoded response.
    /// Must be a pure function of the current state and `op`.
    fn apply(&mut self, op: u64) -> u64;

    /// Serialize the current state into words, or `None` if the type
    /// does not support snapshots. Types returning `Some` here unlock
    /// log checkpointing ([`crate::UniversalLog::checkpoint_every`]):
    /// the decided prefix can be replaced by a snapshot and truncated.
    fn encode_snapshot(&self) -> Option<Vec<u64>> {
        None
    }

    /// Replace the current state with the one `encode_snapshot`
    /// serialized into `words`. Returns `false` (leaving the state
    /// unspecified) if the type does not support snapshots or the words
    /// are malformed.
    fn restore_snapshot(&mut self, words: &[u64]) -> bool {
        let _ = words;
        false
    }
}

/// Operation encoding helpers: opcode in the top byte, payload in the low
/// 56 bits.
pub mod encoding {
    /// Build an op word.
    #[inline]
    pub fn op(opcode: u8, payload: u64) -> u64 {
        assert!(payload < (1 << 56), "payload exceeds 56 bits");
        ((opcode as u64) << 56) | payload
    }

    /// Split an op word.
    #[inline]
    pub fn split(op: u64) -> (u8, u64) {
        ((op >> 56) as u8, op & ((1 << 56) - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::encoding::{op, split};

    #[test]
    fn op_round_trip() {
        for (code, payload) in [(0u8, 0u64), (1, 42), (255, (1 << 56) - 1)] {
            assert_eq!(split(op(code, payload)), (code, payload));
        }
    }

    #[test]
    #[should_panic(expected = "56 bits")]
    fn oversized_payload_rejected() {
        let _ = op(1, 1 << 56);
    }
}
