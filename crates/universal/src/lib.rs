//! # ff-universal — robust objects from robust consensus
//!
//! Herlihy's universal construction over the fault-tolerant consensus
//! cells of the *Functional Faults* reproduction: replicated determinate
//! objects (counter, register, FIFO queue) driven by an operation log
//! whose slots are decided by consensus.
//!
//! The paper leans on consensus being *universal* (Section 1): once
//! Section 4's constructions deliver reliable consensus from faulty CAS
//! objects, every wait-free object inherits that reliability. This crate
//! closes the loop end-to-end: replicas over [`RobustCells`] stay
//! consistent under heavy overriding-fault injection, while replicas over
//! [`NaiveFaultyCells`] observably diverge (experiment E10).
//!
//! ```
//! use ff_universal::{Handle, UniversalLog, RobustCells, Counter};
//! use std::sync::Arc;
//!
//! // Cells tolerate f = 1 faulty object, faulting half the time.
//! let log = Arc::new(UniversalLog::new(Arc::new(RobustCells::new(1, 0.5, 7))));
//! let mut alice = Handle::new(Arc::clone(&log), 0, Counter::default());
//! let mut bob = Handle::new(Arc::clone(&log), 1, Counter::default());
//! alice.invoke(Counter::add_op(2));
//! bob.invoke(Counter::add_op(3));
//! assert_eq!(alice.sync().value(), 5);
//! assert_eq!(bob.sync().value(), 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod consensus_cell;
pub mod log;
pub mod object;
pub mod structures;

pub use consensus_cell::{CellFactory, NaiveFaultyCells, ReliableCells, RobustCells};
pub use log::{
    digests_consistent, log_windows_consistent, logs_consistent, Handle, OpId, SlotRecord,
    SlotSink, UniversalLog,
};
pub use object::{encoding, Replicated};
pub use structures::{Counter, FifoQueue, RegisterObject, EMPTY};
