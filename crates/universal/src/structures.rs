//! Replicated data structures: counter, register and FIFO queue.

use crate::object::encoding::{op, split};
use crate::object::Replicated;
use std::collections::VecDeque;

/// Response encoding for "nothing" (e.g. dequeue on empty).
pub const EMPTY: u64 = u64::MAX;

/// A replicated saturating counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Opcode: add `payload` to the counter; responds with the new value.
    pub const ADD: u8 = 1;
    /// Opcode: read the counter.
    pub const GET: u8 = 2;

    /// Encoded `add(x)` operation.
    pub fn add_op(x: u64) -> u64 {
        op(Self::ADD, x)
    }

    /// Encoded `get()` operation.
    pub fn get_op() -> u64 {
        op(Self::GET, 0)
    }

    /// Current value (local inspection for tests).
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl Replicated for Counter {
    fn apply(&mut self, operation: u64) -> u64 {
        let (code, payload) = split(operation);
        match code {
            Self::ADD => {
                self.value = self.value.saturating_add(payload);
                self.value
            }
            Self::GET => self.value,
            _ => EMPTY,
        }
    }

    fn encode_snapshot(&self) -> Option<Vec<u64>> {
        Some(vec![self.value])
    }

    fn restore_snapshot(&mut self, words: &[u64]) -> bool {
        match words {
            [v] => {
                self.value = *v;
                true
            }
            _ => false,
        }
    }
}

/// A replicated single-word register.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegisterObject {
    value: u64,
}

impl RegisterObject {
    /// Opcode: write `payload`; responds with the previous value.
    pub const WRITE: u8 = 1;
    /// Opcode: read.
    pub const READ: u8 = 2;

    /// Encoded `write(x)` operation (`x` must fit 56 bits).
    pub fn write_op(x: u64) -> u64 {
        op(Self::WRITE, x)
    }

    /// Encoded `read()` operation.
    pub fn read_op() -> u64 {
        op(Self::READ, 0)
    }
}

impl Replicated for RegisterObject {
    fn apply(&mut self, operation: u64) -> u64 {
        let (code, payload) = split(operation);
        match code {
            Self::WRITE => std::mem::replace(&mut self.value, payload),
            Self::READ => self.value,
            _ => EMPTY,
        }
    }

    fn encode_snapshot(&self) -> Option<Vec<u64>> {
        Some(vec![self.value])
    }

    fn restore_snapshot(&mut self, words: &[u64]) -> bool {
        match words {
            [v] => {
                self.value = *v;
                true
            }
            _ => false,
        }
    }
}

/// A replicated FIFO queue of 56-bit items.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FifoQueue {
    items: VecDeque<u64>,
}

impl FifoQueue {
    /// Opcode: enqueue `payload`; responds with the new length.
    pub const ENQ: u8 = 1;
    /// Opcode: dequeue; responds with the item or [`EMPTY`].
    pub const DEQ: u8 = 2;
    /// Opcode: length.
    pub const LEN: u8 = 3;

    /// Encoded `enqueue(x)` operation.
    pub fn enq_op(x: u64) -> u64 {
        op(Self::ENQ, x)
    }

    /// Encoded `dequeue()` operation.
    pub fn deq_op() -> u64 {
        op(Self::DEQ, 0)
    }

    /// Encoded `len()` operation.
    pub fn len_op() -> u64 {
        op(Self::LEN, 0)
    }

    /// Number of queued items (local inspection for tests).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl Replicated for FifoQueue {
    fn apply(&mut self, operation: u64) -> u64 {
        let (code, payload) = split(operation);
        match code {
            Self::ENQ => {
                self.items.push_back(payload);
                self.items.len() as u64
            }
            Self::DEQ => self.items.pop_front().unwrap_or(EMPTY),
            Self::LEN => self.items.len() as u64,
            _ => EMPTY,
        }
    }

    fn encode_snapshot(&self) -> Option<Vec<u64>> {
        let mut words = vec![self.items.len() as u64];
        words.extend(self.items.iter().copied());
        Some(words)
    }

    fn restore_snapshot(&mut self, words: &[u64]) -> bool {
        match words.split_first() {
            Some((&len, items)) if items.len() as u64 == len => {
                self.items = items.iter().copied().collect();
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let mut c = Counter::default();
        assert_eq!(c.apply(Counter::add_op(5)), 5);
        assert_eq!(c.apply(Counter::add_op(3)), 8);
        assert_eq!(c.apply(Counter::get_op()), 8);
        assert_eq!(c.value(), 8);
    }

    #[test]
    fn register_semantics() {
        let mut r = RegisterObject::default();
        assert_eq!(r.apply(RegisterObject::write_op(7)), 0);
        assert_eq!(r.apply(RegisterObject::read_op()), 7);
        assert_eq!(r.apply(RegisterObject::write_op(9)), 7);
    }

    #[test]
    fn queue_semantics() {
        let mut q = FifoQueue::default();
        assert_eq!(q.apply(FifoQueue::deq_op()), EMPTY);
        assert_eq!(q.apply(FifoQueue::enq_op(1)), 1);
        assert_eq!(q.apply(FifoQueue::enq_op(2)), 2);
        assert_eq!(q.apply(FifoQueue::len_op()), 2);
        assert_eq!(q.apply(FifoQueue::deq_op()), 1);
        assert_eq!(q.apply(FifoQueue::deq_op()), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn replicas_replaying_the_same_log_converge() {
        let log = [
            Counter::add_op(1),
            Counter::add_op(10),
            Counter::get_op(),
            Counter::add_op(100),
        ];
        let mut a = Counter::default();
        let mut b = Counter::default();
        for o in log {
            a.apply(o);
        }
        for o in log {
            b.apply(o);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn snapshots_round_trip() {
        let mut c = Counter::default();
        c.apply(Counter::add_op(41));
        let mut c2 = Counter::default();
        assert!(c2.restore_snapshot(&c.encode_snapshot().unwrap()));
        assert_eq!(c, c2);

        let mut r = RegisterObject::default();
        r.apply(RegisterObject::write_op(7));
        let mut r2 = RegisterObject::default();
        assert!(r2.restore_snapshot(&r.encode_snapshot().unwrap()));
        assert_eq!(r, r2);

        let mut q = FifoQueue::default();
        q.apply(FifoQueue::enq_op(1));
        q.apply(FifoQueue::enq_op(2));
        let mut q2 = FifoQueue::default();
        assert!(q2.restore_snapshot(&q.encode_snapshot().unwrap()));
        assert_eq!(q, q2);
    }

    #[test]
    fn malformed_snapshots_rejected() {
        assert!(!Counter::default().restore_snapshot(&[]));
        assert!(!Counter::default().restore_snapshot(&[1, 2]));
        assert!(!RegisterObject::default().restore_snapshot(&[1, 2]));
        // Queue length word must match the item count.
        assert!(!FifoQueue::default().restore_snapshot(&[3, 1, 2]));
        assert!(!FifoQueue::default().restore_snapshot(&[]));
    }

    #[test]
    fn unknown_opcode_is_inert() {
        let mut c = Counter::default();
        assert_eq!(c.apply(crate::object::encoding::op(99, 5)), EMPTY);
        assert_eq!(c.value(), 0);
    }
}
