//! Consensus-cell factories: what each log slot agrees with.
//!
//! The universal construction consumes one fresh one-shot consensus
//! object per log slot. The factory decides what hardware the cell runs
//! on — reliable CAS, *naively* faulty CAS (Herlihy's protocol straight
//! over a faulty object, which the paper shows is broken), or the
//! fault-tolerant constructions of Section 4.

use ff_cas::{AtomicCasArray, FaultyCasArray, ProbabilisticPolicy};
use ff_consensus::{CascadeConsensus, Consensus, HerlihyConsensus};
use ff_spec::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Produces a fresh consensus cell per log slot.
pub trait CellFactory: Send + Sync {
    /// Make the next cell.
    fn make(&self) -> Arc<dyn Consensus>;

    /// The substrate name (the single naming source for reports).
    fn name(&self) -> &'static str;
}

/// Cells on reliable CAS objects (Herlihy's protocol) — the fault-free
/// baseline.
#[derive(Debug, Default)]
pub struct ReliableCells;

impl CellFactory for ReliableCells {
    fn make(&self) -> Arc<dyn Consensus> {
        Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))))
    }

    fn name(&self) -> &'static str {
        "reliable"
    }
}

/// Cells that run Herlihy's protocol directly over an unboundedly-faulty
/// CAS object — no fault tolerance. Under fault injection, replicas built
/// on these cells diverge (experiment E10's negative arm).
#[derive(Debug)]
pub struct NaiveFaultyCells {
    fault_rate: f64,
    seed: AtomicU64,
}

impl NaiveFaultyCells {
    /// Cells whose single object overrides with probability `fault_rate`
    /// per CAS; seeds advance deterministically from `seed0`.
    pub fn new(fault_rate: f64, seed0: u64) -> Self {
        NaiveFaultyCells {
            fault_rate,
            seed: AtomicU64::new(seed0),
        }
    }
}

impl CellFactory for NaiveFaultyCells {
    fn make(&self) -> Arc<dyn Consensus> {
        let seed = self.seed.fetch_add(1, Ordering::Relaxed);
        let ensemble = Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Unbounded)
                .policy(ProbabilisticPolicy::new(self.fault_rate, seed))
                .record_history(false)
                .build(),
        );
        Arc::new(HerlihyConsensus::new(ensemble))
    }

    fn name(&self) -> &'static str {
        "naive-faulty"
    }
}

/// Cells built with the `f`-tolerant cascade (Figure 2) over ensembles
/// with `f` unboundedly-faulty objects out of `f + 1` — the paper's
/// construction put to work (experiment E10's positive arm).
#[derive(Debug)]
pub struct RobustCells {
    f: usize,
    fault_rate: f64,
    seed: AtomicU64,
}

impl RobustCells {
    /// Cells tolerating `f ≥ 1` faulty objects, faulting with
    /// `fault_rate` per opportunity.
    pub fn new(f: usize, fault_rate: f64, seed0: u64) -> Self {
        assert!(f >= 1);
        RobustCells {
            f,
            fault_rate,
            seed: AtomicU64::new(seed0),
        }
    }
}

impl CellFactory for RobustCells {
    fn make(&self) -> Arc<dyn Consensus> {
        let seed = self.seed.fetch_add(1, Ordering::Relaxed);
        let ensemble = Arc::new(
            FaultyCasArray::builder(self.f + 1)
                .faulty_first(self.f)
                .per_object(Bound::Unbounded)
                .policy(ProbabilisticPolicy::new(self.fault_rate, seed))
                .record_history(false)
                .build(),
        );
        Arc::new(CascadeConsensus::new(ensemble, self.f))
    }

    fn name(&self) -> &'static str {
        "robust-cascade"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_spec::Input;

    #[test]
    fn reliable_cells_decide() {
        let cell = ReliableCells.make();
        assert_eq!(cell.decide(Input(5)), Input(5));
        assert_eq!(cell.decide(Input(9)), Input(5));
    }

    #[test]
    fn robust_cells_decide_consistently_under_faults() {
        let factory = RobustCells::new(2, 0.8, 42);
        for _ in 0..50 {
            let cell = factory.make();
            let a = cell.decide(Input(1));
            let b = cell.decide(Input(2));
            let c = cell.decide(Input(3));
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn naive_cells_can_disagree() {
        // With a high fault rate, sequential deciders on a naive cell
        // eventually disagree (the cell's object overrides).
        let factory = NaiveFaultyCells::new(1.0, 7);
        let mut disagreements = 0;
        for _ in 0..50 {
            let cell = factory.make();
            let a = cell.decide(Input(1));
            let b = cell.decide(Input(2)); // overriding write lands 2
            let c = cell.decide(Input(3)); // sees 2 ≠ a
            if a != c || a != b {
                disagreements += 1;
            }
        }
        assert!(disagreements > 0, "naive cells never disagreed");
    }

    #[test]
    fn factories_have_labels() {
        assert_eq!(ReliableCells.name(), "reliable");
        assert_eq!(NaiveFaultyCells::new(0.5, 0).name(), "naive-faulty");
        assert_eq!(RobustCells::new(1, 0.5, 0).name(), "robust-cascade");
    }
}
