//! Hoare triples for the CAS operation, and the deviating postconditions
//! that characterize each functional fault of Section 3.3–3.4.
//!
//! The paper writes the correctness conditions of `old ← CAS(O, exp, val)`
//! as the triple `Ψ{O}Φ` with standard postconditions
//!
//! ```text
//! R' = exp ? (R = val ∧ old = R') : (R = R' ∧ old = R')
//! ```
//!
//! where `R'` is the register content on entry and `R` on return. A
//! functional fault `⟨O, Φ'⟩` occurs when `Ψ` held on entry but the result
//! satisfies `Φ'` instead of `Φ`. This module expresses those formulas over
//! a concrete [`CasRecord`] — the observable footprint of a single CAS
//! execution — so that executions can be audited after the fact.

use crate::assertion::Assertion;
use crate::value::Word;

/// The observable footprint of one CAS execution on one object.
///
/// `pre` is `R'` (content on entry), `post` is `R` (content on return),
/// `exp`/`new` are the operation arguments and `returned` is the value the
/// operation reported as the old content.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CasRecord {
    /// Register content on entry to the operation (`R'`).
    pub pre: Word,
    /// The `expected` argument.
    pub exp: Word,
    /// The `new` argument.
    pub new: Word,
    /// Register content on return (`R`).
    pub post: Word,
    /// The value returned as the old content (`old`).
    pub returned: Word,
}

impl CasRecord {
    /// `true` iff the new value ended up in the register — the paper's
    /// notion of a *successful* CAS execution (Section 2), which applies to
    /// correct and faulty executions alike.
    #[inline]
    pub fn successful(&self) -> bool {
        self.post == self.new
    }

    /// `true` iff the comparison should have succeeded (`R' = exp`).
    #[inline]
    pub fn comparison_matches(&self) -> bool {
        self.pre == self.exp
    }
}

/// Standard CAS postcondition `Φ`:
/// `R' = exp ? (R = val ∧ old = R') : (R = R' ∧ old = R')`.
#[inline]
pub fn standard_post(r: &CasRecord) -> bool {
    if r.pre == r.exp {
        r.post == r.new && r.returned == r.pre
    } else {
        r.post == r.pre && r.returned == r.pre
    }
}

/// Overriding postcondition `Φ'` (Section 3.3): `R = val ∧ old = R'`.
///
/// The new value is written regardless of the comparison; the returned old
/// value is still correct. Note every record satisfying `Φ` with a matching
/// comparison also satisfies `Φ'` — a *fault* additionally requires `¬Φ`.
#[inline]
pub fn overriding_post(r: &CasRecord) -> bool {
    r.post == r.new && r.returned == r.pre
}

/// Silent-fault postcondition (Section 3.4): the new value is **not**
/// written even though the comparison matched; the register and the
/// returned old value are otherwise correct: `R = R' ∧ old = R'`.
#[inline]
pub fn silent_post(r: &CasRecord) -> bool {
    r.post == r.pre && r.returned == r.pre
}

/// Invisible-fault postcondition (Section 3.4): the register behaves
/// correctly but the returned old value is wrong: `old ≠ R'`, with `R`
/// following the standard comparison semantics.
#[inline]
pub fn invisible_post(r: &CasRecord) -> bool {
    let register_correct = if r.pre == r.exp {
        r.post == r.new
    } else {
        r.post == r.pre
    };
    register_correct && r.returned != r.pre
}

/// Arbitrary-fault postcondition (Section 3.4): an arbitrary value may be
/// written regardless of the inputs; only the returned old value is
/// constrained to be the entry content. (The paper notes this is
/// essentially the responsive arbitrary *data* fault.)
#[inline]
pub fn arbitrary_post(r: &CasRecord) -> bool {
    r.returned == r.pre
}

/// A Hoare triple `Ψ{CAS}Φ` over [`CasRecord`]s, with an optional deviating
/// postcondition `Φ'` describing how a faulty execution is allowed to
/// behave.
#[derive(Clone, Debug)]
pub struct CasTriple {
    /// Preconditions `Ψ`. The CAS operation of the paper is total — its
    /// precondition is `true` — but restricted variants (e.g. "expected
    /// must be `⊥`") are expressible.
    pub pre: Assertion<CasRecord>,
    /// Standard postconditions `Φ`.
    pub post: Assertion<CasRecord>,
    /// Deviating postconditions `Φ'` a faulty execution must satisfy.
    pub deviating: Option<Assertion<CasRecord>>,
}

/// The verdict of auditing one CAS execution against a [`CasTriple`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpVerdict {
    /// `Ψ` did not hold on entry: the triple says nothing (Definition 1
    /// only fires when the preconditions are satisfied).
    PreconditionUnmet,
    /// `Φ` holds: a correct execution.
    Correct,
    /// `¬Φ ∧ Φ'` holds: a structured functional fault `⟨O, Φ'⟩`.
    StructuredFault,
    /// `¬Φ` holds and either no `Φ'` was given or `Φ'` does not hold: the
    /// deviation is unstructured — equivalent to an arbitrary data fault.
    UnstructuredFault,
}

impl CasTriple {
    /// The standard CAS triple with the overriding fault as its structured
    /// deviation — the paper's case study.
    pub fn overriding_cas() -> Self {
        CasTriple {
            pre: Assertion::always(),
            post: Assertion::new("R'=exp ? (R=val ∧ old=R') : (R=R' ∧ old=R')", standard_post),
            deviating: Some(Assertion::new("R=val ∧ old=R'", overriding_post)),
        }
    }

    /// The standard CAS triple with the silent fault as its deviation.
    pub fn silent_cas() -> Self {
        CasTriple {
            pre: Assertion::always(),
            post: Assertion::new("R'=exp ? (R=val ∧ old=R') : (R=R' ∧ old=R')", standard_post),
            deviating: Some(Assertion::new("R=R' ∧ old=R'", silent_post)),
        }
    }

    /// Audit one execution record. Implements Definition 1: a fault
    /// occurred iff `Ψ` held on entry, `Φ` fails on return, and (for the
    /// structured verdict) `Φ'` holds on return.
    pub fn audit(&self, record: &CasRecord) -> OpVerdict {
        if !self.pre.holds(record) {
            return OpVerdict::PreconditionUnmet;
        }
        if self.post.holds(record) {
            return OpVerdict::Correct;
        }
        match &self.deviating {
            Some(phi_prime) if phi_prime.holds(record) => OpVerdict::StructuredFault,
            _ => OpVerdict::UnstructuredFault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BOTTOM;

    fn rec(pre: Word, exp: Word, new: Word, post: Word, returned: Word) -> CasRecord {
        CasRecord {
            pre,
            exp,
            new,
            post,
            returned,
        }
    }

    #[test]
    fn standard_success_and_failure() {
        // Matching comparison, correct write.
        let ok = rec(BOTTOM, BOTTOM, 5, 5, BOTTOM);
        assert!(standard_post(&ok));
        assert!(ok.successful());
        assert!(ok.comparison_matches());
        // Non-matching comparison, register untouched.
        let noop = rec(7, BOTTOM, 5, 7, 7);
        assert!(standard_post(&noop));
        assert!(!noop.successful());
        assert!(!noop.comparison_matches());
    }

    #[test]
    fn overriding_fault_record() {
        // Comparison should fail (pre=7 ≠ exp=⊥) but the write happens anyway.
        let fault = rec(7, BOTTOM, 5, 5, 7);
        assert!(!standard_post(&fault));
        assert!(overriding_post(&fault));
        assert_eq!(
            CasTriple::overriding_cas().audit(&fault),
            OpVerdict::StructuredFault
        );
    }

    #[test]
    fn overriding_post_includes_correct_success() {
        // A correct successful CAS also satisfies Φ' — but audit() reports
        // Correct because Φ holds.
        let ok = rec(BOTTOM, BOTTOM, 5, 5, BOTTOM);
        assert!(overriding_post(&ok));
        assert_eq!(CasTriple::overriding_cas().audit(&ok), OpVerdict::Correct);
    }

    #[test]
    fn silent_fault_record() {
        // Comparison matches but the write is suppressed.
        let fault = rec(BOTTOM, BOTTOM, 5, BOTTOM, BOTTOM);
        assert!(!standard_post(&fault));
        assert!(silent_post(&fault));
        assert_eq!(
            CasTriple::silent_cas().audit(&fault),
            OpVerdict::StructuredFault
        );
        // ... and is *not* an overriding fault.
        assert_eq!(
            CasTriple::overriding_cas().audit(&fault),
            OpVerdict::UnstructuredFault
        );
    }

    #[test]
    fn invisible_fault_record() {
        // Register correct, returned old value wrong.
        let fault = rec(7, BOTTOM, 5, 7, 9);
        assert!(!standard_post(&fault));
        assert!(invisible_post(&fault));
        assert!(!overriding_post(&fault));
    }

    #[test]
    fn arbitrary_fault_record() {
        // Junk written that is neither `new` nor `pre`.
        let fault = rec(7, BOTTOM, 5, 123, 7);
        assert!(!standard_post(&fault));
        assert!(arbitrary_post(&fault));
        assert!(!overriding_post(&fault));
        assert!(!silent_post(&fault));
    }

    #[test]
    fn precondition_gates_the_audit() {
        let mut triple = CasTriple::overriding_cas();
        triple.pre = Assertion::new("exp = ⊥", |r: &CasRecord| r.exp == BOTTOM);
        let out_of_spec = rec(7, 3, 5, 5, 7);
        assert_eq!(triple.audit(&out_of_spec), OpVerdict::PreconditionUnmet);
    }
}
