//! Named predicate combinators for pre- and postconditions.
//!
//! Following Hoare \[27\] and Section 3.2 of the paper, the correctness of an
//! operation `O` is expressed as a triple `Ψ{O}Φ` where `Ψ` and `Φ` are
//! assertions — conjunctions of formulas over execution states. This module
//! provides a small, allocation-light assertion language: an [`Assertion`]
//! is a named predicate over an arbitrary state type `S`, composable with
//! conjunction, disjunction and negation while retaining a human-readable
//! formula string for diagnostics.

use std::fmt;
use std::sync::Arc;

/// A named predicate over states of type `S`.
///
/// Cloning is cheap (the predicate body is reference-counted), so
/// assertions can be freely shared between triples and fault descriptors.
pub struct Assertion<S: ?Sized> {
    name: Arc<str>,
    pred: Arc<dyn Fn(&S) -> bool + Send + Sync>,
}

// Manual impl: a derived `Clone` would demand `S: Clone`, which the
// reference-counted representation does not need.
impl<S: ?Sized> Clone for Assertion<S> {
    fn clone(&self) -> Self {
        Assertion {
            name: Arc::clone(&self.name),
            pred: Arc::clone(&self.pred),
        }
    }
}

impl<S: ?Sized> Assertion<S> {
    /// Build an assertion from a formula name and a predicate.
    pub fn new(name: impl Into<String>, pred: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        Assertion {
            name: Arc::from(name.into().as_str()),
            pred: Arc::new(pred),
        }
    }

    /// The assertion that holds in every state (`true`).
    pub fn always() -> Self {
        Assertion::new("true", |_| true)
    }

    /// The assertion that holds in no state (`false`).
    pub fn never() -> Self {
        Assertion::new("false", |_| false)
    }

    /// Evaluate the assertion on a state.
    #[inline]
    pub fn holds(&self, state: &S) -> bool {
        (self.pred)(state)
    }

    /// The formula string.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Conjunction: `self ∧ other`.
    pub fn and(&self, other: &Assertion<S>) -> Assertion<S>
    where
        S: 'static,
    {
        let (a, b) = (self.clone(), other.clone());
        Assertion::new(format!("({} ∧ {})", a.name, b.name), move |s| {
            a.holds(s) && b.holds(s)
        })
    }

    /// Disjunction: `self ∨ other`.
    pub fn or(&self, other: &Assertion<S>) -> Assertion<S>
    where
        S: 'static,
    {
        let (a, b) = (self.clone(), other.clone());
        Assertion::new(format!("({} ∨ {})", a.name, b.name), move |s| {
            a.holds(s) || b.holds(s)
        })
    }

    /// Negation: `¬self`.
    pub fn not(&self) -> Assertion<S>
    where
        S: 'static,
    {
        let a = self.clone();
        Assertion::new(format!("¬{}", a.name), move |s| !a.holds(s))
    }

    /// Implication: `self ⇒ other`, i.e. `¬self ∨ other`.
    pub fn implies(&self, other: &Assertion<S>) -> Assertion<S>
    where
        S: 'static,
    {
        let (a, b) = (self.clone(), other.clone());
        Assertion::new(format!("({} ⇒ {})", a.name, b.name), move |s| {
            !a.holds(s) || b.holds(s)
        })
    }
}

impl<S: ?Sized> fmt::Debug for Assertion<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assertion({})", self.name)
    }
}

impl<S: ?Sized> fmt::Display for Assertion<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Conjunction of a collection of assertions, as in the paper's
/// "conjunctions of formulas".
pub fn conjunction<S: 'static>(parts: impl IntoIterator<Item = Assertion<S>>) -> Assertion<S> {
    let parts: Vec<Assertion<S>> = parts.into_iter().collect();
    if parts.is_empty() {
        return Assertion::always();
    }
    let name = parts
        .iter()
        .map(|a| a.name().to_string())
        .collect::<Vec<_>>()
        .join(" ∧ ");
    Assertion::new(name, move |s| parts.iter().all(|a| a.holds(s)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even() -> Assertion<i64> {
        Assertion::new("even(x)", |x: &i64| x % 2 == 0)
    }

    fn positive() -> Assertion<i64> {
        Assertion::new("x > 0", |x: &i64| *x > 0)
    }

    #[test]
    fn basic_evaluation() {
        assert!(even().holds(&4));
        assert!(!even().holds(&3));
        assert!(Assertion::<i64>::always().holds(&-7));
        assert!(!Assertion::<i64>::never().holds(&0));
    }

    #[test]
    fn combinators() {
        let both = even().and(&positive());
        assert!(both.holds(&2));
        assert!(!both.holds(&-2));
        assert!(!both.holds(&3));

        let either = even().or(&positive());
        assert!(either.holds(&-2));
        assert!(either.holds(&3));
        assert!(!either.holds(&-3));

        assert!(even().not().holds(&3));

        let imp = positive().implies(&even());
        assert!(imp.holds(&-3)); // vacuous
        assert!(imp.holds(&2));
        assert!(!imp.holds(&3));
    }

    #[test]
    fn names_compose() {
        let c = even().and(&positive().not());
        assert_eq!(c.name(), "(even(x) ∧ ¬x > 0)");
        assert_eq!(format!("{c}"), c.name());
        assert!(format!("{c:?}").contains("Assertion"));
    }

    #[test]
    fn conjunction_of_many() {
        let all = conjunction([even(), positive()]);
        assert!(all.holds(&4));
        assert!(!all.holds(&-4));
        let empty = conjunction(Vec::<Assertion<i64>>::new());
        assert!(empty.holds(&123));
    }

    #[test]
    fn assertions_are_cloneable_and_shareable() {
        let a = even();
        let b = a.clone();
        assert_eq!(a.holds(&10), b.holds(&10));
        std::thread::spawn(move || assert!(b.holds(&0)))
            .join()
            .unwrap();
    }
}
