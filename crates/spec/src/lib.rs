//! # ff-spec — the functional-fault model
//!
//! Formalization layer for the reproduction of *Functional Faults*
//! (Sheffi & Petrank, SPAA 2020): Hoare-triple specifications of the CAS
//! operation, the `⟨O, Φ'⟩`-fault definitions (Definitions 1–2), the
//! `(f, t, n)`-tolerance descriptors (Definition 3), execution histories,
//! and the consensus task specification with its checker.
//!
//! This crate is pure data and predicates — no concurrency. The simulator
//! (`ff-sim`), the native fault-injection layer (`ff-cas`) and the
//! protocols (`ff-consensus`) all build on it.
//!
//! ## Model summary
//!
//! A **functional fault** occurs during the execution of an operation `O`
//! with triple `Ψ{O}Φ` when `Ψ` held on entry but the result violates `Φ`;
//! it is *structured* when the result satisfies known deviating
//! postconditions `Φ'`. The paper's case study is the **overriding CAS
//! fault**, whose `Φ'` is `R = val ∧ old = R'`: the comparison erroneously
//! succeeds, so the new value is written even when the register did not
//! hold the expected value — yet the returned old value is still correct.
//!
//! ```
//! use ff_spec::{CasRecord, classify_cas, CasClassification, FaultKind, BOTTOM};
//!
//! // A CAS(O, ⊥, 5) executed while O held 7: the write must not happen...
//! let faulty = CasRecord { pre: 7, exp: BOTTOM, new: 5, post: 5, returned: 7 };
//! // ...but it did: that is precisely the overriding fault.
//! assert_eq!(classify_cas(&faulty), CasClassification::Fault(FaultKind::Overriding));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assertion;
pub mod consensus_spec;
pub mod fault;
pub mod history;
pub mod severity;
pub mod tolerance;
pub mod triple;
pub mod value;

pub use assertion::{conjunction, Assertion};
pub use consensus_spec::{check_consensus, ConsensusVerdict, ConsensusViolation, Outcome};
pub use fault::{classify_cas, CasClassification, FaultKind};
pub use history::{History, ObjectId, OpEvent, ProcessId};
pub use severity::{
    data_fault_reduction, gracefully_degrades, Behavior, DataFaultClass, Responsiveness,
};
pub use tolerance::{Bound, Tolerance};
pub use triple::{
    arbitrary_post, invisible_post, overriding_post, silent_post, standard_post, CasRecord,
    CasTriple, OpVerdict,
};
pub use value::{CellContent, Input, Word, BOTTOM};
