//! Operation histories: per-execution logs of shared-object operations,
//! with the bookkeeping needed to check an execution against an
//! `(f, t, n)`-tolerance profile.
//!
//! Both the simulator and the native fault-injection layer append
//! [`OpEvent`]s as operations linearize; auditors then ask the [`History`]
//! how many objects were faulty, how many faults each suffered, and whether
//! the whole execution stayed within a [`Tolerance`].

use crate::fault::{classify_cas, CasClassification};
use crate::tolerance::Tolerance;
use crate::triple::CasRecord;
use std::collections::BTreeMap;

/// Identifier of a process (thread) in an execution. Dense, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a shared object in an execution. Dense, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub usize);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// One linearized shared-memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpEvent {
    /// The process that executed the operation.
    pub process: ProcessId,
    /// The object it was executed on.
    pub object: ObjectId,
    /// The observable footprint (for CAS operations).
    pub record: CasRecord,
    /// Whether the injection layer *intended* this operation to fault.
    /// (The audit classifies independently from the record; the two are
    /// cross-checked in tests.)
    pub injected_fault: bool,
}

/// An append-only log of linearized operations.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<OpEvent>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event.
    pub fn push(&mut self, event: OpEvent) {
        self.events.push(event);
    }

    /// All events, in linearization order.
    pub fn events(&self) -> &[OpEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no operations were logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Classify every event's record. An event is counted as a fault if its
    /// record violates the standard postconditions (Definition 1) —
    /// regardless of what the injector intended.
    pub fn fault_counts_per_object(&self) -> BTreeMap<ObjectId, u64> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            if !matches!(classify_cas(&e.record), CasClassification::Correct) {
                *counts.entry(e.object).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The set of faulty objects (Definition 2: an object is faulty iff at
    /// least one of its operations faulted).
    pub fn faulty_objects(&self) -> Vec<ObjectId> {
        self.fault_counts_per_object().into_keys().collect()
    }

    /// Number of distinct faulty objects.
    pub fn faulty_object_count(&self) -> u64 {
        self.fault_counts_per_object().len() as u64
    }

    /// The largest number of faults suffered by any single object.
    pub fn max_faults_per_object(&self) -> u64 {
        self.fault_counts_per_object()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Distinct participating processes.
    pub fn process_count(&self) -> u64 {
        let mut ids: Vec<_> = self.events.iter().map(|e| e.process).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len() as u64
    }

    /// Did the whole execution stay within `tolerance`? (The execution-side
    /// check of Definition 3 — the task-side check is the consensus
    /// verdict.)
    pub fn within(&self, tolerance: &Tolerance) -> bool {
        tolerance.admits(
            self.faulty_object_count(),
            self.max_faults_per_object(),
            self.process_count(),
        )
    }

    /// Events executed on a given object, in order.
    pub fn events_on(&self, object: ObjectId) -> impl Iterator<Item = &OpEvent> {
        self.events.iter().filter(move |e| e.object == object)
    }

    /// Objects that have been written (i.e. their content changed), in
    /// first-write order. Used by the covering adversary of Theorem 19,
    /// whose schedule is defined in terms of "the first CAS to an object
    /// not yet written".
    pub fn written_objects(&self) -> Vec<ObjectId> {
        let mut seen = Vec::new();
        for e in &self.events {
            if e.record.post != e.record.pre && !seen.contains(&e.object) {
                seen.push(e.object);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BOTTOM;

    fn ev(p: usize, o: usize, pre: u64, exp: u64, new: u64, post: u64) -> OpEvent {
        OpEvent {
            process: ProcessId(p),
            object: ObjectId(o),
            record: CasRecord {
                pre,
                exp,
                new,
                post,
                returned: pre,
            },
            injected_fault: false,
        }
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.faulty_object_count(), 0);
        assert_eq!(h.max_faults_per_object(), 0);
        assert_eq!(h.process_count(), 0);
        assert!(h.within(&Tolerance::new(0, 0, 0)));
    }

    #[test]
    fn counts_faults_per_object() {
        let mut h = History::new();
        h.push(ev(0, 0, BOTTOM, BOTTOM, 1, 1)); // correct success
        h.push(ev(1, 0, 1, BOTTOM, 2, 2)); // overriding fault on O0
        h.push(ev(1, 1, 1, BOTTOM, 2, 2)); // overriding fault on O1
        h.push(ev(2, 1, 2, BOTTOM, 3, 3)); // overriding fault on O1
        assert_eq!(h.len(), 4);
        assert_eq!(h.faulty_object_count(), 2);
        assert_eq!(h.max_faults_per_object(), 2);
        assert_eq!(h.faulty_objects(), vec![ObjectId(0), ObjectId(1)]);
        let counts = h.fault_counts_per_object();
        assert_eq!(counts[&ObjectId(0)], 1);
        assert_eq!(counts[&ObjectId(1)], 2);
    }

    #[test]
    fn tolerance_check_over_history() {
        let mut h = History::new();
        h.push(ev(0, 0, BOTTOM, BOTTOM, 1, 1));
        h.push(ev(1, 0, 1, BOTTOM, 2, 2)); // 1 fault on O0
        assert!(h.within(&Tolerance::new(1, 1, 2)));
        assert!(!h.within(&Tolerance::new(0, 0, 2))); // no faulty objects allowed
        assert!(!h.within(&Tolerance::new(1, 1, 1))); // too many processes
    }

    #[test]
    fn written_objects_in_first_write_order() {
        let mut h = History::new();
        h.push(ev(0, 2, BOTTOM, BOTTOM, 1, 1));
        h.push(ev(0, 0, 5, BOTTOM, 1, 5)); // unsuccessful: not a write
        h.push(ev(1, 0, BOTTOM, BOTTOM, 2, 2));
        h.push(ev(1, 2, 1, 1, 3, 3)); // O2 already recorded
        assert_eq!(h.written_objects(), vec![ObjectId(2), ObjectId(0)]);
    }

    #[test]
    fn events_on_filters_by_object() {
        let mut h = History::new();
        h.push(ev(0, 0, BOTTOM, BOTTOM, 1, 1));
        h.push(ev(0, 1, BOTTOM, BOTTOM, 1, 1));
        h.push(ev(1, 0, 1, 1, 2, 2));
        assert_eq!(h.events_on(ObjectId(0)).count(), 2);
        assert_eq!(h.events_on(ObjectId(1)).count(), 1);
    }

    #[test]
    fn ids_display() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(ObjectId(0).to_string(), "O0");
    }
}
