//! The data-fault severity lattice of Jayanti, Chandra and Toueg
//! (reviewed in Section 3.1) and its relation to the functional-fault
//! taxonomy.
//!
//! Jayanti et al. split object faults into **responsive** (every
//! operation still returns) and **nonresponsive**, each refined into
//! *crash*, *omission* and *arbitrary* sub-classes of increasing
//! severity. Their notion of **graceful degradation** asks that an
//! implementation built from base objects of some fault class never
//! exhibits a fault of a *worse* class, even when too many base objects
//! fail. This module encodes the lattice so that the reproduction can
//! state, for each CAS functional fault, where the known data-fault
//! reductions (Section 3.4) land it.

use crate::fault::FaultKind;

/// Responsiveness of a fault class (Jayanti et al.).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Responsiveness {
    /// Every operation returns (possibly with wrong results).
    Responsive,
    /// Operations may never return.
    Nonresponsive,
}

/// Behavior sub-class, ordered by severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Behavior {
    /// Crash: after the first fault the object behaves like a halted
    /// object (responsive crash returns a distinguished `⊥`-like answer).
    Crash,
    /// Omission: operations may act as if they were not performed.
    Omission,
    /// Arbitrary: no constraint on the faulty behavior.
    Arbitrary,
}

/// A point in the Jayanti et al. severity lattice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DataFaultClass {
    /// Responsive or nonresponsive.
    pub responsiveness: Responsiveness,
    /// Crash / omission / arbitrary.
    pub behavior: Behavior,
}

impl DataFaultClass {
    /// Construct a class.
    pub const fn new(responsiveness: Responsiveness, behavior: Behavior) -> Self {
        DataFaultClass {
            responsiveness,
            behavior,
        }
    }

    /// Is `self` at most as severe as `other`? The lattice order:
    /// responsive < nonresponsive on one axis, crash < omission <
    /// arbitrary on the other; classes are comparable componentwise.
    pub fn at_most(&self, other: &DataFaultClass) -> bool {
        self.responsiveness <= other.responsiveness && self.behavior <= other.behavior
    }

    /// The least upper bound of two classes.
    pub fn join(&self, other: &DataFaultClass) -> DataFaultClass {
        DataFaultClass {
            responsiveness: self.responsiveness.max(other.responsiveness),
            behavior: self.behavior.max(other.behavior),
        }
    }
}

impl std::fmt::Display for DataFaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = match self.responsiveness {
            Responsiveness::Responsive => "responsive",
            Responsiveness::Nonresponsive => "nonresponsive",
        };
        let b = match self.behavior {
            Behavior::Crash => "crash",
            Behavior::Omission => "omission",
            Behavior::Arbitrary => "arbitrary",
        };
        write!(f, "{r}-{b}")
    }
}

/// Where Section 3.4's reductions place each CAS functional fault in the
/// data-fault lattice — `None` for the overriding fault, which the paper
/// shows is **not** reducible (that irreducibility is what lets Theorem 6
/// beat the data-fault lower bound).
pub fn data_fault_reduction(kind: FaultKind) -> Option<DataFaultClass> {
    match kind {
        FaultKind::Overriding => None,
        // A silent fault "can be modeled as a nonresponsive data fault"
        // (Section 3.4): the write never takes effect, like an omitted
        // operation on a nonresponsive object.
        FaultKind::Silent => Some(DataFaultClass::new(
            Responsiveness::Nonresponsive,
            Behavior::Omission,
        )),
        // Invisible: "can be considered as a memory data fault according
        // to the model introduced by Afek et al." — a responsive fault
        // that corrupts values around the operation.
        FaultKind::Invisible => Some(DataFaultClass::new(
            Responsiveness::Responsive,
            Behavior::Arbitrary,
        )),
        // Arbitrary: "similar to the responsive arbitrary data fault".
        FaultKind::Arbitrary => Some(DataFaultClass::new(
            Responsiveness::Responsive,
            Behavior::Arbitrary,
        )),
        FaultKind::Nonresponsive => Some(DataFaultClass::new(
            Responsiveness::Nonresponsive,
            Behavior::Arbitrary,
        )),
    }
}

/// Graceful degradation (Jayanti et al., discussed in Section 6): does an
/// implementation whose base objects sit in `base` class stay within that
/// class when it fails exhibiting `exhibited`?
pub fn gracefully_degrades(base: &DataFaultClass, exhibited: &DataFaultClass) -> bool {
    exhibited.at_most(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RC: DataFaultClass = DataFaultClass::new(Responsiveness::Responsive, Behavior::Crash);
    const RO: DataFaultClass = DataFaultClass::new(Responsiveness::Responsive, Behavior::Omission);
    const RA: DataFaultClass = DataFaultClass::new(Responsiveness::Responsive, Behavior::Arbitrary);
    const NC: DataFaultClass = DataFaultClass::new(Responsiveness::Nonresponsive, Behavior::Crash);
    const NA: DataFaultClass =
        DataFaultClass::new(Responsiveness::Nonresponsive, Behavior::Arbitrary);

    #[test]
    fn lattice_order() {
        assert!(RC.at_most(&RO));
        assert!(RO.at_most(&RA));
        assert!(RC.at_most(&NA));
        assert!(!RA.at_most(&RC));
        // Incomparable pair: responsive-arbitrary vs nonresponsive-crash.
        assert!(!RA.at_most(&NC));
        assert!(!NC.at_most(&RA));
    }

    #[test]
    fn join_is_least_upper_bound() {
        assert_eq!(RA.join(&NC), NA);
        assert_eq!(RC.join(&RC), RC);
        assert!(RA.at_most(&RA.join(&NC)));
        assert!(NC.at_most(&RA.join(&NC)));
    }

    #[test]
    fn overriding_is_irreducible() {
        assert_eq!(data_fault_reduction(FaultKind::Overriding), None);
        for kind in [
            FaultKind::Silent,
            FaultKind::Invisible,
            FaultKind::Arbitrary,
            FaultKind::Nonresponsive,
        ] {
            assert!(data_fault_reduction(kind).is_some(), "{kind}");
        }
    }

    #[test]
    fn reductions_match_reducibility_flags() {
        for kind in FaultKind::ALL {
            assert_eq!(
                data_fault_reduction(kind).is_some(),
                kind.reducible_to_data_fault(),
                "{kind}: reduction presence must match the taxonomy flag"
            );
        }
    }

    #[test]
    fn graceful_degradation_examples() {
        // Exhibiting a crash when built from omission-class objects: fine.
        assert!(gracefully_degrades(&RO, &RC));
        // Exhibiting arbitrary behavior from crash-class objects: not graceful.
        assert!(!gracefully_degrades(&RC, &RA));
        // Same class: graceful by definition.
        assert!(gracefully_degrades(&NA, &NA));
    }

    #[test]
    fn display() {
        assert_eq!(RA.to_string(), "responsive-arbitrary");
        assert_eq!(NC.to_string(), "nonresponsive-crash");
    }
}
