//! The consensus task specification (Section 2) and its checker.
//!
//! A consensus protocol must satisfy, over every execution:
//!
//! 1. **Validity** — the decided-upon value is the input of some process;
//! 2. **Consistency** — all processes decide the same value;
//! 3. **Wait-freedom** — each process finishes after a finite number of its
//!    own steps, regardless of the other processes.
//!
//! Wait-freedom is checked operationally: every participating process must
//! have decided, and (where the caller supplies one) within a per-process
//! step budget.

use crate::history::ProcessId;
use crate::value::Input;

/// The outcome of one process's `decide(input)` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// The deciding process.
    pub process: ProcessId,
    /// Its input value.
    pub input: Input,
    /// The value it decided, or `None` if it never terminated (within the
    /// harness's execution budget) — a wait-freedom violation.
    pub decision: Option<Input>,
    /// Number of shared-memory steps the process took.
    pub steps: u64,
}

/// A consensus-property violation, with enough detail to print a witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConsensusViolation {
    /// A process decided a value that is no process's input.
    Validity {
        /// The offending process.
        process: ProcessId,
        /// What it decided.
        decided: Input,
        /// The set of legal inputs.
        inputs: Vec<Input>,
    },
    /// Two processes decided differently.
    Consistency {
        /// First disagreeing process and its decision.
        a: (ProcessId, Input),
        /// Second disagreeing process and its decision.
        b: (ProcessId, Input),
    },
    /// A process failed to decide, or exceeded its step budget.
    WaitFreedom {
        /// The offending process.
        process: ProcessId,
        /// Steps it took before the harness gave up.
        steps: u64,
        /// The step budget, if one was imposed.
        budget: Option<u64>,
    },
}

impl std::fmt::Display for ConsensusViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsensusViolation::Validity {
                process,
                decided,
                inputs,
            } => write!(
                f,
                "validity: {process} decided {decided}, not an input of any process (inputs: {inputs:?})"
            ),
            ConsensusViolation::Consistency { a, b } => write!(
                f,
                "consistency: {} decided {} but {} decided {}",
                a.0, a.1, b.0, b.1
            ),
            ConsensusViolation::WaitFreedom {
                process,
                steps,
                budget,
            } => match budget {
                Some(b) => write!(
                    f,
                    "wait-freedom: {process} took {steps} steps, exceeding budget {b}"
                ),
                None => write!(f, "wait-freedom: {process} never decided ({steps} steps)"),
            },
        }
    }
}

/// The verdict of checking a set of outcomes against the consensus
/// specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConsensusVerdict {
    /// All violations found (empty ⇒ the execution satisfies consensus).
    pub violations: Vec<ConsensusViolation>,
    /// The agreed value, when consistency holds and someone decided.
    pub agreed: Option<Input>,
}

impl ConsensusVerdict {
    /// `true` iff the execution satisfied validity, consistency and
    /// wait-freedom.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check a completed execution's outcomes against the consensus
/// specification. `step_budget`, when given, is the per-process bound used
/// for the operational wait-freedom check.
pub fn check_consensus(outcomes: &[Outcome], step_budget: Option<u64>) -> ConsensusVerdict {
    let inputs: Vec<Input> = outcomes.iter().map(|o| o.input).collect();
    let mut violations = Vec::new();

    for o in outcomes {
        match o.decision {
            None => violations.push(ConsensusViolation::WaitFreedom {
                process: o.process,
                steps: o.steps,
                budget: None,
            }),
            Some(d) => {
                if !inputs.contains(&d) {
                    violations.push(ConsensusViolation::Validity {
                        process: o.process,
                        decided: d,
                        inputs: inputs.clone(),
                    });
                }
                if let Some(budget) = step_budget {
                    if o.steps > budget {
                        violations.push(ConsensusViolation::WaitFreedom {
                            process: o.process,
                            steps: o.steps,
                            budget: Some(budget),
                        });
                    }
                }
            }
        }
    }

    let mut agreed = None;
    let mut decided = outcomes
        .iter()
        .filter_map(|o| o.decision.map(|d| (o.process, d)));
    if let Some(first) = decided.next() {
        agreed = Some(first.1);
        for other in decided {
            if other.1 != first.1 {
                violations.push(ConsensusViolation::Consistency { a: first, b: other });
                agreed = None;
                break;
            }
        }
    }

    ConsensusVerdict { violations, agreed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(p: usize, input: u32, decision: Option<u32>, steps: u64) -> Outcome {
        Outcome {
            process: ProcessId(p),
            input: Input(input),
            decision: decision.map(Input),
            steps,
        }
    }

    #[test]
    fn agreeing_execution_is_ok() {
        let v = check_consensus(
            &[out(0, 10, Some(10), 3), out(1, 20, Some(10), 4)],
            Some(100),
        );
        assert!(v.ok());
        assert_eq!(v.agreed, Some(Input(10)));
    }

    #[test]
    fn validity_violation() {
        let v = check_consensus(&[out(0, 10, Some(99), 3), out(1, 20, Some(99), 3)], None);
        assert!(!v.ok());
        assert!(matches!(
            v.violations[0],
            ConsensusViolation::Validity {
                decided: Input(99),
                ..
            }
        ));
    }

    #[test]
    fn consistency_violation() {
        let v = check_consensus(&[out(0, 10, Some(10), 3), out(1, 20, Some(20), 3)], None);
        assert!(!v.ok());
        assert!(v
            .violations
            .iter()
            .any(|x| matches!(x, ConsensusViolation::Consistency { .. })));
        assert_eq!(v.agreed, None);
    }

    #[test]
    fn wait_freedom_violation_on_no_decision() {
        let v = check_consensus(&[out(0, 10, Some(10), 3), out(1, 20, None, 500)], None);
        assert!(!v.ok());
        assert!(matches!(
            v.violations[0],
            ConsensusViolation::WaitFreedom { budget: None, .. }
        ));
    }

    #[test]
    fn wait_freedom_violation_on_budget() {
        let v = check_consensus(&[out(0, 10, Some(10), 101)], Some(100));
        assert!(!v.ok());
        assert!(matches!(
            v.violations[0],
            ConsensusViolation::WaitFreedom {
                budget: Some(100),
                ..
            }
        ));
    }

    #[test]
    fn single_process_trivially_consistent() {
        let v = check_consensus(&[out(0, 10, Some(10), 1)], None);
        assert!(v.ok());
        assert_eq!(v.agreed, Some(Input(10)));
    }

    #[test]
    fn duplicate_inputs_are_fine() {
        // Two processes may share an input value; deciding it is valid.
        let v = check_consensus(&[out(0, 7, Some(7), 2), out(1, 7, Some(7), 2)], None);
        assert!(v.ok());
    }

    #[test]
    fn violations_display() {
        let v = check_consensus(&[out(0, 10, Some(10), 3), out(1, 20, Some(20), 3)], None);
        let text = v.violations[0].to_string();
        assert!(text.contains("consistency"), "{text}");
    }
}
