//! Single-word values as stored in CAS objects.
//!
//! The paper's model (Section 2) works with CAS *objects* that hold a single
//! value. Every construction initializes its objects with a distinguished
//! value `⊥` ("bottom") that differs from every process input. To keep the
//! native execution path a genuine single-word compare-and-swap, we encode
//! the entire logical cell content — `⊥` or a payload — into one [`Word`].

/// The raw machine word held by a CAS object.
pub type Word = u64;

/// The reserved encoding of the distinguished initial value `⊥`.
///
/// Inputs are [`Input`] values (`u32`), so no legal payload collides with
/// this sentinel, even after the `⟨value, stage⟩` packing used by the
/// staged protocol (Figure 3), which keeps the top tag bit clear.
pub const BOTTOM: Word = Word::MAX;

/// A consensus input value.
///
/// The consensus problem (Section 2) gives each process an input; validity
/// requires the decision to be one of them. Restricting inputs to 32 bits
/// leaves headroom in the word for the stage counter used by the
/// `(f, t, f+1)`-tolerant construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Input(pub u32);

impl Input {
    /// Encode this input as a bare word (used by the one-shot protocols of
    /// Figures 1 and 2, whose cells hold either `⊥` or an input).
    #[inline]
    pub fn to_word(self) -> Word {
        self.0 as Word
    }

    /// Decode a bare word back into an input.
    ///
    /// Returns `None` for [`BOTTOM`] or any word outside the input range.
    #[inline]
    pub fn from_word(w: Word) -> Option<Self> {
        if w <= u32::MAX as Word {
            Some(Input(w as u32))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Input {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Logical view of a cell's content: `⊥` or a raw payload word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellContent {
    /// The distinguished initial value.
    Bottom,
    /// Any non-`⊥` payload.
    Payload(Word),
}

impl CellContent {
    /// Decode a raw word.
    #[inline]
    pub fn from_word(w: Word) -> Self {
        if w == BOTTOM {
            CellContent::Bottom
        } else {
            CellContent::Payload(w)
        }
    }

    /// Encode back to a raw word.
    #[inline]
    pub fn to_word(self) -> Word {
        match self {
            CellContent::Bottom => BOTTOM,
            CellContent::Payload(w) => w,
        }
    }

    /// `true` iff this is `⊥`.
    #[inline]
    pub fn is_bottom(self) -> bool {
        matches!(self, CellContent::Bottom)
    }
}

impl std::fmt::Display for CellContent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellContent::Bottom => write!(f, "⊥"),
            CellContent::Payload(w) => write!(f, "{w:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_word_round_trip() {
        for raw in [0u32, 1, 7, u32::MAX] {
            let i = Input(raw);
            assert_eq!(Input::from_word(i.to_word()), Some(i));
        }
    }

    #[test]
    fn bottom_is_not_an_input() {
        assert_eq!(Input::from_word(BOTTOM), None);
    }

    #[test]
    fn input_never_encodes_to_bottom() {
        assert_ne!(Input(u32::MAX).to_word(), BOTTOM);
        assert_ne!(Input(0).to_word(), BOTTOM);
    }

    #[test]
    fn cell_content_round_trip() {
        assert_eq!(CellContent::from_word(BOTTOM), CellContent::Bottom);
        assert!(CellContent::from_word(BOTTOM).is_bottom());
        let c = CellContent::from_word(42);
        assert_eq!(c, CellContent::Payload(42));
        assert_eq!(c.to_word(), 42);
        assert_eq!(CellContent::Bottom.to_word(), BOTTOM);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CellContent::Bottom.to_string(), "⊥");
        assert_eq!(Input(9).to_string(), "9");
    }
}
