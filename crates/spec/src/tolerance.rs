//! `(f, t, n)`-tolerance descriptors (Definition 3).
//!
//! An implementation is `(f, t, n)`-tolerant for a task if the task is
//! computed correctly in any execution with at most `n` processes, at most
//! `f` faulty objects and at most `t` functional faults per faulty object.
//! `t = ∞` (unbounded faults per object) and `n = ∞` (any number of
//! processes) are captured by [`Bound::Unbounded`].

/// A possibly-unbounded natural-number bound.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Bound {
    /// A finite bound.
    Finite(u64),
    /// `∞`.
    Unbounded,
}

impl Bound {
    /// Does `x` respect this bound (`x ≤ bound`)?
    #[inline]
    pub fn admits(self, x: u64) -> bool {
        match self {
            Bound::Finite(b) => x <= b,
            Bound::Unbounded => true,
        }
    }

    /// The finite value, if any.
    #[inline]
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(b) => Some(b),
            Bound::Unbounded => None,
        }
    }

    /// `true` iff unbounded.
    #[inline]
    pub fn is_unbounded(self) -> bool {
        matches!(self, Bound::Unbounded)
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use Bound::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), Unbounded) => std::cmp::Ordering::Less,
            (Unbounded, Finite(_)) => std::cmp::Ordering::Greater,
            (Unbounded, Unbounded) => std::cmp::Ordering::Equal,
        }
    }
}

impl From<u64> for Bound {
    fn from(v: u64) -> Self {
        Bound::Finite(v)
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Finite(b) => write!(f, "{b}"),
            Bound::Unbounded => write!(f, "∞"),
        }
    }
}

/// An `(f, t, n)`-tolerance descriptor (Definition 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Tolerance {
    /// Maximum number of faulty objects in the execution.
    pub f: u64,
    /// Maximum number of functional faults per faulty object.
    pub t: Bound,
    /// Maximum number of processes in the execution.
    pub n: Bound,
}

impl Tolerance {
    /// `(f, t, n)`-tolerance with all three parameters explicit.
    pub fn new(f: u64, t: impl Into<Bound>, n: impl Into<Bound>) -> Self {
        Tolerance {
            f,
            t: t.into(),
            n: n.into(),
        }
    }

    /// `(f, t)`-tolerance, i.e. `(f, t, ∞)` (Definition 3's shorthand).
    pub fn ft(f: u64, t: impl Into<Bound>) -> Self {
        Tolerance {
            f,
            t: t.into(),
            n: Bound::Unbounded,
        }
    }

    /// `f`-tolerance, i.e. `(f, ∞, ∞)` (Definition 3's shorthand).
    pub fn f_tolerant(f: u64) -> Self {
        Tolerance {
            f,
            t: Bound::Unbounded,
            n: Bound::Unbounded,
        }
    }

    /// Does an execution profile — `faulty_objects` distinct faulty
    /// objects, at most `max_faults_per_object` faults on any one of them,
    /// `processes` participating processes — fall within this tolerance?
    pub fn admits(&self, faulty_objects: u64, max_faults_per_object: u64, processes: u64) -> bool {
        faulty_objects <= self.f
            && (faulty_objects == 0 || self.t.admits(max_faults_per_object))
            && self.n.admits(processes)
    }

    /// Is `other` at least as demanding as `self`? An implementation that
    /// is `other`-tolerant is then also `self`-tolerant. With `f = 0` the
    /// per-object limit `t` is vacuous (there are no faulty objects to
    /// bound) and is ignored.
    pub fn subsumed_by(&self, other: &Tolerance) -> bool {
        self.f <= other.f && (self.f == 0 || self.t <= other.t) && self.n <= other.n
    }
}

impl std::fmt::Display for Tolerance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})-tolerant", self.f, self.t, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_admits() {
        assert!(Bound::Finite(3).admits(3));
        assert!(!Bound::Finite(3).admits(4));
        assert!(Bound::Unbounded.admits(u64::MAX));
    }

    #[test]
    fn bound_ordering() {
        assert!(Bound::Finite(5) < Bound::Unbounded);
        assert!(Bound::Finite(5) < Bound::Finite(6));
        assert_eq!(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(Bound::from(7), Bound::Finite(7));
    }

    #[test]
    fn tolerance_shorthands() {
        let t = Tolerance::f_tolerant(3);
        assert_eq!(t.t, Bound::Unbounded);
        assert_eq!(t.n, Bound::Unbounded);
        let t = Tolerance::ft(2, 5);
        assert_eq!(t.t, Bound::Finite(5));
        assert_eq!(t.n, Bound::Unbounded);
    }

    #[test]
    fn tolerance_admits_profiles() {
        // Theorem 6 shape: (f, t, f+1) with f = 2, t = 3.
        let tol = Tolerance::new(2, 3, 3);
        assert!(tol.admits(2, 3, 3));
        assert!(tol.admits(0, 0, 2));
        assert!(!tol.admits(3, 1, 3)); // too many faulty objects
        assert!(!tol.admits(2, 4, 3)); // too many faults per object
        assert!(!tol.admits(2, 3, 4)); // too many processes
    }

    #[test]
    fn zero_faulty_objects_ignores_t() {
        let tol = Tolerance::new(1, 0, Bound::Unbounded);
        // No faulty object ⇒ the per-object limit is vacuous.
        assert!(tol.admits(0, 99, 5));
    }

    #[test]
    fn subsumption() {
        // (1, 2, 3) is weaker than (2, ∞, ∞).
        let weak = Tolerance::new(1, 2, 3);
        let strong = Tolerance::f_tolerant(2);
        assert!(weak.subsumed_by(&strong));
        assert!(!strong.subsumed_by(&weak));
    }

    #[test]
    fn subsumption_ignores_t_at_f_zero() {
        // (0, 5, 2) asks for no fault tolerance at all; any implementation
        // covers its t component vacuously.
        let zero_f = Tolerance::new(0, 5, 2);
        let reliable_only = Tolerance::new(0, 0, Bound::Unbounded);
        assert!(zero_f.subsumed_by(&reliable_only));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Tolerance::new(1, 2, 3).to_string(), "(1, 2, 3)-tolerant");
        assert_eq!(Tolerance::f_tolerant(4).to_string(), "(4, ∞, ∞)-tolerant");
    }
}
