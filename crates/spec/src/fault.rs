//! The functional-fault taxonomy of the CAS object (Sections 3.3–3.4) and
//! the classification of observed executions.
//!
//! A functional fault `⟨O, Φ'⟩` (Definition 1) is an execution of operation
//! `O` whose entry state satisfied the preconditions `Ψ` but whose result
//! violates the standard postconditions `Φ` while satisfying the deviating
//! postconditions `Φ'`. An *object* is faulty in an execution (Definition 2)
//! if at least one operation on it faults.

use crate::triple::{
    arbitrary_post, invisible_post, overriding_post, silent_post, standard_post, CasRecord,
};

/// The CAS functional-fault kinds discussed in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Section 3.3 — the case study. The comparison erroneously succeeds:
    /// the new value is written even when `R' ≠ exp`. Responsive, and the
    /// returned old value is still correct. This is the fault for which the
    /// paper's constructions and lower bounds are proven.
    Overriding,
    /// Section 3.4 — the new value is *not* written even though `R' = exp`.
    /// With a bounded total number of faults, retrying the Herlihy protocol
    /// suffices; with unbounded faults, termination can be foiled.
    Silent,
    /// Section 3.4 — the returned `old` value is incorrect. Reducible to a
    /// responsive data fault in the model of Afek et al.
    Invisible,
    /// Section 3.4 — an arbitrary value is written regardless of the
    /// operation's inputs. Equivalent to the responsive arbitrary data
    /// fault; `O(f log f)` constructions from Jayanti et al. apply.
    Arbitrary,
    /// Section 3.4 — the operation never responds. Even one nonresponsive
    /// fault makes consensus impossible (reduction to Loui–Abu-Amara /
    /// Dolev–Dwork–Stockmeyer).
    Nonresponsive,
}

impl FaultKind {
    /// All kinds, in paper order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Overriding,
        FaultKind::Silent,
        FaultKind::Invisible,
        FaultKind::Arbitrary,
        FaultKind::Nonresponsive,
    ];

    /// Whether the fault is *responsive*: the operation always returns.
    /// (Jayanti et al.'s responsive/nonresponsive split, Section 3.1.)
    pub fn responsive(self) -> bool {
        !matches!(self, FaultKind::Nonresponsive)
    }

    /// Whether a fault of this kind can be reduced to a *data* fault in the
    /// models of Afek et al. / Jayanti et al., per the discussion in
    /// Section 3.4. The overriding fault is the one that is **not**
    /// reducible — which is what makes it interesting.
    pub fn reducible_to_data_fault(self) -> bool {
        match self {
            FaultKind::Overriding => false,
            FaultKind::Silent => true, // as a nonresponsive data fault
            FaultKind::Invisible => true,
            FaultKind::Arbitrary => true,
            FaultKind::Nonresponsive => true,
        }
    }

    /// Human-readable description of the deviating postconditions `Φ'`.
    pub fn deviating_postcondition(self) -> &'static str {
        match self {
            FaultKind::Overriding => "R = val ∧ old = R'",
            FaultKind::Silent => "R = R' ∧ old = R'",
            FaultKind::Invisible => "standard(R) ∧ old ≠ R'",
            FaultKind::Arbitrary => "old = R'",
            FaultKind::Nonresponsive => "(no response)",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Overriding => "overriding",
            FaultKind::Silent => "silent",
            FaultKind::Invisible => "invisible",
            FaultKind::Arbitrary => "arbitrary",
            FaultKind::Nonresponsive => "nonresponsive",
        };
        f.write_str(s)
    }
}

/// Classification of a single (responsive) CAS execution record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CasClassification {
    /// Satisfies the standard postconditions `Φ`.
    Correct,
    /// Violates `Φ` but matches the named structured deviation `Φ'`.
    Fault(FaultKind),
    /// Violates `Φ` and matches none of the named deviations.
    Unstructured,
}

/// Classify an observed CAS execution against the taxonomy.
///
/// Kinds are tested from most to least constrained so the classification is
/// the tightest structured description of the deviation. Nonresponsive
/// faults never produce a record, so they cannot appear here.
pub fn classify_cas(record: &CasRecord) -> CasClassification {
    if standard_post(record) {
        return CasClassification::Correct;
    }
    if overriding_post(record) {
        return CasClassification::Fault(FaultKind::Overriding);
    }
    if silent_post(record) {
        return CasClassification::Fault(FaultKind::Silent);
    }
    if invisible_post(record) {
        return CasClassification::Fault(FaultKind::Invisible);
    }
    if arbitrary_post(record) {
        return CasClassification::Fault(FaultKind::Arbitrary);
    }
    CasClassification::Unstructured
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BOTTOM;

    fn rec(pre: u64, exp: u64, new: u64, post: u64, returned: u64) -> CasRecord {
        CasRecord {
            pre,
            exp,
            new,
            post,
            returned,
        }
    }

    #[test]
    fn classify_correct() {
        assert_eq!(
            classify_cas(&rec(BOTTOM, BOTTOM, 5, 5, BOTTOM)),
            CasClassification::Correct
        );
        assert_eq!(
            classify_cas(&rec(7, BOTTOM, 5, 7, 7)),
            CasClassification::Correct
        );
    }

    #[test]
    fn classify_overriding() {
        assert_eq!(
            classify_cas(&rec(7, BOTTOM, 5, 5, 7)),
            CasClassification::Fault(FaultKind::Overriding)
        );
    }

    #[test]
    fn classify_silent() {
        assert_eq!(
            classify_cas(&rec(BOTTOM, BOTTOM, 5, BOTTOM, BOTTOM)),
            CasClassification::Fault(FaultKind::Silent)
        );
    }

    #[test]
    fn classify_invisible() {
        assert_eq!(
            classify_cas(&rec(7, BOTTOM, 5, 7, 9)),
            CasClassification::Fault(FaultKind::Invisible)
        );
    }

    #[test]
    fn classify_arbitrary() {
        assert_eq!(
            classify_cas(&rec(7, BOTTOM, 5, 999, 7)),
            CasClassification::Fault(FaultKind::Arbitrary)
        );
    }

    #[test]
    fn classify_unstructured() {
        // Wrong write AND wrong returned value: no structured Φ' matches.
        assert_eq!(
            classify_cas(&rec(7, BOTTOM, 5, 999, 111)),
            CasClassification::Unstructured
        );
    }

    #[test]
    fn responsiveness_and_reducibility() {
        assert!(FaultKind::Overriding.responsive());
        assert!(!FaultKind::Nonresponsive.responsive());
        assert!(!FaultKind::Overriding.reducible_to_data_fault());
        for k in [
            FaultKind::Silent,
            FaultKind::Invisible,
            FaultKind::Arbitrary,
            FaultKind::Nonresponsive,
        ] {
            assert!(k.reducible_to_data_fault(), "{k} should be reducible");
        }
    }

    #[test]
    fn all_kinds_have_descriptions() {
        for k in FaultKind::ALL {
            assert!(!k.deviating_postcondition().is_empty());
            assert!(!k.to_string().is_empty());
        }
    }
}
