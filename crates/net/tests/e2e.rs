//! End-to-end tests over real sockets: a server on an ephemeral port,
//! `NetClient`s talking to it, and — the one that matters — a naive
//! backend under heavy faults surfacing a **divergence error** at the
//! remote client instead of wrong data.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_net::wire::{ErrorCode, Request, Response};
use ff_net::{NetClient, NetServer, ServerConfig};
use ff_store::{
    drive_clients, Backend, FaultConfig, Kv, KvOp, Store, StoreConfig, StoreError, StoreMetrics,
    WorkloadMix, KV_MAX,
};

fn serve(config: StoreConfig, server_config: ServerConfig) -> (Arc<Store>, NetServer) {
    let store = Arc::new(Store::new(config));
    let server = NetServer::start(Arc::clone(&store), "127.0.0.1:0", server_config)
        .expect("bind ephemeral port");
    (store, server)
}

fn reliable_config() -> StoreConfig {
    StoreConfig::builder()
        .shards(2)
        .backend(Backend::reliable())
        .build()
        .unwrap()
}

#[test]
fn kv_over_tcp_matches_in_process_semantics() {
    let (store, server) = serve(reliable_config(), ServerConfig::default());
    let mut c = NetClient::connect(server.addr()).unwrap();

    assert_eq!(c.get(7).unwrap(), None);
    assert_eq!(c.put(7, 99).unwrap(), None);
    assert_eq!(c.put(7, 100).unwrap(), Some(99));
    assert_eq!(c.get(7).unwrap(), Some(100));
    assert_eq!(c.del(7).unwrap(), Some(100));
    assert_eq!(c.get(7).unwrap(), None);

    // Validation errors cross the wire as typed errors, with the
    // offending key in the detail word — not as closed connections.
    assert_eq!(
        c.get(KV_MAX + 1),
        Err(StoreError::KeyOutOfRange { key: KV_MAX + 1 })
    );
    assert_eq!(
        c.put(1, KV_MAX + 1),
        Err(StoreError::ValueOutOfRange { value: KV_MAX + 1 })
    );
    // The connection survives the rejected requests.
    assert_eq!(c.put(1, 1).unwrap(), None);

    let stats = c.stats().unwrap();
    assert_eq!(stats.shards, 2);
    assert!(!stats.diverged);
    assert!(stats.ops_served > 0);
    // Coalescing observability: the serves above ran through merged
    // runs, and every answered frame was staged.
    assert!(stats.runs_executed > 0);
    assert!(stats.run_ops > 0);
    assert!(stats.max_run_ops >= 1);
    assert!(stats.frames_staged >= stats.runs_executed);
    // Not a combining store: the combiner counters stay zero.
    assert_eq!(stats.combine_passes, 0);
    assert_eq!(stats.combine_ops, 0);
    c.ping().unwrap();

    drop(c);
    let mut report = server.shutdown();
    assert!(store.verify(&mut report.clients).all_consistent());
}

/// A durable server killed (dropped without flushing everything it
/// could) and restarted over the same data dir serves the history it
/// fsynced — and both generations expose their WAL/recovery counters
/// over the STATS frame.
#[test]
fn durable_server_recovers_over_same_data_dir() {
    let dir = std::env::temp_dir().join(format!(
        "ff-net-durable-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig::builder()
        .shards(2)
        .backend(Backend::robust())
        .fault_rate(0.2)
        .checkpoint_interval(8)
        .data_dir(&dir)
        .group_commit(4)
        .rotate_cost(0)
        .build()
        .unwrap();

    let (store, server) = serve(config.clone(), ServerConfig::default());
    let mut c = NetClient::connect(server.addr()).unwrap();
    for k in 0..60u32 {
        c.put(k % 16, k + 500).unwrap();
    }
    let stats = c.stats().unwrap();
    assert!(stats.wal_records > 0, "durable server logged nothing");
    assert!(stats.wal_fsyncs > 0, "durable server never fsynced");
    assert_eq!(stats.recovered_records + stats.recovered_checkpoints, 0);
    drop(c);
    let report = server.shutdown();
    assert!(
        report.shutdown_errors.is_empty(),
        "{:?}",
        report.shutdown_errors
    );
    drop(store); // the kill: volatile state gone, the dir survives

    let (recovered, report) = Store::recover(config).expect("recovery");
    assert!(report.records_replayed() + report.checkpoints_loaded() > 0);
    let store = Arc::new(recovered);
    let server = NetServer::start(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port");
    let mut c = NetClient::connect(server.addr()).unwrap();
    for k in 0..16u32 {
        let want = (0..60u32).rfind(|i| i % 16 == k);
        assert_eq!(c.get(k).unwrap(), want.map(|v| v + 500), "key {k}");
    }
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.recovered_records,
        report.records_replayed(),
        "STATS must echo the recovery replay count"
    );
    assert_eq!(stats.recovered_checkpoints, report.checkpoints_loaded());
    drop(c);
    let mut server_report = server.shutdown();
    assert!(server_report.shutdown_errors.is_empty());
    assert!(store.verify(&mut server_report.clients).all_consistent());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_and_pipeline_answer_in_request_order() {
    let (_store, server) = serve(reliable_config(), ServerConfig::default());
    let mut c = NetClient::connect(server.addr()).unwrap();

    // One BATCH frame: per-key order holds within the batch.
    let values = c
        .batch(&[
            KvOp::Put(1, 10),
            KvOp::Put(2, 20),
            KvOp::Get(1),
            KvOp::Put(1, 11),
            KvOp::Del(2),
        ])
        .unwrap();
    assert_eq!(values, vec![None, None, Some(10), Some(10), Some(20)]);

    // A pipelined burst of single-op frames: the server coalesces them
    // into one log pass but must answer under the right ids, in order.
    let resps = c
        .pipeline(&[
            Request::Put { key: 5, value: 50 },
            Request::Get { key: 5 },
            Request::Ping,
            Request::Del { key: 5 },
            Request::Get { key: 5 },
        ])
        .unwrap();
    assert_eq!(
        resps,
        vec![
            Response::Value(None),
            Response::Value(Some(50)),
            Response::Pong,
            Response::Value(Some(50)),
            Response::Value(None),
        ]
    );
    server.shutdown();
}

/// The headline property: a naive-backend store under arbitrary faults
/// answers the remote client with a divergence error — never with data
/// replayed from a corrupted log.
#[test]
fn naive_backend_surfaces_divergence_error_not_wrong_data() {
    // Junk landing observably is probabilistic; retry over seeds like
    // E15 does. Full fault rate makes a handful of seeds plenty.
    for seed in 0..20u64 {
        let config = StoreConfig::builder()
            .shards(2)
            .backend(Backend::naive())
            .fault(FaultConfig {
                kind: ff_spec::FaultKind::Arbitrary,
                f: 1,
                t: ff_spec::Bound::Unbounded,
                rate: 1.0,
                ..FaultConfig::default()
            })
            .checkpoint_interval(8)
            .seed(0xD1E ^ seed)
            .build()
            .unwrap();
        let (store, server) = serve(config, ServerConfig::default());
        // Junk decisions need contention to become observable — drive
        // three concurrent connections, exactly like the soak does.
        let clients: Vec<NetClient> = (0..3)
            .map(|_| NetClient::connect(server.addr()).unwrap())
            .collect();
        let metrics = StoreMetrics::default();
        let mix = WorkloadMix {
            read_pct: 40,
            keyspace: 32,
            seed,
            batch: 1,
        };
        let outcome = drive_clients(
            clients,
            &mix,
            Instant::now() + Duration::from_millis(200),
            &metrics,
            || {},
        );
        // The contract under test: a worker either gets correct-shaped
        // answers or a typed divergence error — never anything else.
        for e in &outcome.errors {
            assert!(
                matches!(e, StoreError::Divergence { .. }),
                "only divergence errors are expected, got {e}"
            );
        }
        let diverged: Vec<usize> = outcome
            .errors
            .iter()
            .filter_map(|e| match e {
                StoreError::Divergence { shard } => Some(*shard),
                _ => None,
            })
            .collect();
        drop(outcome.clients);
        let mut report = server.shutdown();
        let verify = store.verify(&mut report.clients);
        if let Some(&shard) = diverged.first() {
            // A client saw it online; the post-drain verify must agree
            // about that shard.
            assert!(
                verify.diverged_shards().contains(&shard),
                "client reported shard {shard} but verify found {:?}",
                verify.diverged_shards()
            );
            return;
        }
        // This seed's junk stayed invisible — try the next one.
    }
    panic!("no seed produced an observable divergence over the wire");
}

#[test]
fn connection_cap_refuses_with_overloaded_frame() {
    let (_store, server) = serve(
        reliable_config(),
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    );
    let mut a = NetClient::connect(server.addr()).unwrap();
    let mut b = NetClient::connect(server.addr()).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // The third connection gets one Overloaded error frame (id 0) and
    // is closed; NetClient maps that to a Server error on first use.
    let mut c = NetClient::connect(server.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let err = loop {
        match c.ping() {
            Err(e) => break e,
            // Accept-loop race: the refusal may not have landed yet.
            Ok(()) => assert!(Instant::now() < deadline, "cap never enforced"),
        }
    };
    match err {
        StoreError::Server { code, .. } => assert_eq!(code, ErrorCode::Overloaded as u8),
        StoreError::Io(_) => {} // refusal frame lost to the close race
        other => panic!("expected overloaded/io error, got {other}"),
    }

    // Capacity frees when a connection closes.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut d = NetClient::connect(server.addr()).unwrap();
        if d.ping().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed after close");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// Regression for the old shutdown path's `.expect("shutdown runs
/// once")` / `.expect("accept thread never panics")`: signaling
/// shutdown twice (or racing a signal with the draining join) must be
/// a no-op, and a clean shutdown must report zero [`ShutdownError`]s —
/// never abort the process.
#[test]
fn shutdown_is_idempotent_and_reports_typed_errors_instead_of_panicking() {
    let (_store, server) = serve(reliable_config(), ServerConfig::default());
    let mut c = NetClient::connect(server.addr()).unwrap();
    assert_eq!(c.put(1, 1).unwrap(), None);

    assert!(server.begin_shutdown(), "first signal flips the flag");
    assert!(!server.begin_shutdown(), "second signal is a no-op");
    assert!(!server.begin_shutdown(), "and so is every later one");

    // Shutdown after the flag is already set still drains and joins
    // cleanly — the in-flight connection retires its replica.
    let report = server.shutdown();
    assert!(
        report.shutdown_errors.is_empty(),
        "clean drain reported errors: {:?}",
        report.shutdown_errors
    );
    assert_eq!(report.clients.len(), 1);
    assert!(report.ops_served >= 1);
}

/// A flat-combining store behind the reactor: ops from several
/// connections drain through the shard cores' combine passes, STATS
/// surfaces the combiner counters, and the post-drain verify holds.
#[test]
fn combining_store_serves_and_reports_combiner_counters() {
    let (store, server) = serve(
        StoreConfig::builder()
            .shards(2)
            .backend(Backend::robust())
            .fault_rate(0.2)
            .rotate_kinds(true)
            .checkpoint_interval(16)
            .combining(true)
            .build()
            .unwrap(),
        ServerConfig::default(),
    );
    let clients: Vec<NetClient> = (0..3)
        .map(|_| NetClient::connect(server.addr()).unwrap())
        .collect();
    let metrics = StoreMetrics::default();
    let mix = WorkloadMix {
        read_pct: 60,
        keyspace: 64,
        seed: 0xC0B1,
        batch: 2,
    };
    let outcome = drive_clients(
        clients,
        &mix,
        Instant::now() + Duration::from_millis(300),
        &metrics,
        || {},
    );
    assert!(
        outcome.errors.is_empty(),
        "tolerated faults must stay silent: {:?}",
        outcome.errors
    );
    let mut probe = NetClient::connect(server.addr()).unwrap();
    let stats = probe.stats().unwrap();
    assert!(!stats.diverged);
    assert!(stats.runs_executed > 0);
    assert!(stats.frames_staged >= stats.runs_executed);
    assert!(
        stats.combine_passes > 0,
        "a combining store served over TCP must run combine passes: {stats:?}"
    );
    assert!(stats.combine_ops >= stats.combine_passes);
    drop(probe);
    drop(outcome.clients);
    let mut report = server.shutdown();
    assert!(store.verify(&mut report.clients).all_consistent());
}

#[test]
fn graceful_shutdown_retires_every_replica_for_verification() {
    let (store, server) = serve(
        StoreConfig::builder()
            .shards(3)
            .backend(Backend::robust())
            .fault_rate(0.3)
            .rotate_kinds(true)
            .checkpoint_interval(16)
            .build()
            .unwrap(),
        ServerConfig::default(),
    );

    // Drive the server through the same generic loop the soak uses.
    let clients: Vec<NetClient> = (0..3)
        .map(|_| NetClient::connect(server.addr()).unwrap())
        .collect();
    let metrics = StoreMetrics::default();
    let mix = WorkloadMix {
        read_pct: 40,
        keyspace: 128,
        seed: 0x5151,
        batch: 3,
    };
    let outcome = drive_clients(
        clients,
        &mix,
        Instant::now() + Duration::from_millis(300),
        &metrics,
        || {},
    );
    assert!(
        outcome.errors.is_empty(),
        "robust backend must not error: {:?}",
        outcome.errors
    );
    let driven = metrics.batches.count();
    assert!(driven > 0);
    drop(outcome.clients);

    let mut report = server.shutdown();
    assert_eq!(
        report.clients.len(),
        3,
        "every connection retires its replica"
    );
    assert!(report.ops_served >= driven);
    assert!(store.verify(&mut report.clients).all_consistent());
}
