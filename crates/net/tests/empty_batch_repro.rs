use ff_net::{NetClient, NetServer, ServerConfig};
use ff_store::{Backend, Kv, Store, StoreConfig};
use std::sync::Arc;

#[test]
fn empty_batch_frame_gets_empty_response() {
    let store = Arc::new(Store::new(
        StoreConfig::builder()
            .shards(2)
            .backend(Backend::reliable())
            .build()
            .unwrap(),
    ));
    let server = NetServer::start(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig {
            loops: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = NetClient::connect(server.addr()).unwrap();
    let out = c.batch(&[]).unwrap();
    assert!(out.is_empty());
    let report = server.shutdown();
    assert!(report.shutdown_errors.is_empty());
}
