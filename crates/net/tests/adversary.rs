//! Partial-read adversaries against the reactor: peers that dribble,
//! stall, vanish mid-frame, or send garbage. The property under test
//! is the one threads gave the old server for free and the reactor has
//! to earn: **no client can block the event loop**. Every test runs a
//! single-loop server so the adversary and the well-behaved client
//! provably share one loop.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_net::wire::{encode_request, ErrorCode, Request, Response};
use ff_net::{FrameBuffer, NetClient, NetServer, ServerConfig};
use ff_store::{Backend, Kv, Store, StoreConfig};

/// A reliable-backend store behind a deliberately single-loop reactor:
/// everything in a test contends on the same event loop.
fn one_loop_server() -> (Arc<Store>, NetServer) {
    let store = Arc::new(Store::new(
        StoreConfig::builder()
            .shards(2)
            .backend(Backend::reliable())
            .build()
            .unwrap(),
    ));
    let server = NetServer::start(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig {
            loops: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    (store, server)
}

/// Read response frames off a raw socket until `want` arrive.
fn read_responses(stream: &mut TcpStream, want: usize) -> Vec<(u32, Response)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    let mut chunk = [0u8; 1024];
    while got.len() < want {
        let n = stream.read(&mut chunk).expect("server answered in time");
        assert!(n > 0, "server closed before answering");
        fb.extend(&chunk[..n]);
        while let Some(frame) = fb.pop_response().expect("well-formed response frames") {
            got.push((frame.id, frame.resp));
        }
    }
    got
}

/// Byte-at-a-time delivery: frames arrive one byte per write, with a
/// fast client hammering pings on the same loop between every byte.
/// The zero-copy decoder must report NeedMoreData at every split and
/// decode both frames once complete; the loop must never stall on the
/// dribbling peer.
#[test]
fn byte_at_a_time_frames_decode_while_the_loop_keeps_serving() {
    let (_store, server) = one_loop_server();
    let mut fast = NetClient::connect(server.addr()).unwrap();
    let mut slow = TcpStream::connect(server.addr()).unwrap();
    slow.set_nodelay(true).unwrap();

    let mut bytes = Vec::new();
    encode_request(&mut bytes, 1, &Request::Put { key: 3, value: 33 });
    encode_request(&mut bytes, 2, &Request::Get { key: 3 });
    for &b in &bytes {
        slow.write_all(&[b]).unwrap();
        // One byte of adversary, one full round trip of victim: if the
        // loop ever blocked on the partial frame, this ping would too.
        fast.ping().unwrap();
    }

    let got = read_responses(&mut slow, 2);
    assert_eq!(got[0], (1, Response::Value(None)));
    assert_eq!(got[1], (2, Response::Value(Some(33))));
    let report = server.shutdown();
    assert!(report.shutdown_errors.is_empty());
}

/// A peer that dies mid-frame: the half-delivered operation must never
/// execute, the connection must be reaped (freeing its slot), and the
/// rest of the server must not notice.
#[test]
fn mid_frame_disconnect_is_reaped_without_applying_the_partial_op() {
    let (store, server) = one_loop_server();
    let mut fast = NetClient::connect(server.addr()).unwrap();
    fast.ping().unwrap();

    {
        let mut dying = TcpStream::connect(server.addr()).unwrap();
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 9, &Request::Put { key: 1, value: 2 });
        dying.write_all(&bytes[..bytes.len() / 2]).unwrap();
        dying.flush().unwrap();
        // Give the loop a chance to buffer the fragment before the
        // close lands.
        std::thread::sleep(Duration::from_millis(30));
    } // dropped: TCP close mid-frame

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() != 1 {
        assert!(Instant::now() < deadline, "dead connection never reaped");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The fragment carried PUT(1, 2); it must have vanished with the
    // connection, not executed.
    assert_eq!(fast.get(1).unwrap(), None);

    let mut report = server.shutdown();
    assert!(report.shutdown_errors.is_empty());
    assert!(store.verify(&mut report.clients).all_consistent());
}

/// Slow-loris: several connections each trickling an incomplete frame
/// forever. A well-behaved client on the same loop must keep getting
/// prompt answers the whole time.
#[test]
fn slow_loris_peers_cannot_starve_a_fast_client() {
    let (_store, server) = one_loop_server();
    let mut fast = NetClient::connect(server.addr()).unwrap();

    let mut frame = Vec::new();
    encode_request(
        &mut frame,
        1,
        &Request::Batch(vec![ff_store::KvOp::Put(1, 1); 64]),
    );
    let mut lorises: Vec<(TcpStream, usize)> = (0..4)
        .map(|_| (TcpStream::connect(server.addr()).unwrap(), 0))
        .collect();

    let start = Instant::now();
    let mut pings = 0u32;
    let mut worst = Duration::ZERO;
    while start.elapsed() < Duration::from_millis(400) {
        for (stream, pos) in lorises.iter_mut() {
            // One byte each tick — never enough to complete the frame.
            if *pos + 1 < frame.len() {
                stream.write_all(&frame[*pos..=*pos]).unwrap();
                *pos += 1;
            }
        }
        let t = Instant::now();
        fast.ping().unwrap();
        worst = worst.max(t.elapsed());
        pings += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(pings >= 20, "fast client starved: only {pings} pings");
    assert!(
        worst < Duration::from_secs(1),
        "a ping stalled {worst:?} behind slow-loris peers"
    );
    let report = server.shutdown();
    assert!(report.shutdown_errors.is_empty());
}

/// Garbage after the length prefix: the server answers staged frames,
/// sends exactly one id-0 Malformed error, and closes — framing cannot
/// resync, and the loop moves on.
#[test]
fn garbage_bytes_get_one_malformed_frame_then_close() {
    let (_store, server) = one_loop_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    // A complete frame header claiming length 6, with a nonsense type
    // byte: total decoder verdict is an error, not a panic or a hang.
    let mut bytes = vec![6, 0, 0, 0];
    bytes.push(ff_net::PROTOCOL_VERSION);
    bytes.push(0xEE); // no such frame type
    bytes.extend_from_slice(&7u32.to_le_bytes());
    s.write_all(&bytes).unwrap();

    let got = read_responses(&mut s, 1);
    match &got[0] {
        (0, Response::Error { code, .. }) => assert_eq!(*code, ErrorCode::Malformed),
        other => panic!("expected id-0 malformed error, got {other:?}"),
    }
    // Then the connection closes: EOF, not more frames.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut rest = Vec::new();
    let n = s.read_to_end(&mut rest).expect("clean close after refusal");
    assert_eq!(n, 0, "no frames after the malformed refusal");
    let report = server.shutdown();
    assert!(report.shutdown_errors.is_empty());
}
