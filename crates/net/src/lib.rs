//! `ff-net` — the network face of `ff-store`: a length-prefixed binary
//! wire protocol and a std-only TCP service layer, behind the same
//! [`Kv`](ff_store::Kv) API the in-process client implements.
//!
//! The point of serving the store over a socket is that the paper's
//! guarantee survives the trip: a remote client of a robust-backend
//! store gets linearizable answers while functional faults fire, and a
//! remote client of a naive-backend store gets a **divergence error
//! frame** — never silently wrong data. The error is computed from the
//! same evidence the in-process client checks (broken consensus cells,
//! boundary digest mismatches), just carried across the wire.
//!
//! | module | what it holds |
//! |---|---|
//! | [`wire`] | frame layout, encode/decode (owned and zero-copy), streaming [`FrameBuffer`] |
//! | [`server`] | [`NetServer`]: the readiness-driven reactor — N event loops, replica leases, cross-connection batching, backpressure, graceful drain |
//! | `poll` (private) | the std-only readiness abstraction the loops run on |
//! | `buffer` (private) | per-loop pools for connection read/write buffers |
//! | `reactor` (private) | the event-loop state machine itself |
//! | [`session`] | [`Session`]: one connection's socket-free protocol state machine — the transport seam `ff-dst` drives over a simulated network |
//! | [`client`] | [`NetClient`]: pipelining TCP client implementing [`Kv`](ff_store::Kv) |
//! | [`experiment`] | [`E16NetSoak`] and [`E17ReactorSoak`]: the fault-ramp soak over TCP, thread-per-request shape and reactor shape |
//!
//! No async runtime and no serialization framework: `std::net`,
//! threads, and hand-rolled little-endian frames keep the service
//! layer as auditable as the consensus construction it fronts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
pub mod client;
pub mod experiment;
mod poll;
mod reactor;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{NetClient, PipelineTicket};
pub use experiment::{E16NetSoak, E17ReactorSoak};
pub use server::{NetServer, ServerConfig, ServerReport, ShutdownError};
pub use session::{Session, StageSummary};
pub use wire::{FrameBuffer, Request, Response, StatsReply, MAX_FRAME_LEN, PROTOCOL_VERSION};
