//! `ff-net` — the network face of `ff-store`: a length-prefixed binary
//! wire protocol and a std-only TCP service layer, behind the same
//! [`Kv`](ff_store::Kv) API the in-process client implements.
//!
//! The point of serving the store over a socket is that the paper's
//! guarantee survives the trip: a remote client of a robust-backend
//! store gets linearizable answers while functional faults fire, and a
//! remote client of a naive-backend store gets a **divergence error
//! frame** — never silently wrong data. The error is computed from the
//! same evidence the in-process client checks (broken consensus cells,
//! boundary digest mismatches), just carried across the wire.
//!
//! | module | what it holds |
//! |---|---|
//! | [`wire`] | frame layout, encode/decode, streaming [`FrameBuffer`] |
//! | [`server`] | [`NetServer`]: thread-per-connection, pipelining, burst batching, backpressure, graceful drain |
//! | [`client`] | [`NetClient`]: pipelining TCP client implementing [`Kv`](ff_store::Kv) |
//! | [`experiment`] | [`E16NetSoak`]: the E15 soak through the network path with live fault ramps |
//!
//! No async runtime and no serialization framework: `std::net`,
//! threads, and hand-rolled little-endian frames keep the service
//! layer as auditable as the consensus construction it fronts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod experiment;
pub mod server;
pub mod wire;

pub use client::NetClient;
pub use experiment::E16NetSoak;
pub use server::{NetServer, ServerConfig, ServerReport};
pub use wire::{FrameBuffer, Request, Response, StatsReply, MAX_FRAME_LEN, PROTOCOL_VERSION};
