//! The event loops behind [`NetServer`](crate::NetServer): nonblocking
//! connection state machines multiplexed over the [`poll`](crate::poll)
//! abstraction, each driving a socket-free
//! [`Session`](crate::session::Session) per connection.
//!
//! # One tick
//!
//! 1. **Admit** — drain this loop's inbox of freshly accepted,
//!    already-nonblocking sockets; grant each a replica lease
//!    (exclusive [`StoreClient`] within the budget, shared combiner
//!    beyond it) and a [`Session`] around pooled buffers.
//! 2. **Poll** — probe read readiness for every open, unpaused
//!    connection; connections with unflushed responses bound the wait.
//! 3. **Read** — pull up to 16 KiB per readable connection straight
//!    into its session's frame buffer (no intermediate chunk copy).
//! 4. **Stage** — each session decodes its complete frames **in
//!    place** with the zero-copy
//!    [`peek_frame`](crate::wire::FrameBuffer::peek_frame) path. Valid
//!    GET/PUT/DEL/BATCH operations from *every* connection merge into
//!    one run; STATS/PING and per-frame validation errors become
//!    immediate response slots. A decode error stages one id-0
//!    `Malformed` frame and marks the session closing —
//!    length-prefixed framing cannot resync.
//! 5. **Execute** — the merged run goes through one
//!    [`Kv::batch`](ff_store::Kv::batch) call: one log pass per
//!    touched shard for the whole tick, across connections. If every
//!    contributor holds an exclusive lease the first contributor's
//!    replica executes it (so small fleets keep exactly the old
//!    per-connection replica graveyard); otherwise the loop's
//!    lazily-minted combiner does.
//! 6. **Resolve** — each session encodes its slots' responses into its
//!    output buffer, in per-connection request order. A run error
//!    (divergence poisons the shard set; nothing partial is usable)
//!    answers every run slot with the same typed error.
//! 7. **Flush** — attempted-write model: write until `WouldBlock`,
//!    killing peers stalled past the write timeout.
//! 8. **Reap** — dead connections return their session's buffers to
//!    the pool, retire exclusive replicas to the graveyard, release
//!    their lease and drop the active count.
//!
//! On shutdown a loop runs one final stage/execute/flush pass over
//! everything already buffered — bounded by the write timeout — then
//! retires every lease, including the combiner.
//!
//! Everything between the socket reads and the socket writes — frame
//! decoding, staging, validation, response encoding — lives in
//! [`Session`](crate::session::Session), which `ff-dst` drives over a
//! simulated network with no kernel socket anywhere; the reactor here
//! is only the IO shell around the shared state machine.

use std::io::{ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_store::{Kv, KvOp, StoreClient, StoreError};
use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::poll::{Interest, PollSource, Poller, Readiness, ScanPoller};
use crate::server::{stats, Shared};
use crate::session::Session;
use crate::wire::ErrorCode;

/// Most bytes read per connection per tick — round-robin fairness, not
/// a frame bound.
const READ_CHUNK: usize = 16 * 1024;
/// A connection whose unflushed responses exceed this stops being read
/// until the peer drains it.
const PAUSE_WBUF: usize = 256 * 1024;
/// Upper bound on one poll call, so the loop re-checks its inbox and
/// the shutdown flag promptly.
const POLL_TICK: Duration = Duration::from_millis(5);
/// Sleep when the loop owns no connections at all.
const IDLE_EMPTY: Duration = Duration::from_millis(2);

/// The slice of server state one event loop and the acceptor share.
#[derive(Default)]
pub(crate) struct LoopShared {
    /// Freshly accepted nonblocking sockets pinned to this loop.
    pub(crate) inbox: Mutex<Vec<TcpStream>>,
}

/// How a connection reaches the store.
enum Lease {
    /// A private replica set, retired to the graveyard on close —
    /// the old thread-per-connection semantics.
    Exclusive(StoreClient),
    /// Operations execute on the loop's shared combiner replica.
    Shared,
}

/// One nonblocking connection's state: the IO shell (socket, write
/// cursor, deadlines) around its protocol [`Session`].
struct Conn {
    stream: TcpStream,
    session: Session,
    /// Bytes of the session's output already written to the socket.
    wpos: usize,
    lease: Lease,
    /// Peer half-closed; serve what's buffered, flush, then close.
    eof: bool,
    /// Reap this connection at the end of the tick.
    dead: bool,
    /// When the current blocked write becomes fatal.
    write_deadline: Option<Instant>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.session.output().len() - self.wpos
    }

    fn paused(&self) -> bool {
        self.pending_write() > PAUSE_WBUF
    }
}

/// Per-tick scratch, allocated once per loop.
struct Scratch {
    run_ops: Vec<KvOp>,
    readiness: Vec<Readiness>,
    polled: Vec<usize>,
}

/// The body of one event-loop worker thread.
pub(crate) fn event_loop(shared: Arc<Shared>, index: usize) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut pool = BufferPool::new();
    let mut poller = ScanPoller::new();
    let mut combiner: Option<StoreClient> = None;
    let mut scratch = Scratch {
        run_ops: Vec::new(),
        readiness: Vec::new(),
        polled: Vec::new(),
    };
    loop {
        admit(&shared, index, &mut conns, &mut pool);
        if shared.shutdown.load(Ordering::SeqCst) {
            drain_all(&shared, conns, &mut combiner, &mut scratch);
            if let Some(c) = combiner.take() {
                shared.retired.lock().push(c);
            }
            return;
        }
        tick(
            &shared,
            &mut conns,
            &mut pool,
            &mut poller,
            &mut combiner,
            &mut scratch,
        );
    }
}

/// Move freshly pinned sockets from the inbox into the live set.
fn admit(shared: &Shared, index: usize, conns: &mut Vec<Conn>, pool: &mut BufferPool) {
    let mut inbox = shared.loops[index].inbox.lock();
    if inbox.is_empty() {
        return;
    }
    let streams: Vec<TcpStream> = inbox.drain(..).collect();
    drop(inbox);
    for stream in streams {
        conns.push(Conn {
            stream,
            session: Session::from_parts(pool.take_read(), pool.take_write()),
            wpos: 0,
            lease: grant_lease(shared),
            eof: false,
            dead: false,
            write_deadline: None,
        });
    }
}

/// Exclusive replica within the budget (and while pid space lasts),
/// shared combiner beyond it.
fn grant_lease(shared: &Shared) -> Lease {
    let budget = shared.config.replica_budget;
    let granted = shared
        .exclusive_leases
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < budget).then_some(n + 1)
        })
        .is_ok();
    if granted {
        match shared.store.try_client() {
            Some(client) => return Lease::Exclusive(client),
            None => {
                shared.exclusive_leases.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    Lease::Shared
}

fn tick(
    shared: &Shared,
    conns: &mut Vec<Conn>,
    pool: &mut BufferPool,
    poller: &mut ScanPoller,
    combiner: &mut Option<StoreClient>,
    scratch: &mut Scratch,
) {
    // Poll: read interest for open unpaused connections; write
    // interest (pacing only — writes are their own probe) for pending
    // response bytes.
    scratch.polled.clear();
    {
        let mut sources: Vec<PollSource<'_>> = Vec::with_capacity(conns.len());
        for (i, c) in conns.iter().enumerate() {
            if c.dead {
                continue;
            }
            let interest = Interest {
                read: !c.eof && !c.session.closing() && !c.paused(),
                write: c.pending_write() > 0,
            };
            if interest.read || interest.write {
                scratch.polled.push(i);
                sources.push(PollSource {
                    stream: &c.stream,
                    interest,
                });
            }
        }
        if sources.is_empty() {
            std::thread::sleep(IDLE_EMPTY);
        } else {
            scratch
                .readiness
                .resize(sources.len(), Readiness::default());
            let timeout = POLL_TICK.min(shared.config.read_timeout.max(Duration::from_millis(1)));
            poller.poll(&sources, &mut scratch.readiness, timeout);
        }
    }

    // Read every readable connection.
    for (slot, &i) in scratch.polled.iter().enumerate() {
        if !scratch.readiness[slot].readable {
            continue;
        }
        let c = &mut conns[i];
        match c.session.read_buf().read_from(&mut c.stream, READ_CHUNK) {
            Ok(0) => c.eof = true,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {}
            Err(_) => c.dead = true,
        }
    }

    serve_buffered(shared, conns, combiner, scratch, false);

    for c in conns.iter_mut() {
        flush(c, shared);
    }

    let mut i = 0;
    while i < conns.len() {
        if conns[i].dead {
            reap(conns.swap_remove(i), shared, pool);
        } else {
            i += 1;
        }
    }
}

/// Stage every buffered complete frame, execute the merged run, and
/// have each session encode its responses. `ignore_pause` lets the
/// shutdown drain serve backpressured connections too.
fn serve_buffered(
    shared: &Shared,
    conns: &mut [Conn],
    combiner: &mut Option<StoreClient>,
    scratch: &mut Scratch,
    ignore_pause: bool,
) {
    scratch.run_ops.clear();
    let mut all_exclusive = true;
    let mut leader: Option<usize> = None;
    let mut immediate = 0u64;
    let mut staged = 0u64;
    for (i, c) in conns.iter_mut().enumerate() {
        // Closing sessions stage nothing themselves (the session
        // early-returns); paused connections wait for their peer.
        if c.dead || (!ignore_pause && c.paused()) {
            continue;
        }
        let summary = c.session.stage(&mut scratch.run_ops);
        immediate += summary.immediate;
        staged += summary.staged;
        if summary.contributed {
            match c.lease {
                Lease::Exclusive(_) => {
                    if leader.is_none() {
                        leader = Some(i);
                    }
                }
                Lease::Shared => all_exclusive = false,
            }
        }
    }
    if immediate > 0 {
        shared.ops_served.fetch_add(immediate, Ordering::Relaxed);
    }
    let outcome = if scratch.run_ops.is_empty() {
        None
    } else {
        let result = execute_run(
            shared,
            conns,
            leader.filter(|_| all_exclusive),
            combiner,
            &scratch.run_ops,
        );
        if result.is_ok() {
            shared
                .ops_served
                .fetch_add(scratch.run_ops.len() as u64, Ordering::Relaxed);
        }
        // Coalescing observability: how many frames fed how many merged
        // runs of what size (STATS surfaces the ratios).
        shared.runs_executed.fetch_add(1, Ordering::Relaxed);
        shared
            .run_ops
            .fetch_add(scratch.run_ops.len() as u64, Ordering::Relaxed);
        shared
            .max_run_ops
            .fetch_max(scratch.run_ops.len() as u32, Ordering::Relaxed);
        Some(result)
    };
    if staged > 0 {
        shared.frames_staged.fetch_add(staged, Ordering::Relaxed);
    }
    // Resolve after the run so STATS snapshots post-run counters. Every
    // session with staged slots resolves — including closing ones,
    // whose malformed-error answer still has to flush.
    let snapshot = stats(shared);
    for c in conns.iter_mut() {
        if c.session.pending_slots() > 0 {
            c.session.resolve(outcome.as_ref(), &snapshot);
        }
    }
}

/// Run the merged operations through one replica: the first
/// contributor's exclusive client when every contributor is exclusive
/// (keeping the per-connection graveyard exact for small fleets), the
/// loop combiner otherwise.
fn execute_run(
    shared: &Shared,
    conns: &mut [Conn],
    leader: Option<usize>,
    combiner: &mut Option<StoreClient>,
    ops: &[KvOp],
) -> Result<Vec<Option<u32>>, StoreError> {
    if let Some(i) = leader {
        if let Lease::Exclusive(client) = &mut conns[i].lease {
            return client.batch(ops);
        }
    }
    let client = match combiner {
        Some(client) => client,
        None => match shared.store.try_client() {
            Some(client) => combiner.insert(client),
            None => {
                return Err(StoreError::Server {
                    code: ErrorCode::Internal as u8,
                    message: "replica id space exhausted; cannot mint a combiner".to_string(),
                })
            }
        },
    };
    client.batch(ops)
}

/// Attempted-write model: push buffered response bytes until done or
/// `WouldBlock`; a peer blocked past the write timeout is cut off.
fn flush(c: &mut Conn, shared: &Shared) {
    if c.dead {
        return;
    }
    while c.wpos < c.session.output().len() {
        match c.stream.write(&c.session.output()[c.wpos..]) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => {
                c.wpos += n;
                c.write_deadline = None;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let deadline = *c
                    .write_deadline
                    .get_or_insert_with(|| Instant::now() + shared.config.write_timeout);
                if Instant::now() >= deadline {
                    // The peer stopped draining; its responses are
                    // undeliverable backpressure.
                    c.dead = true;
                }
                return;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    c.session.clear_output();
    c.wpos = 0;
    c.write_deadline = None;
    if c.session.closing() {
        c.dead = true;
    } else if c.eof && !c.session.has_pending_frame() {
        // Half-closed peer, everything serveable served and flushed; a
        // trailing partial frame can never complete.
        c.dead = true;
    }
}

/// Retire a finished connection: replica to the graveyard, buffers to
/// the pool, lease and active slot released.
fn reap(c: Conn, shared: &Shared, pool: &mut BufferPool) {
    if let Lease::Exclusive(client) = c.lease {
        shared.retired.lock().push(client);
        shared.exclusive_leases.fetch_sub(1, Ordering::SeqCst);
    }
    let (rbuf, wbuf) = c.session.into_parts();
    pool.put_read(rbuf);
    pool.put_write(wbuf);
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// The shutdown drain: one final serve pass over everything already
/// buffered (backpressured connections included), a bounded flush, and
/// then every lease retires. In-flight requests drain; nothing new is
/// read.
fn drain_all(
    shared: &Shared,
    mut conns: Vec<Conn>,
    combiner: &mut Option<StoreClient>,
    scratch: &mut Scratch,
) {
    serve_buffered(shared, &mut conns, combiner, scratch, true);
    let deadline = Instant::now() + shared.config.write_timeout;
    loop {
        let mut pending = false;
        for c in conns.iter_mut() {
            flush(c, shared);
            if !c.dead && c.pending_write() > 0 {
                pending = true;
            }
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    let mut retired = shared.retired.lock();
    for c in conns {
        if let Lease::Exclusive(client) = c.lease {
            retired.push(client);
            shared.exclusive_leases.fetch_sub(1, Ordering::SeqCst);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}
