//! The event loops behind [`NetServer`](crate::NetServer): nonblocking
//! connection state machines multiplexed over the [`poll`](crate::poll)
//! abstraction.
//!
//! # One tick
//!
//! 1. **Admit** — drain this loop's inbox of freshly accepted,
//!    already-nonblocking sockets; grant each a replica lease
//!    (exclusive [`StoreClient`] within the budget, shared combiner
//!    beyond it) and pooled buffers.
//! 2. **Poll** — probe read readiness for every open, unpaused
//!    connection; connections with unflushed responses bound the wait.
//! 3. **Read** — pull up to 16 KiB per readable connection straight
//!    into its frame buffer (no intermediate chunk copy).
//! 4. **Stage** — decode complete frames **in place** with the
//!    zero-copy [`peek_frame`](crate::wire::FrameBuffer::peek_frame)
//!    path. Valid GET/PUT/DEL/BATCH operations from *every*
//!    connection merge into one run; STATS/PING and per-frame
//!    validation errors become immediate response slots. A decode
//!    error stages one id-0 `Malformed` frame and marks the
//!    connection closing — length-prefixed framing cannot resync.
//! 5. **Execute** — the merged run goes through one
//!    [`Kv::batch`](ff_store::Kv::batch) call: one log pass per
//!    touched shard for the whole tick, across connections. If every
//!    contributor holds an exclusive lease the first contributor's
//!    replica executes it (so small fleets keep exactly the old
//!    per-connection replica graveyard); otherwise the loop's
//!    lazily-minted combiner does.
//! 6. **Resolve** — encode each slot's response into its connection's
//!    write buffer, in per-connection request order. A run error
//!    (divergence poisons the shard set; nothing partial is usable)
//!    answers every run slot with the same typed error.
//! 7. **Flush** — attempted-write model: write until `WouldBlock`,
//!    killing peers stalled past the write timeout.
//! 8. **Reap** — dead connections return buffers to the pool, retire
//!    exclusive replicas to the graveyard, release their lease and
//!    drop the active count.
//!
//! On shutdown a loop runs one final stage/execute/flush pass over
//! everything already buffered — bounded by the write timeout — then
//! retires every lease, including the combiner.

use std::io::{ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_store::{Kv, KvOp, StoreClient, StoreError, KV_MAX};
use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::poll::{Interest, PollSource, Poller, Readiness, ScanPoller};
use crate::server::{error_response, stats, Shared};
use crate::wire::{encode_response, Decoded, ErrorCode, FrameBuffer, RequestRef, Response};

/// Most bytes read per connection per tick — round-robin fairness, not
/// a frame bound.
const READ_CHUNK: usize = 16 * 1024;
/// A connection whose unflushed responses exceed this stops being read
/// until the peer drains it.
const PAUSE_WBUF: usize = 256 * 1024;
/// Upper bound on one poll call, so the loop re-checks its inbox and
/// the shutdown flag promptly.
const POLL_TICK: Duration = Duration::from_millis(5);
/// Sleep when the loop owns no connections at all.
const IDLE_EMPTY: Duration = Duration::from_millis(2);

/// The slice of server state one event loop and the acceptor share.
#[derive(Default)]
pub(crate) struct LoopShared {
    /// Freshly accepted nonblocking sockets pinned to this loop.
    pub(crate) inbox: Mutex<Vec<TcpStream>>,
}

/// How a connection reaches the store.
enum Lease {
    /// A private replica set, retired to the graveyard on close —
    /// the old thread-per-connection semantics.
    Exclusive(StoreClient),
    /// Operations execute on the loop's shared combiner replica.
    Shared,
}

/// One nonblocking connection's state.
struct Conn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    lease: Lease,
    /// Peer half-closed; serve what's buffered, flush, then close.
    eof: bool,
    /// Framing lost (decode error): stop serving, flush, close.
    closing: bool,
    /// Reap this connection at the end of the tick.
    dead: bool,
    /// When the current blocked write becomes fatal.
    write_deadline: Option<Instant>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn paused(&self) -> bool {
        self.pending_write() > PAUSE_WBUF
    }
}

/// Where one staged frame's answer comes from.
enum SlotKind {
    /// `run[off]` — a coalesced single-op frame.
    Single { off: usize },
    /// `run[off..off+n]` — a BATCH frame merged into the run.
    Batch { off: usize, n: usize },
    /// Server counters, snapshotted after the run executes.
    Stats,
    /// PING.
    Pong,
    /// Already decided at stage time (validation error, malformed).
    Ready(Response),
}

/// One response owed to a connection, in staging order.
struct Slot {
    conn: usize,
    id: u32,
    kind: SlotKind,
}

/// Per-tick scratch, allocated once per loop.
struct Scratch {
    run_ops: Vec<KvOp>,
    slots: Vec<Slot>,
    readiness: Vec<Readiness>,
    polled: Vec<usize>,
}

/// The body of one event-loop worker thread.
pub(crate) fn event_loop(shared: Arc<Shared>, index: usize) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut pool = BufferPool::new();
    let mut poller = ScanPoller::new();
    let mut combiner: Option<StoreClient> = None;
    let mut scratch = Scratch {
        run_ops: Vec::new(),
        slots: Vec::new(),
        readiness: Vec::new(),
        polled: Vec::new(),
    };
    loop {
        admit(&shared, index, &mut conns, &mut pool);
        if shared.shutdown.load(Ordering::SeqCst) {
            drain_all(&shared, conns, &mut combiner, &mut scratch);
            if let Some(c) = combiner.take() {
                shared.retired.lock().push(c);
            }
            return;
        }
        tick(
            &shared,
            &mut conns,
            &mut pool,
            &mut poller,
            &mut combiner,
            &mut scratch,
        );
    }
}

/// Move freshly pinned sockets from the inbox into the live set.
fn admit(shared: &Shared, index: usize, conns: &mut Vec<Conn>, pool: &mut BufferPool) {
    let mut inbox = shared.loops[index].inbox.lock();
    if inbox.is_empty() {
        return;
    }
    let streams: Vec<TcpStream> = inbox.drain(..).collect();
    drop(inbox);
    for stream in streams {
        conns.push(Conn {
            stream,
            rbuf: pool.take_read(),
            wbuf: pool.take_write(),
            wpos: 0,
            lease: grant_lease(shared),
            eof: false,
            closing: false,
            dead: false,
            write_deadline: None,
        });
    }
}

/// Exclusive replica within the budget (and while pid space lasts),
/// shared combiner beyond it.
fn grant_lease(shared: &Shared) -> Lease {
    let budget = shared.config.replica_budget;
    let granted = shared
        .exclusive_leases
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < budget).then_some(n + 1)
        })
        .is_ok();
    if granted {
        match shared.store.try_client() {
            Some(client) => return Lease::Exclusive(client),
            None => {
                shared.exclusive_leases.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    Lease::Shared
}

fn tick(
    shared: &Shared,
    conns: &mut Vec<Conn>,
    pool: &mut BufferPool,
    poller: &mut ScanPoller,
    combiner: &mut Option<StoreClient>,
    scratch: &mut Scratch,
) {
    // Poll: read interest for open unpaused connections; write
    // interest (pacing only — writes are their own probe) for pending
    // response bytes.
    scratch.polled.clear();
    {
        let mut sources: Vec<PollSource<'_>> = Vec::with_capacity(conns.len());
        for (i, c) in conns.iter().enumerate() {
            if c.dead {
                continue;
            }
            let interest = Interest {
                read: !c.eof && !c.closing && !c.paused(),
                write: c.pending_write() > 0,
            };
            if interest.read || interest.write {
                scratch.polled.push(i);
                sources.push(PollSource {
                    stream: &c.stream,
                    interest,
                });
            }
        }
        if sources.is_empty() {
            std::thread::sleep(IDLE_EMPTY);
        } else {
            scratch
                .readiness
                .resize(sources.len(), Readiness::default());
            let timeout = POLL_TICK.min(shared.config.read_timeout.max(Duration::from_millis(1)));
            poller.poll(&sources, &mut scratch.readiness, timeout);
        }
    }

    // Read every readable connection.
    for (slot, &i) in scratch.polled.iter().enumerate() {
        if !scratch.readiness[slot].readable {
            continue;
        }
        let c = &mut conns[i];
        match c.rbuf.read_from(&mut c.stream, READ_CHUNK) {
            Ok(0) => c.eof = true,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {}
            Err(_) => c.dead = true,
        }
    }

    serve_buffered(shared, conns, combiner, scratch, false);

    for c in conns.iter_mut() {
        flush(c, shared);
    }

    let mut i = 0;
    while i < conns.len() {
        if conns[i].dead {
            reap(conns.swap_remove(i), shared, pool);
        } else {
            i += 1;
        }
    }
}

/// Stage every buffered complete frame, execute the merged run, and
/// encode all responses. `ignore_pause` lets the shutdown drain serve
/// backpressured connections too.
fn serve_buffered(
    shared: &Shared,
    conns: &mut [Conn],
    combiner: &mut Option<StoreClient>,
    scratch: &mut Scratch,
    ignore_pause: bool,
) {
    scratch.run_ops.clear();
    scratch.slots.clear();
    let mut all_exclusive = true;
    let mut leader: Option<usize> = None;
    for (i, c) in conns.iter_mut().enumerate() {
        if c.dead || c.closing || (!ignore_pause && c.paused()) {
            continue;
        }
        if stage_conn(i, c, &mut scratch.run_ops, &mut scratch.slots, shared) {
            match c.lease {
                Lease::Exclusive(_) => {
                    if leader.is_none() {
                        leader = Some(i);
                    }
                }
                Lease::Shared => all_exclusive = false,
            }
        }
    }
    let outcome = if scratch.run_ops.is_empty() {
        None
    } else {
        let result = execute_run(
            shared,
            conns,
            leader.filter(|_| all_exclusive),
            combiner,
            &scratch.run_ops,
        );
        if result.is_ok() {
            shared
                .ops_served
                .fetch_add(scratch.run_ops.len() as u64, Ordering::Relaxed);
        }
        // Coalescing observability: how many frames fed how many merged
        // runs of what size (STATS surfaces the ratios).
        shared.runs_executed.fetch_add(1, Ordering::Relaxed);
        shared
            .run_ops
            .fetch_add(scratch.run_ops.len() as u64, Ordering::Relaxed);
        shared
            .max_run_ops
            .fetch_max(scratch.run_ops.len() as u32, Ordering::Relaxed);
        Some(result)
    };
    if !scratch.slots.is_empty() {
        shared
            .frames_staged
            .fetch_add(scratch.slots.len() as u64, Ordering::Relaxed);
    }
    for slot in scratch.slots.drain(..) {
        let resp = match slot.kind {
            SlotKind::Single { off } => match &outcome {
                Some(Ok(values)) => Response::Value(values[off]),
                Some(Err(e)) => error_response(e),
                None => unreachable!("run slots imply a nonempty run"),
            },
            SlotKind::Batch { off, n } => match &outcome {
                Some(Ok(values)) => Response::Batch(values[off..off + n].to_vec()),
                Some(Err(e)) => error_response(e),
                None => unreachable!("run slots imply a nonempty run"),
            },
            SlotKind::Stats => Response::Stats(stats(shared)),
            SlotKind::Pong => Response::Pong,
            SlotKind::Ready(resp) => resp,
        };
        encode_response(&mut conns[slot.conn].wbuf, slot.id, &resp);
    }
}

/// Stage one connection's buffered complete frames. Returns whether it
/// contributed operations to the merged run.
fn stage_conn(
    i: usize,
    c: &mut Conn,
    run_ops: &mut Vec<KvOp>,
    slots: &mut Vec<Slot>,
    shared: &Shared,
) -> bool {
    let mut contributed = false;
    loop {
        let consumed = match c.rbuf.peek_frame() {
            Ok(Decoded::NeedMoreData) => break,
            Ok(Decoded::Frame { frame, consumed }) => {
                let id = frame.id;
                match frame.req {
                    RequestRef::Get { key } => {
                        contributed |= stage_op(i, id, KvOp::Get(key), run_ops, slots);
                    }
                    RequestRef::Put { key, value } => {
                        contributed |= stage_op(i, id, KvOp::Put(key, value), run_ops, slots);
                    }
                    RequestRef::Del { key } => {
                        contributed |= stage_op(i, id, KvOp::Del(key), run_ops, slots);
                    }
                    RequestRef::Batch(b) if b.is_empty() => {
                        // Nothing to execute: answer now. Joining the
                        // run would stage a response slot without any
                        // backing operations — a tick where no other
                        // frame contributes would then have an empty
                        // run to resolve it from.
                        shared.ops_served.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot {
                            conn: i,
                            id,
                            kind: SlotKind::Ready(Response::Batch(Vec::new())),
                        });
                    }
                    RequestRef::Batch(b) => match b.iter().try_for_each(validate) {
                        Ok(()) => {
                            let off = run_ops.len();
                            run_ops.extend(b.iter());
                            slots.push(Slot {
                                conn: i,
                                id,
                                kind: SlotKind::Batch { off, n: b.len() },
                            });
                            contributed = true;
                        }
                        // A batch either joins the run whole or is
                        // rejected whole — same contract as
                        // `StoreClient::batch`, checked here so one
                        // client's bad frame can't poison the merged
                        // run.
                        Err(e) => slots.push(Slot {
                            conn: i,
                            id,
                            kind: SlotKind::Ready(error_response(&e)),
                        }),
                    },
                    RequestRef::Stats => {
                        shared.ops_served.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot {
                            conn: i,
                            id,
                            kind: SlotKind::Stats,
                        });
                    }
                    RequestRef::Ping => {
                        shared.ops_served.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot {
                            conn: i,
                            id,
                            kind: SlotKind::Pong,
                        });
                    }
                }
                consumed
            }
            Err(e) => {
                // Length-prefixed framing cannot resync after a bad
                // frame: answer what we staged, send one id-0 error,
                // close.
                slots.push(Slot {
                    conn: i,
                    id: 0,
                    kind: SlotKind::Ready(Response::Error {
                        code: ErrorCode::Malformed,
                        detail: 0,
                        message: e.to_string(),
                    }),
                });
                c.rbuf.reset();
                c.closing = true;
                break;
            }
        };
        c.rbuf.consume(consumed);
    }
    contributed
}

/// Stage one coalescible single-op frame: into the merged run if it
/// validates, an immediate typed error slot if not.
fn stage_op(i: usize, id: u32, op: KvOp, run_ops: &mut Vec<KvOp>, slots: &mut Vec<Slot>) -> bool {
    match validate(op) {
        Ok(()) => {
            slots.push(Slot {
                conn: i,
                id,
                kind: SlotKind::Single { off: run_ops.len() },
            });
            run_ops.push(op);
            true
        }
        Err(e) => {
            slots.push(Slot {
                conn: i,
                id,
                kind: SlotKind::Ready(error_response(&e)),
            });
            false
        }
    }
}

/// The same up-front validation `StoreClient::batch` applies, hoisted
/// before run merging so each frame fails alone.
fn validate(op: KvOp) -> Result<(), StoreError> {
    let key = op.key();
    if key > KV_MAX {
        return Err(StoreError::KeyOutOfRange { key });
    }
    if let KvOp::Put(_, value) = op {
        if value > KV_MAX {
            return Err(StoreError::ValueOutOfRange { value });
        }
    }
    Ok(())
}

/// Run the merged operations through one replica: the first
/// contributor's exclusive client when every contributor is exclusive
/// (keeping the per-connection graveyard exact for small fleets), the
/// loop combiner otherwise.
fn execute_run(
    shared: &Shared,
    conns: &mut [Conn],
    leader: Option<usize>,
    combiner: &mut Option<StoreClient>,
    ops: &[KvOp],
) -> Result<Vec<Option<u32>>, StoreError> {
    if let Some(i) = leader {
        if let Lease::Exclusive(client) = &mut conns[i].lease {
            return client.batch(ops);
        }
    }
    let client = match combiner {
        Some(client) => client,
        None => match shared.store.try_client() {
            Some(client) => combiner.insert(client),
            None => {
                return Err(StoreError::Server {
                    code: ErrorCode::Internal as u8,
                    message: "replica id space exhausted; cannot mint a combiner".to_string(),
                })
            }
        },
    };
    client.batch(ops)
}

/// Attempted-write model: push buffered response bytes until done or
/// `WouldBlock`; a peer blocked past the write timeout is cut off.
fn flush(c: &mut Conn, shared: &Shared) {
    if c.dead {
        return;
    }
    while c.wpos < c.wbuf.len() {
        match c.stream.write(&c.wbuf[c.wpos..]) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => {
                c.wpos += n;
                c.write_deadline = None;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let deadline = *c
                    .write_deadline
                    .get_or_insert_with(|| Instant::now() + shared.config.write_timeout);
                if Instant::now() >= deadline {
                    // The peer stopped draining; its responses are
                    // undeliverable backpressure.
                    c.dead = true;
                }
                return;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    c.wbuf.clear();
    c.wpos = 0;
    c.write_deadline = None;
    if c.closing {
        c.dead = true;
    } else if c.eof && !matches!(c.rbuf.peek_frame(), Ok(Decoded::Frame { .. })) {
        // Half-closed peer, everything serveable served and flushed; a
        // trailing partial frame can never complete.
        c.dead = true;
    }
}

/// Retire a finished connection: replica to the graveyard, buffers to
/// the pool, lease and active slot released.
fn reap(c: Conn, shared: &Shared, pool: &mut BufferPool) {
    if let Lease::Exclusive(client) = c.lease {
        shared.retired.lock().push(client);
        shared.exclusive_leases.fetch_sub(1, Ordering::SeqCst);
    }
    pool.put_read(c.rbuf);
    pool.put_write(c.wbuf);
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// The shutdown drain: one final serve pass over everything already
/// buffered (backpressured connections included), a bounded flush, and
/// then every lease retires. In-flight requests drain; nothing new is
/// read.
fn drain_all(
    shared: &Shared,
    mut conns: Vec<Conn>,
    combiner: &mut Option<StoreClient>,
    scratch: &mut Scratch,
) {
    serve_buffered(shared, &mut conns, combiner, scratch, true);
    let deadline = Instant::now() + shared.config.write_timeout;
    loop {
        let mut pending = false;
        for c in conns.iter_mut() {
            flush(c, shared);
            if !c.dead && c.pending_write() > 0 {
                pending = true;
            }
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    let mut retired = shared.retired.lock();
    for c in conns {
        if let Lease::Exclusive(client) = c.lease {
            retired.push(client);
            shared.exclusive_leases.fetch_sub(1, Ordering::SeqCst);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}
