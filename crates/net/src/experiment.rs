//! E16 — the soak of E15, pushed through the network path.
//!
//! Same claim as E15 — robust shards stay consistent under live
//! functional faults, naive shards diverge — but every operation now
//! crosses a real TCP connection, the server's burst batching, and a
//! per-connection replica set, while the fault knobs are **ramped
//! live** during the run. The workload loop is byte-for-byte the one
//! the in-process soak runs ([`drive_clients`] over [`Kv`]); only the
//! client type differs. Divergence additionally has to survive the
//! wire: the naive arm passes when the *remote* client observes it —
//! an error frame or a failed post-drain verify — instead of wrong
//! data.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ff_store::{drive_clients, Backend, Store, StoreConfig, StoreMetrics, WorkloadMix};
use ff_workload::{Experiment, ExperimentResult, Table};

use crate::client::NetClient;
use crate::server::{NetServer, ServerConfig};

/// E16: network soak — the unified `Kv` workload over TCP, with live
/// fault-rate ramps; robust stays consistent, naive is flagged.
pub struct E16NetSoak;

/// The fault-rate ramp the `during` hook walks while workers hammer
/// the server: quiet → heavy → quiet, stepping every ~100 ms.
const RAMP: [f64; 6] = [0.0, 0.1, 0.3, 0.5, 0.2, 0.05];

struct ArmOutcome {
    ops: u64,
    client_errors: Vec<String>,
    divergence_seen_remotely: bool,
    verify_consistent: bool,
    diverged_shards: Vec<usize>,
}

/// One soak arm: store + server + `connections` TCP clients driven to
/// `deadline`, then a drain and a full verify over the server's
/// retired replicas (per-connection exclusives and loop combiners
/// alike).
fn run_arm(
    backend: Backend,
    secs: f64,
    seed: u64,
    connections: usize,
    server_config: ServerConfig,
) -> ArmOutcome {
    let store = Arc::new(Store::new(
        StoreConfig::builder()
            .shards(3)
            .backend(backend)
            .fault_rate(0.0) // the ramp owns the rate
            .rotate_kinds(true)
            .checkpoint_interval(16)
            .seed(seed)
            .build()
            .expect("arm config is valid"),
    ));
    let server = NetServer::start(Arc::clone(&store), "127.0.0.1:0", server_config)
        .expect("bind ephemeral port");
    let clients: Vec<NetClient> = (0..connections)
        .map(|_| NetClient::connect(server.addr()).expect("connect to own server"))
        .collect();

    let metrics = StoreMetrics::default();
    let mix = WorkloadMix {
        read_pct: 50,
        keyspace: 256,
        seed,
        batch: 4,
    };
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let started = Instant::now();
    let knobs: Vec<_> = (0..store.shards()).map(|s| store.fault_knob(s)).collect();
    let outcome = drive_clients(clients, &mix, deadline, &metrics, || {
        let step = (started.elapsed().as_millis() / 100) as usize % RAMP.len();
        for knob in &knobs {
            knob.set_rate(RAMP[step]);
        }
    });
    // Freeze injection before the drain so verification measures what
    // the run did, not what the drain adds.
    for knob in &knobs {
        knob.set_rate(0.0);
    }
    let divergence_seen_remotely = outcome.divergence_errors() > 0;
    let client_errors: Vec<String> = outcome.errors.iter().map(|e| e.to_string()).collect();
    drop(outcome.clients); // hang up; handlers retire their replicas
    let mut report = server.shutdown();
    let consistency = store.verify(&mut report.clients);
    ArmOutcome {
        ops: report.ops_served,
        client_errors,
        divergence_seen_remotely,
        verify_consistent: consistency.all_consistent(),
        diverged_shards: consistency.diverged_shards(),
    }
}

impl Experiment for E16NetSoak {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "Network soak: the Kv workload over TCP under live fault ramps"
    }

    fn run(&self) -> ExperimentResult {
        let mut table = Table::new(
            "TCP soak (3 connections, 3 shards, ramped fault rate 0→0.5→0)",
            &[
                "backend",
                "ops served",
                "remote divergence",
                "verify consistent",
            ],
        );
        let mut notes = Vec::new();

        let robust = run_arm(Backend::robust(), 0.5, 0xE16, 3, ServerConfig::default());
        table.push_row(&[
            "robust".to_string(),
            robust.ops.to_string(),
            robust.divergence_seen_remotely.to_string(),
            robust.verify_consistent.to_string(),
        ]);
        let robust_ok = robust.verify_consistent && robust.client_errors.is_empty();
        if !robust_ok {
            for e in &robust.client_errors {
                notes.push(format!("robust arm client error: {e}"));
            }
        }

        // Like E15's naive arm, the violation is existential and the
        // junk word has to land observably — retry over seeds.
        let mut naive_flagged = false;
        let mut naive_ops = 0;
        for attempt in 0..12u64 {
            let naive = run_arm(
                Backend::naive(),
                0.2,
                0x16E ^ (attempt << 8),
                3,
                ServerConfig::default(),
            );
            naive_ops += naive.ops;
            let flagged = naive.divergence_seen_remotely || !naive.verify_consistent;
            if flagged {
                naive_flagged = true;
                table.push_row(&[
                    "naive".to_string(),
                    naive.ops.to_string(),
                    naive.divergence_seen_remotely.to_string(),
                    naive.verify_consistent.to_string(),
                ]);
                notes.push(format!(
                    "naive arm flagged at attempt {attempt}: {} (shards {:?})",
                    if naive.divergence_seen_remotely {
                        "client received a divergence error over the wire"
                    } else {
                        "post-drain verify found inconsistent shards"
                    },
                    naive.diverged_shards,
                ));
                break;
            }
        }
        if !naive_flagged {
            notes.push(format!(
                "naive arm stayed clean across 12 attempts ({naive_ops} ops) — violation not observed"
            ));
        }
        notes.push(
            "both arms run the identical drive_clients workload; only the Kv \
             implementation (NetClient vs StoreClient) differs"
                .to_string(),
        );

        ExperimentResult {
            id: "e16".into(),
            title: self.title().into(),
            paper_ref: "Sections 4–6 composed at system scale, across a transport".into(),
            tables: vec![table],
            notes,
            pass: robust_ok && naive_flagged,
        }
    }
}

/// E17: the E16 claim through the reactor's hard paths — more
/// connections than the replica budget, so operations from different
/// clients coalesce onto shared per-loop combiner replicas while the
/// fault knobs ramp live.
pub struct E17ReactorSoak;

/// A server shape that forces every reactor mechanism at once: two
/// event loops, a replica budget below the connection count (mixed
/// exclusive/shared leases → every merged run executes on a loop
/// combiner), and the default backpressure bounds.
fn reactor_config() -> ServerConfig {
    ServerConfig {
        max_connections: 32,
        loops: 2,
        replica_budget: 4,
        ..ServerConfig::default()
    }
}

/// Connections per E17 arm — deliberately past `replica_budget`.
const E17_CONNECTIONS: usize = 8;

impl Experiment for E17ReactorSoak {
    fn id(&self) -> &'static str {
        "e17"
    }

    fn title(&self) -> &'static str {
        "Reactor soak: cross-connection batching on shared replicas under live fault ramps"
    }

    fn run(&self) -> ExperimentResult {
        let mut table = Table::new(
            "Reactor soak (8 connections, 2 loops, replica budget 4, ramped fault rate 0→0.5→0)",
            &[
                "backend",
                "ops served",
                "remote divergence",
                "verify consistent",
            ],
        );
        let mut notes = Vec::new();

        let robust = run_arm(
            Backend::robust(),
            0.5,
            0xE17,
            E17_CONNECTIONS,
            reactor_config(),
        );
        table.push_row(&[
            "robust".to_string(),
            robust.ops.to_string(),
            robust.divergence_seen_remotely.to_string(),
            robust.verify_consistent.to_string(),
        ]);
        let robust_ok = robust.verify_consistent && robust.client_errors.is_empty();
        if !robust_ok {
            for e in &robust.client_errors {
                notes.push(format!("robust arm client error: {e}"));
            }
        }

        // Existential violation, like E15/E16: the junk decision has
        // to land observably — retry over seeds.
        let mut naive_flagged = false;
        let mut naive_ops = 0;
        for attempt in 0..12u64 {
            let naive = run_arm(
                Backend::naive(),
                0.2,
                0x17E ^ (attempt << 8),
                E17_CONNECTIONS,
                reactor_config(),
            );
            naive_ops += naive.ops;
            let flagged = naive.divergence_seen_remotely || !naive.verify_consistent;
            if flagged {
                naive_flagged = true;
                table.push_row(&[
                    "naive".to_string(),
                    naive.ops.to_string(),
                    naive.divergence_seen_remotely.to_string(),
                    naive.verify_consistent.to_string(),
                ]);
                notes.push(format!(
                    "naive arm flagged at attempt {attempt}: {} (shards {:?})",
                    if naive.divergence_seen_remotely {
                        "client received a divergence error over the wire"
                    } else {
                        "post-drain verify found inconsistent shards"
                    },
                    naive.diverged_shards,
                ));
                break;
            }
        }
        if !naive_flagged {
            notes.push(format!(
                "naive arm stayed clean across 12 attempts ({naive_ops} ops) — violation not observed"
            ));
        }
        notes.push(
            "8 connections share 4 exclusive replicas + per-loop combiners, so every \
             merged run crosses connection boundaries; divergence still arrives as a \
             typed error frame, never as data"
                .to_string(),
        );

        ExperimentResult {
            id: "e17".into(),
            title: self.title().into(),
            paper_ref: "Sections 4–6 at system scale, through the readiness-driven reactor".into(),
            tables: vec![table],
            notes,
            pass: robust_ok && naive_flagged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_passes() {
        let result = E16NetSoak.run();
        assert!(result.pass, "E16 failed:\n{}", result.render());
    }

    #[test]
    fn e17_passes() {
        let result = E17ReactorSoak.run();
        assert!(result.pass, "E17 failed:\n{}", result.render());
    }
}
