//! The transport seam: one connection's protocol state machine with no
//! socket in sight.
//!
//! A [`Session`] owns the receive-side [`FrameBuffer`] and the
//! send-side byte buffer of one connection and runs everything between
//! them — frame decoding, per-frame validation, staging into a merged
//! operation run, and response encoding. What it deliberately does
//! *not* do is IO: bytes arrive via [`Session::ingest`] (or straight
//! off a socket into [`Session::read_buf`]) and leave via
//! [`Session::output`], so the same state machine serves both drivers:
//!
//! * the production reactor, which feeds it from nonblocking TCP reads
//!   and flushes its output with the attempted-write model, and
//! * `ff-dst`'s deterministic simulator, which feeds it the exact wire
//!   bytes a simulated network delivered — chunked, delayed, reordered
//!   or truncated as the fault schedule dictates — with no kernel
//!   socket anywhere in the process.
//!
//! The request lifecycle per serve pass is `stage → execute → resolve`:
//! [`Session::stage`] decodes every buffered complete frame, pushing
//! validated operations into the caller's shared run (offsets recorded
//! per frame) and deciding everything that needs no store trip; the
//! caller executes the merged run through the real store; and
//! [`Session::resolve`] encodes one response per staged frame, in
//! arrival order, into the output buffer. A decode error stages one
//! id-0 `Malformed` response and marks the session
//! [`closing`](Session::closing) — length-prefixed framing cannot
//! resync, so the connection is done once that answer flushes.

use crate::wire::{
    encode_response, Decoded, ErrorCode, FrameBuffer, RequestRef, Response, StatsReply,
};
use ff_store::{KvOp, StoreError, KV_MAX};

/// Where one staged frame's answer comes from.
enum SlotKind {
    /// `run[off]` — a coalesced single-op frame.
    Single { off: usize },
    /// `run[off..off+n]` — a BATCH frame merged into the run.
    Batch { off: usize, n: usize },
    /// Server counters, snapshotted at resolve time.
    Stats,
    /// PING.
    Pong,
    /// Already decided at stage time (validation error, malformed,
    /// empty batch).
    Ready(Response),
}

/// One response owed to the peer, in staging order.
struct Slot {
    id: u32,
    kind: SlotKind,
}

/// What one [`Session::stage`] pass did, for the driver's accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSummary {
    /// This session contributed operations to the merged run.
    pub contributed: bool,
    /// Frames answered without a store trip (STATS, PING, empty BATCH).
    pub immediate: u64,
    /// Response slots staged (every complete frame stages exactly one).
    pub staged: u64,
}

/// One connection's socket-free protocol state machine. See the module
/// docs for the lifecycle.
pub struct Session {
    rbuf: FrameBuffer,
    out: Vec<u8>,
    slots: Vec<Slot>,
    closing: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session with empty buffers.
    pub fn new() -> Self {
        Session::from_parts(FrameBuffer::new(), Vec::new())
    }

    /// Build a session around pooled buffers (the reactor's path).
    pub fn from_parts(rbuf: FrameBuffer, out: Vec<u8>) -> Self {
        Session {
            rbuf,
            out,
            slots: Vec::new(),
            closing: false,
        }
    }

    /// Tear the session down, returning its buffers for pooling.
    pub fn into_parts(self) -> (FrameBuffer, Vec<u8>) {
        (self.rbuf, self.out)
    }

    /// Feed raw wire bytes (the simulator's path: whatever chunking the
    /// simulated network produced, byte-exact).
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.rbuf.extend(bytes);
    }

    /// Direct access to the receive buffer, for drivers that read from
    /// a socket straight into it.
    pub fn read_buf(&mut self) -> &mut FrameBuffer {
        &mut self.rbuf
    }

    /// Framing lost: nothing further will be staged, and the connection
    /// should close once the buffered responses flush.
    pub fn closing(&self) -> bool {
        self.closing
    }

    /// A complete frame is buffered and waiting to be staged.
    pub fn has_pending_frame(&self) -> bool {
        matches!(self.rbuf.peek_frame(), Ok(Decoded::Frame { .. }))
    }

    /// Staged frames not yet resolved.
    pub fn pending_slots(&self) -> usize {
        self.slots.len()
    }

    /// Encoded response bytes not yet taken by the driver.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Drop output bytes the driver has fully delivered.
    pub fn clear_output(&mut self) {
        self.out.clear();
    }

    /// Take the buffered output (the simulator's path: the bytes go to
    /// the simulated network verbatim).
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Decode and stage every buffered complete frame. Validated
    /// GET/PUT/DEL/BATCH operations append to `run_ops` — the caller's
    /// merged run, possibly shared with other sessions — and everything
    /// decidable without the store (STATS, PING, validation errors,
    /// malformed input) stages an immediate slot. Returns what happened
    /// for the driver's counters.
    pub fn stage(&mut self, run_ops: &mut Vec<KvOp>) -> StageSummary {
        let mut summary = StageSummary::default();
        if self.closing {
            return summary;
        }
        loop {
            let consumed = match self.rbuf.peek_frame() {
                Ok(Decoded::NeedMoreData) => break,
                Ok(Decoded::Frame { frame, consumed }) => {
                    let id = frame.id;
                    match frame.req {
                        RequestRef::Get { key } => {
                            summary.contributed |=
                                stage_op(id, KvOp::Get(key), run_ops, &mut self.slots);
                        }
                        RequestRef::Put { key, value } => {
                            summary.contributed |=
                                stage_op(id, KvOp::Put(key, value), run_ops, &mut self.slots);
                        }
                        RequestRef::Del { key } => {
                            summary.contributed |=
                                stage_op(id, KvOp::Del(key), run_ops, &mut self.slots);
                        }
                        RequestRef::Batch(b) if b.is_empty() => {
                            // Nothing to execute: answer now. Joining
                            // the run would stage a response slot
                            // without any backing operations — a pass
                            // where no other frame contributes would
                            // then have an empty run to resolve it
                            // from.
                            summary.immediate += 1;
                            self.slots.push(Slot {
                                id,
                                kind: SlotKind::Ready(Response::Batch(Vec::new())),
                            });
                        }
                        RequestRef::Batch(b) => match b.iter().try_for_each(validate) {
                            Ok(()) => {
                                let off = run_ops.len();
                                run_ops.extend(b.iter());
                                self.slots.push(Slot {
                                    id,
                                    kind: SlotKind::Batch { off, n: b.len() },
                                });
                                summary.contributed = true;
                            }
                            // A batch either joins the run whole or is
                            // rejected whole — same contract as
                            // `StoreClient::batch`, checked here so one
                            // client's bad frame can't poison the
                            // merged run.
                            Err(e) => self.slots.push(Slot {
                                id,
                                kind: SlotKind::Ready(error_response(&e)),
                            }),
                        },
                        RequestRef::Stats => {
                            summary.immediate += 1;
                            self.slots.push(Slot {
                                id,
                                kind: SlotKind::Stats,
                            });
                        }
                        RequestRef::Ping => {
                            summary.immediate += 1;
                            self.slots.push(Slot {
                                id,
                                kind: SlotKind::Pong,
                            });
                        }
                    }
                    consumed
                }
                Err(e) => {
                    // Length-prefixed framing cannot resync after a bad
                    // frame: answer what we staged, send one id-0
                    // error, close.
                    self.slots.push(Slot {
                        id: 0,
                        kind: SlotKind::Ready(Response::Error {
                            code: ErrorCode::Malformed,
                            detail: 0,
                            message: e.to_string(),
                        }),
                    });
                    self.rbuf.reset();
                    self.closing = true;
                    break;
                }
            };
            self.rbuf.consume(consumed);
        }
        summary.staged = self.slots.len() as u64;
        summary
    }

    /// Encode one response per staged slot, in arrival order, into the
    /// output buffer. `outcome` is the merged run's result — required
    /// (`Some`) iff this session contributed operations; a run error
    /// answers every run-backed slot with the same typed error
    /// (divergence poisons the shard set; nothing partial is usable).
    /// `stats` answers any STATS frames.
    pub fn resolve(
        &mut self,
        outcome: Option<&Result<Vec<Option<u32>>, StoreError>>,
        stats: &StatsReply,
    ) {
        for slot in self.slots.drain(..) {
            let resp = match slot.kind {
                SlotKind::Single { off } => match outcome {
                    Some(Ok(values)) => Response::Value(values[off]),
                    Some(Err(e)) => error_response(e),
                    None => unreachable!("run slots imply a nonempty run"),
                },
                SlotKind::Batch { off, n } => match outcome {
                    Some(Ok(values)) => Response::Batch(values[off..off + n].to_vec()),
                    Some(Err(e)) => error_response(e),
                    None => unreachable!("run slots imply a nonempty run"),
                },
                SlotKind::Stats => Response::Stats(*stats),
                SlotKind::Pong => Response::Pong,
                SlotKind::Ready(resp) => resp,
            };
            encode_response(&mut self.out, slot.id, &resp);
        }
    }
}

/// Stage one coalescible single-op frame: into the merged run if it
/// validates, an immediate typed error slot if not.
fn stage_op(id: u32, op: KvOp, run_ops: &mut Vec<KvOp>, slots: &mut Vec<Slot>) -> bool {
    match validate(op) {
        Ok(()) => {
            slots.push(Slot {
                id,
                kind: SlotKind::Single { off: run_ops.len() },
            });
            run_ops.push(op);
            true
        }
        Err(e) => {
            slots.push(Slot {
                id,
                kind: SlotKind::Ready(error_response(&e)),
            });
            false
        }
    }
}

/// The same up-front validation `StoreClient::batch` applies, hoisted
/// before run merging so each frame fails alone.
pub fn validate(op: KvOp) -> Result<(), StoreError> {
    let key = op.key();
    if key > KV_MAX {
        return Err(StoreError::KeyOutOfRange { key });
    }
    if let KvOp::Put(_, value) = op {
        if value > KV_MAX {
            return Err(StoreError::ValueOutOfRange { value });
        }
    }
    Ok(())
}

/// Map a [`StoreError`] onto a wire error frame; the `detail` word
/// carries the machine-readable part (shard, key, value).
pub fn error_response(e: &StoreError) -> Response {
    let (code, detail) = match *e {
        StoreError::Divergence { shard } => (ErrorCode::Divergence, shard as u32),
        StoreError::KeyOutOfRange { key } => (ErrorCode::KeyOutOfRange, key),
        StoreError::ValueOutOfRange { value } => (ErrorCode::ValueOutOfRange, value),
        StoreError::Io(_) | StoreError::Protocol(_) | StoreError::Server { .. } => {
            (ErrorCode::Internal, 0)
        }
    };
    Response::Error {
        code,
        detail,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_response, encode_request, Request, ResponseFrame};

    fn drain_responses(bytes: &[u8]) -> Vec<ResponseFrame> {
        let mut out = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            match decode_response(&bytes[at..]).expect("valid response") {
                Decoded::Frame { frame, consumed } => {
                    out.push(frame);
                    at += consumed;
                }
                Decoded::NeedMoreData => panic!("truncated response stream"),
            }
        }
        out
    }

    #[test]
    fn stage_execute_resolve_round_trip() {
        let mut s = Session::new();
        let mut wire = Vec::new();
        encode_request(&mut wire, 1, &Request::Put { key: 4, value: 9 });
        encode_request(&mut wire, 2, &Request::Get { key: 4 });
        encode_request(&mut wire, 3, &Request::Ping);
        s.ingest(&wire);
        let mut run = Vec::new();
        let sum = s.stage(&mut run);
        assert!(sum.contributed);
        assert_eq!(sum.immediate, 1);
        assert_eq!(sum.staged, 3);
        assert_eq!(run, vec![KvOp::Put(4, 9), KvOp::Get(4)]);
        // "Execute" the run and resolve.
        let outcome = Ok(vec![None, Some(9)]);
        s.resolve(Some(&outcome), &StatsReply::default());
        let frames = drain_responses(s.output());
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].id, 1);
        assert!(matches!(frames[0].resp, Response::Value(None)));
        assert_eq!(frames[1].id, 2);
        assert!(matches!(frames[1].resp, Response::Value(Some(9))));
        assert!(matches!(frames[2].resp, Response::Pong));
        assert_eq!(s.pending_slots(), 0);
    }

    #[test]
    fn byte_chunking_does_not_change_staging() {
        // The simulator's whole premise: however the network chunks the
        // stream, the session decodes the same frames.
        let mut wire = Vec::new();
        encode_request(&mut wire, 7, &Request::Put { key: 1, value: 2 });
        encode_request(&mut wire, 8, &Request::Del { key: 1 });
        let mut whole = Session::new();
        whole.ingest(&wire);
        let mut run_whole = Vec::new();
        whole.stage(&mut run_whole);
        let mut chunked = Session::new();
        let mut run_chunked = Vec::new();
        for b in &wire {
            chunked.ingest(std::slice::from_ref(b));
            chunked.stage(&mut run_chunked);
        }
        assert_eq!(run_whole, run_chunked);
        assert_eq!(whole.pending_slots(), chunked.pending_slots());
    }

    #[test]
    fn invalid_op_fails_alone_and_run_survives() {
        let mut s = Session::new();
        let mut wire = Vec::new();
        encode_request(
            &mut wire,
            1,
            &Request::Put {
                key: u32::MAX,
                value: 1,
            },
        );
        encode_request(&mut wire, 2, &Request::Get { key: 3 });
        s.ingest(&wire);
        let mut run = Vec::new();
        let sum = s.stage(&mut run);
        assert!(sum.contributed, "valid op after an invalid one was dropped");
        assert_eq!(run, vec![KvOp::Get(3)]);
        let outcome = Ok(vec![None]);
        s.resolve(Some(&outcome), &StatsReply::default());
        let frames = drain_responses(s.output());
        assert!(matches!(
            frames[0].resp,
            Response::Error {
                code: ErrorCode::KeyOutOfRange,
                ..
            }
        ));
        assert!(matches!(frames[1].resp, Response::Value(None)));
    }

    #[test]
    fn garbage_input_stages_malformed_and_closes() {
        let mut s = Session::new();
        // A length prefix promising more than MAX_FRAME_LEN is
        // unrecoverable garbage.
        s.ingest(&[0xff, 0xff, 0xff, 0xff, 1, 2, 3]);
        let mut run = Vec::new();
        let sum = s.stage(&mut run);
        assert!(!sum.contributed);
        assert!(s.closing());
        s.resolve(None, &StatsReply::default());
        let frames = drain_responses(s.output());
        assert_eq!(frames[0].id, 0);
        assert!(matches!(
            frames[0].resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        // Closing sessions stage nothing further.
        s.ingest(&[1, 2, 3]);
        assert_eq!(s.stage(&mut run).staged, 0);
    }
}
