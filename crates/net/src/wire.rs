//! The `ff-net` wire protocol: length-prefixed binary frames with a
//! versioned header.
//!
//! Every frame, in either direction, is laid out as
//!
//! ```text
//! [len: u32 LE] [version: u8] [type: u8] [request id: u32 LE] [payload …]
//! ```
//!
//! where `len` counts every byte after the length prefix (so the
//! smallest frame is `len = 6`). Integers are little-endian
//! throughout. `request id` is chosen by the client and echoed by the
//! server, which is what makes pipelining safe: a client may write any
//! number of request frames before reading, and matches responses to
//! requests by id (the server answers in order, so ids double as a
//! protocol-violation check).
//!
//! The decoder is *total*: arbitrary input bytes either decode, report
//! [`Decoded::NeedMoreData`] (truncated frame — keep reading), or
//! return a [`DecodeError`] — it never panics, which the proptests in
//! this module pin down. Frames above [`MAX_FRAME_LEN`] are rejected
//! outright so a malicious peer cannot make the server buffer
//! unboundedly.
//!
//! | type | direction | payload |
//! |---|---|---|
//! | `0x01` GET | → | key `u32` |
//! | `0x02` PUT | → | key `u32`, value `u32` |
//! | `0x03` DEL | → | key `u32` |
//! | `0x04` BATCH | → | count `u32`, then count × (op `u8`, key `u32`, value `u32`) |
//! | `0x05` STATS | → | — |
//! | `0x06` PING | → | — |
//! | `0x81` VALUE | ← | present `u8`, value `u32` |
//! | `0x84` BATCH-RESP | ← | count `u32`, then count × (present `u8`, value `u32`) |
//! | `0x85` STATS-RESP | ← | shards `u32`, active conns `u32`, diverged `u8`, ops served `u64` |
//! | `0x86` PONG | ← | — |
//! | `0xEE` ERROR | ← | code `u8`, detail `u32`, msg len `u16`, msg (UTF-8) |

use ff_store::KvOp;

/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on `len` (bytes after the length prefix). Frames claiming
/// more are a protocol error, not a buffering obligation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Header bytes after the length prefix: version, type, request id.
const HEADER_AFTER_LEN: usize = 6;

// Frame type bytes.
const T_GET: u8 = 0x01;
const T_PUT: u8 = 0x02;
const T_DEL: u8 = 0x03;
const T_BATCH: u8 = 0x04;
const T_STATS: u8 = 0x05;
const T_PING: u8 = 0x06;
const T_VALUE: u8 = 0x81;
const T_BATCH_RESP: u8 = 0x84;
const T_STATS_RESP: u8 = 0x85;
const T_PONG: u8 = 0x86;
const T_ERROR: u8 = 0xEE;

// KvOp tags inside a BATCH payload (match ff-store's opcodes).
const OP_PUT: u8 = 1;
const OP_GET: u8 = 2;
const OP_DEL: u8 = 3;

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Read a key.
    Get {
        /// Key to read.
        key: u32,
    },
    /// Write `key → value`.
    Put {
        /// Key to write.
        key: u32,
        /// Value to store.
        value: u32,
    },
    /// Remove a key.
    Del {
        /// Key to remove.
        key: u32,
    },
    /// Execute many operations in one round trip; the server groups
    /// same-shard operations into one log pass per shard.
    Batch(Vec<KvOp>),
    /// Ask for server-side counters.
    Stats,
    /// Liveness probe.
    Ping,
}

/// Why the server refused or failed a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The touched shard's consensus cells broke; `detail` is the
    /// shard index. The server answers this instead of wrong data.
    Divergence = 1,
    /// Key outside the 28-bit key space; `detail` is the key.
    KeyOutOfRange = 2,
    /// Value outside the 28-bit value space; `detail` is the value.
    ValueOutOfRange = 3,
    /// The request frame did not parse.
    Malformed = 4,
    /// Connection limit reached — try again later.
    Overloaded = 5,
    /// The server is draining connections for shutdown.
    ShuttingDown = 6,
    /// Anything else.
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Divergence,
            2 => ErrorCode::KeyOutOfRange,
            3 => ErrorCode::ValueOutOfRange,
            4 => ErrorCode::Malformed,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Server-side counters returned by [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Shards in the store behind this server.
    pub shards: u32,
    /// Currently open connections.
    pub active_connections: u32,
    /// Has any shard's log accumulated divergence evidence?
    pub diverged: bool,
    /// Requests served since the server started.
    pub ops_served: u64,
    /// Merged cross-connection runs the reactor executed (one per
    /// serve pass that carried operations).
    pub runs_executed: u64,
    /// Operations that went through merged runs; the mean merged-batch
    /// size is `run_ops / runs_executed`.
    pub run_ops: u64,
    /// Largest single merged run.
    pub max_run_ops: u32,
    /// Request frames staged for a response across all serve passes;
    /// frames-per-tick is `frames_staged / runs_executed`.
    pub frames_staged: u64,
    /// Flat-combining passes the store's shard cores ran (0 unless the
    /// store was built with `combining`).
    pub combine_passes: u64,
    /// Operations those combining passes batched.
    pub combine_ops: u64,
    /// Slot records the store's write-ahead log persisted (0 unless the
    /// server runs with a data dir).
    pub wal_records: u64,
    /// Group commits plus checkpoint rotations the WAL fsynced.
    pub wal_fsyncs: u64,
    /// Slot records replayed through consensus when this server
    /// recovered its store at startup.
    pub recovered_records: u64,
    /// Checkpoint snapshots loaded at startup recovery.
    pub recovered_checkpoints: u64,
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to GET/PUT/DEL: previous/current value, if any.
    Value(Option<u32>),
    /// Answer to BATCH, one entry per operation in request order.
    Batch(Vec<Option<u32>>),
    /// Answer to STATS.
    Stats(StatsReply),
    /// Answer to PING.
    Pong,
    /// The request failed.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Code-specific detail (shard index, offending key, …).
        detail: u32,
        /// Human-readable message.
        message: String,
    },
}

/// One decoded client → server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen id, echoed in the response.
    pub id: u32,
    /// The request.
    pub req: Request,
}

/// A borrowed view of one decoded request frame — the zero-copy
/// counterpart of [`RequestFrame`], produced by [`decode_frame`].
///
/// Nothing is allocated and no payload bytes are copied: a
/// [`RequestRef::Batch`] keeps a validated slice of the input buffer
/// and decodes its operations lazily. The reactor's hot path stages
/// operations straight out of a connection's read buffer through this
/// view; [`decode_request`] is now a thin `to_owned` wrapper over it,
/// so every totality property proven for one decoder holds for both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// Client-chosen id, echoed in the response.
    pub id: u32,
    /// The request, borrowing the input buffer.
    pub req: RequestRef<'a>,
}

impl FrameRef<'_> {
    /// Copy this view into an owned [`RequestFrame`].
    pub fn to_owned_frame(&self) -> RequestFrame {
        RequestFrame {
            id: self.id,
            req: match self.req {
                RequestRef::Get { key } => Request::Get { key },
                RequestRef::Put { key, value } => Request::Put { key, value },
                RequestRef::Del { key } => Request::Del { key },
                RequestRef::Batch(b) => Request::Batch(b.iter().collect()),
                RequestRef::Stats => Request::Stats,
                RequestRef::Ping => Request::Ping,
            },
        }
    }
}

/// A client → server message, borrowing the decode buffer. See
/// [`Request`] for the semantics of each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// Read a key.
    Get {
        /// Key to read.
        key: u32,
    },
    /// Write `key → value`.
    Put {
        /// Key to write.
        key: u32,
        /// Value to store.
        value: u32,
    },
    /// Remove a key.
    Del {
        /// Key to remove.
        key: u32,
    },
    /// Many operations in one frame, decoded lazily from the buffer.
    Batch(BatchRef<'a>),
    /// Ask for server-side counters.
    Stats,
    /// Liveness probe.
    Ping,
}

/// The operations of a BATCH frame, still in wire form. The payload
/// was fully validated by [`decode_frame`] (count matches the frame
/// length, every tag is known, get/del carry a zero value word), so
/// iteration is infallible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRef<'a> {
    /// `len() * 9` bytes of `(tag u8, key u32 LE, value u32 LE)`.
    ops: &'a [u8],
}

impl<'a> BatchRef<'a> {
    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len() / 9
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Decode the operations in order, straight off the wire bytes.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = KvOp> + 'a {
        self.ops.chunks_exact(9).map(|op| {
            let key = u32::from_le_bytes(op[1..5].try_into().unwrap());
            let value = u32::from_le_bytes(op[5..9].try_into().unwrap());
            match op[0] {
                OP_PUT => KvOp::Put(key, value),
                OP_GET => KvOp::Get(key),
                _ => KvOp::Del(key),
            }
        })
    }
}

/// One decoded server → client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The id of the request this answers.
    pub id: u32,
    /// The response.
    pub resp: Response,
}

/// Why a byte sequence is not a frame (distinct from *not yet* being
/// one, which is [`Decoded::NeedMoreData`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// `len` is below the 6 header bytes or above [`MAX_FRAME_LEN`].
    BadLength(u32),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown frame type byte (or a response type where a request was
    /// expected, and vice versa).
    UnknownType(u8),
    /// The payload does not match the frame type's shape.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadLength(n) => write!(
                f,
                "frame length {n} outside [{HEADER_AFTER_LEN}, {MAX_FRAME_LEN}]"
            ),
            DecodeError::BadVersion(v) => {
                write!(
                    f,
                    "unknown protocol version {v} (expected {PROTOCOL_VERSION})"
                )
            }
            DecodeError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Outcome of a one-shot decode attempt over a byte prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decoded<T> {
    /// A complete frame, and how many input bytes it consumed.
    Frame {
        /// The decoded frame.
        frame: T,
        /// Bytes consumed from the front of the input.
        consumed: usize,
    },
    /// The input is a (possibly empty) prefix of a frame — read more.
    NeedMoreData,
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

fn frame(out: &mut Vec<u8>, ftype: u8, id: u32, payload: &[u8]) {
    let len = (HEADER_AFTER_LEN + payload.len()) as u32;
    debug_assert!(len <= MAX_FRAME_LEN);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(ftype);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Append the encoding of one request frame to `out`.
pub fn encode_request(out: &mut Vec<u8>, id: u32, req: &Request) {
    let mut p = Vec::new();
    let ftype = match req {
        Request::Get { key } => {
            p.extend_from_slice(&key.to_le_bytes());
            T_GET
        }
        Request::Put { key, value } => {
            p.extend_from_slice(&key.to_le_bytes());
            p.extend_from_slice(&value.to_le_bytes());
            T_PUT
        }
        Request::Del { key } => {
            p.extend_from_slice(&key.to_le_bytes());
            T_DEL
        }
        Request::Batch(ops) => {
            p.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                let (tag, key, value) = match *op {
                    KvOp::Put(k, v) => (OP_PUT, k, v),
                    KvOp::Get(k) => (OP_GET, k, 0),
                    KvOp::Del(k) => (OP_DEL, k, 0),
                };
                p.push(tag);
                p.extend_from_slice(&key.to_le_bytes());
                p.extend_from_slice(&value.to_le_bytes());
            }
            T_BATCH
        }
        Request::Stats => T_STATS,
        Request::Ping => T_PING,
    };
    frame(out, ftype, id, &p);
}

/// Append the encoding of one response frame to `out`.
pub fn encode_response(out: &mut Vec<u8>, id: u32, resp: &Response) {
    let mut p = Vec::new();
    let ftype = match resp {
        Response::Value(v) => {
            p.push(v.is_some() as u8);
            p.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
            T_VALUE
        }
        Response::Batch(vs) => {
            p.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                p.push(v.is_some() as u8);
                p.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
            }
            T_BATCH_RESP
        }
        Response::Stats(s) => {
            p.extend_from_slice(&s.shards.to_le_bytes());
            p.extend_from_slice(&s.active_connections.to_le_bytes());
            p.push(s.diverged as u8);
            p.extend_from_slice(&s.ops_served.to_le_bytes());
            p.extend_from_slice(&s.runs_executed.to_le_bytes());
            p.extend_from_slice(&s.run_ops.to_le_bytes());
            p.extend_from_slice(&s.max_run_ops.to_le_bytes());
            p.extend_from_slice(&s.frames_staged.to_le_bytes());
            p.extend_from_slice(&s.combine_passes.to_le_bytes());
            p.extend_from_slice(&s.combine_ops.to_le_bytes());
            p.extend_from_slice(&s.wal_records.to_le_bytes());
            p.extend_from_slice(&s.wal_fsyncs.to_le_bytes());
            p.extend_from_slice(&s.recovered_records.to_le_bytes());
            p.extend_from_slice(&s.recovered_checkpoints.to_le_bytes());
            T_STATS_RESP
        }
        Response::Pong => T_PONG,
        Response::Error {
            code,
            detail,
            message,
        } => {
            let msg = message.as_bytes();
            let msg = &msg[..msg.len().min(u16::MAX as usize)];
            p.push(*code as u8);
            p.extend_from_slice(&detail.to_le_bytes());
            p.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            p.extend_from_slice(msg);
            T_ERROR
        }
    };
    frame(out, ftype, id, &p);
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// A little-endian cursor over a payload; every read is bounds-checked
/// so the decoder is total.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError::Malformed("payload shorter than its shape"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Malformed("flag byte not 0 or 1")),
        }
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes after payload"))
        }
    }
}

/// An undecoded frame body: `(type byte, request id, payload)`.
type RawFrame<'a> = (u8, u32, &'a [u8]);

/// Split off one raw frame from the front of `buf`.
fn raw_frame(buf: &[u8]) -> Result<Decoded<RawFrame<'_>>, DecodeError> {
    if buf.len() < 4 {
        return Ok(Decoded::NeedMoreData);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len < HEADER_AFTER_LEN as u32 || len > MAX_FRAME_LEN {
        return Err(DecodeError::BadLength(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(Decoded::NeedMoreData);
    }
    let version = buf[4];
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let ftype = buf[5];
    let id = u32::from_le_bytes(buf[6..10].try_into().unwrap());
    Ok(Decoded::Frame {
        frame: (ftype, id, &buf[10..total]),
        consumed: total,
    })
}

/// Decode one request frame from the front of `buf` **without copying
/// the payload**: the returned [`FrameRef`] borrows `buf`. This is the
/// reactor's hot decode path; like [`decode_request`] it is total —
/// arbitrary bytes decode, report [`Decoded::NeedMoreData`], or return
/// a [`DecodeError`], never panic. A BATCH payload is fully validated
/// here (count vs length, op tags, zero value words on get/del) so the
/// [`BatchRef`] iterator is infallible.
pub fn decode_frame(buf: &[u8]) -> Result<Decoded<FrameRef<'_>>, DecodeError> {
    let (ftype, id, payload, consumed) = match raw_frame(buf)? {
        Decoded::NeedMoreData => return Ok(Decoded::NeedMoreData),
        Decoded::Frame {
            frame: (t, i, p),
            consumed,
        } => (t, i, p, consumed),
    };
    let mut c = Cursor::new(payload);
    let req = match ftype {
        T_GET => RequestRef::Get { key: c.u32()? },
        T_PUT => RequestRef::Put {
            key: c.u32()?,
            value: c.u32()?,
        },
        T_DEL => RequestRef::Del { key: c.u32()? },
        T_BATCH => {
            let count = c.u32()? as usize;
            // 9 bytes per op; the count must be consistent with the
            // frame's actual payload, so a huge count in a small frame
            // is rejected before any allocation sized by it.
            if payload.len() != 4 + count * 9 {
                return Err(DecodeError::Malformed("batch count disagrees with length"));
            }
            let ops = c.take(count * 9)?;
            for op in ops.chunks_exact(9) {
                let value = u32::from_le_bytes(op[5..9].try_into().unwrap());
                match op[0] {
                    OP_PUT => {}
                    OP_GET | OP_DEL if value == 0 => {}
                    OP_GET | OP_DEL => {
                        return Err(DecodeError::Malformed("nonzero value on get/del"))
                    }
                    _ => return Err(DecodeError::Malformed("unknown batch op tag")),
                }
            }
            RequestRef::Batch(BatchRef { ops })
        }
        T_STATS => RequestRef::Stats,
        T_PING => RequestRef::Ping,
        other => return Err(DecodeError::UnknownType(other)),
    };
    c.finish()?;
    Ok(Decoded::Frame {
        frame: FrameRef { id, req },
        consumed,
    })
}

/// Decode one request frame from the front of `buf` into an owned
/// [`RequestFrame`] — [`decode_frame`] plus a copy-out.
pub fn decode_request(buf: &[u8]) -> Result<Decoded<RequestFrame>, DecodeError> {
    Ok(match decode_frame(buf)? {
        Decoded::NeedMoreData => Decoded::NeedMoreData,
        Decoded::Frame { frame, consumed } => Decoded::Frame {
            frame: frame.to_owned_frame(),
            consumed,
        },
    })
}

/// Decode one response frame from the front of `buf`.
pub fn decode_response(buf: &[u8]) -> Result<Decoded<ResponseFrame>, DecodeError> {
    let (ftype, id, payload, consumed) = match raw_frame(buf)? {
        Decoded::NeedMoreData => return Ok(Decoded::NeedMoreData),
        Decoded::Frame {
            frame: (t, i, p),
            consumed,
        } => (t, i, p, consumed),
    };
    let mut c = Cursor::new(payload);
    let resp = match ftype {
        T_VALUE => {
            let present = c.bool()?;
            let value = c.u32()?;
            if !present && value != 0 {
                return Err(DecodeError::Malformed("absent value must encode 0"));
            }
            Response::Value(present.then_some(value))
        }
        T_BATCH_RESP => {
            let count = c.u32()? as usize;
            if payload.len() != 4 + count * 5 {
                return Err(DecodeError::Malformed(
                    "batch response count disagrees with length",
                ));
            }
            let mut vs = Vec::with_capacity(count);
            for _ in 0..count {
                let present = c.bool()?;
                let value = c.u32()?;
                if !present && value != 0 {
                    return Err(DecodeError::Malformed("absent value must encode 0"));
                }
                vs.push(present.then_some(value));
            }
            Response::Batch(vs)
        }
        T_STATS_RESP => Response::Stats(StatsReply {
            shards: c.u32()?,
            active_connections: c.u32()?,
            diverged: c.bool()?,
            ops_served: c.u64()?,
            runs_executed: c.u64()?,
            run_ops: c.u64()?,
            max_run_ops: c.u32()?,
            frames_staged: c.u64()?,
            combine_passes: c.u64()?,
            combine_ops: c.u64()?,
            wal_records: c.u64()?,
            wal_fsyncs: c.u64()?,
            recovered_records: c.u64()?,
            recovered_checkpoints: c.u64()?,
        }),
        T_PONG => Response::Pong,
        T_ERROR => {
            let code =
                ErrorCode::from_u8(c.u8()?).ok_or(DecodeError::Malformed("unknown error code"))?;
            let detail = c.u32()?;
            let msg_len = c.u16()? as usize;
            let message = std::str::from_utf8(c.take(msg_len)?)
                .map_err(|_| DecodeError::Malformed("error message not UTF-8"))?
                .to_string();
            Response::Error {
                code,
                detail,
                message,
            }
        }
        other => return Err(DecodeError::UnknownType(other)),
    };
    c.finish()?;
    Ok(Decoded::Frame {
        frame: ResponseFrame { id, resp },
        consumed,
    })
}

// ---------------------------------------------------------------------
// Streaming buffer.
// ---------------------------------------------------------------------

/// An incremental frame buffer: feed bytes as they arrive off a socket,
/// pop complete frames. Both the server (requests) and the client
/// (responses) run one of these per connection.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Feed freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Read up to `max` bytes from `r` directly into the buffer — no
    /// intermediate chunk copy. Returns what `r.read` returned
    /// (`Ok(0)` is end-of-stream, as usual).
    pub fn read_from(&mut self, r: &mut impl std::io::Read, max: usize) -> std::io::Result<usize> {
        self.compact();
        let len = self.buf.len();
        self.buf.resize(len + max, 0);
        let res = r.read(&mut self.buf[len..]);
        let n = *res.as_ref().unwrap_or(&0);
        self.buf.truncate(len + n);
        res
    }

    // Compact lazily: only when the dead prefix dominates.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Bytes buffered but not yet consumed by a popped frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next request frame **in place** — the zero-copy
    /// counterpart of [`FrameBuffer::pop_request`]. The returned
    /// [`FrameRef`] borrows the buffer; once its contents are staged,
    /// advance past it with [`FrameBuffer::consume`].
    pub fn peek_frame(&self) -> Result<Decoded<FrameRef<'_>>, DecodeError> {
        decode_frame(&self.buf[self.start..])
    }

    /// Advance past `n` bytes previously reported by a
    /// [`Decoded::Frame`]'s `consumed`.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.pending(), "consuming past the buffered bytes");
        self.start += n.min(self.pending());
    }

    /// Drop all buffered bytes but keep the allocation (for pooling).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Current allocation size (for pool shrink decisions).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn pop<T>(
        &mut self,
        decode: impl Fn(&[u8]) -> Result<Decoded<T>, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match decode(&self.buf[self.start..])? {
            Decoded::NeedMoreData => Ok(None),
            Decoded::Frame { frame, consumed } => {
                self.start += consumed;
                Ok(Some(frame))
            }
        }
    }

    /// Pop the next complete request frame, if one is buffered.
    pub fn pop_request(&mut self) -> Result<Option<RequestFrame>, DecodeError> {
        self.pop(decode_request)
    }

    /// Pop the next complete response frame, if one is buffered.
    pub fn pop_response(&mut self) -> Result<Option<ResponseFrame>, DecodeError> {
        self.pop(decode_response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Get { key: 0 },
            Request::Get { key: u32::MAX },
            Request::Put { key: 7, value: 99 },
            Request::Del { key: 12345 },
            Request::Batch(vec![]),
            Request::Batch(vec![KvOp::Put(1, 2), KvOp::Get(3), KvOp::Del(4)]),
            Request::Stats,
            Request::Ping,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Value(None),
            Response::Value(Some(0)),
            Response::Value(Some(u32::MAX)),
            Response::Batch(vec![]),
            Response::Batch(vec![Some(1), None, Some(3)]),
            Response::Stats(StatsReply {
                shards: 8,
                active_connections: 3,
                diverged: true,
                ops_served: u64::MAX,
                runs_executed: 41,
                run_ops: 9000,
                max_run_ops: 512,
                frames_staged: 8192,
                combine_passes: 77,
                combine_ops: 616,
                wal_records: 123_456,
                wal_fsyncs: 789,
                recovered_records: 4242,
                recovered_checkpoints: 6,
            }),
            Response::Stats(StatsReply::default()),
            Response::Pong,
            Response::Error {
                code: ErrorCode::Divergence,
                detail: 5,
                message: "shard 5 diverged ⊥".into(),
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for (id, req) in requests().into_iter().enumerate() {
            let id = id as u32 * 1000 + 17;
            let mut bytes = Vec::new();
            encode_request(&mut bytes, id, &req);
            match decode_request(&bytes).unwrap() {
                Decoded::Frame { frame, consumed } => {
                    assert_eq!(consumed, bytes.len());
                    assert_eq!(frame, RequestFrame { id, req });
                }
                Decoded::NeedMoreData => panic!("complete frame reported as truncated"),
            }
        }
    }

    #[test]
    fn every_response_round_trips() {
        for (id, resp) in responses().into_iter().enumerate() {
            let id = u32::MAX - id as u32;
            let mut bytes = Vec::new();
            encode_response(&mut bytes, id, &resp);
            match decode_response(&bytes).unwrap() {
                Decoded::Frame { frame, consumed } => {
                    assert_eq!(consumed, bytes.len());
                    assert_eq!(frame, ResponseFrame { id, resp });
                }
                Decoded::NeedMoreData => panic!("complete frame reported as truncated"),
            }
        }
    }

    #[test]
    fn every_truncation_of_every_frame_needs_more_data() {
        let mut all = Vec::new();
        for req in requests() {
            let mut b = Vec::new();
            encode_request(&mut b, 42, &req);
            all.push((b, true));
        }
        for resp in responses() {
            let mut b = Vec::new();
            encode_response(&mut b, 42, &resp);
            all.push((b, false));
        }
        for (bytes, is_req) in all {
            for cut in 0..bytes.len() {
                let prefix = &bytes[..cut];
                let verdict = if is_req {
                    decode_request(prefix).map(|d| matches!(d, Decoded::NeedMoreData))
                } else {
                    decode_response(prefix).map(|d| matches!(d, Decoded::NeedMoreData))
                };
                assert_eq!(
                    verdict,
                    Ok(true),
                    "prefix of {cut}/{} bytes must be NeedMoreData",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn oversize_length_rejected_before_buffering() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            decode_request(&bytes),
            Err(DecodeError::BadLength(MAX_FRAME_LEN + 1))
        );
        // A runt length is just as dead.
        let runt = [3u8, 0, 0, 0];
        assert_eq!(decode_request(&runt), Err(DecodeError::BadLength(3)));
    }

    #[test]
    fn wrong_version_and_type_rejected() {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 1, &Request::Ping);
        bytes[4] = 9;
        assert_eq!(decode_request(&bytes), Err(DecodeError::BadVersion(9)));

        let mut bytes = Vec::new();
        encode_request(&mut bytes, 1, &Request::Ping);
        bytes[5] = 0x7f;
        assert_eq!(decode_request(&bytes), Err(DecodeError::UnknownType(0x7f)));

        // Response types are not requests and vice versa.
        let mut bytes = Vec::new();
        encode_response(&mut bytes, 1, &Response::Pong);
        assert!(matches!(
            decode_request(&bytes),
            Err(DecodeError::UnknownType(_))
        ));
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 1, &Request::Ping);
        assert!(matches!(
            decode_response(&bytes),
            Err(DecodeError::UnknownType(_))
        ));
    }

    #[test]
    fn batch_count_must_match_payload() {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 1, &Request::Batch(vec![KvOp::Get(1)]));
        // Claim 2 ops but carry 1.
        let count_off = 4 + HEADER_AFTER_LEN;
        bytes[count_off] = 2;
        assert_eq!(
            decode_request(&bytes),
            Err(DecodeError::Malformed("batch count disagrees with length"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 1, &Request::Get { key: 5 });
        // Grow the declared length and append a junk byte: same type,
        // one byte too many payload.
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) + 1;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        bytes.push(0xAA);
        assert_eq!(
            decode_request(&bytes),
            Err(DecodeError::Malformed("trailing bytes after payload"))
        );
    }

    #[test]
    fn frame_buffer_pops_pipelined_frames_across_chunk_boundaries() {
        let reqs = requests();
        let mut stream = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            encode_request(&mut stream, i as u32, r);
        }
        // Feed the whole pipelined burst one byte at a time.
        let mut fb = FrameBuffer::new();
        let mut seen = Vec::new();
        for b in stream {
            fb.extend(&[b]);
            while let Some(f) = fb.pop_request().unwrap() {
                seen.push(f);
            }
        }
        assert_eq!(seen.len(), reqs.len());
        for (i, (frame, req)) in seen.into_iter().zip(reqs).enumerate() {
            assert_eq!(frame.id, i as u32);
            assert_eq!(frame.req, req);
        }
    }

    #[test]
    fn zero_copy_decode_agrees_with_owned_decode() {
        for (id, req) in requests().into_iter().enumerate() {
            let id = id as u32 + 7;
            let mut bytes = Vec::new();
            encode_request(&mut bytes, id, &req);
            let Decoded::Frame { frame, consumed } = decode_frame(&bytes).unwrap() else {
                panic!("complete frame reported as truncated");
            };
            assert_eq!(consumed, bytes.len());
            assert_eq!(frame.to_owned_frame(), RequestFrame { id, req });
        }
    }

    #[test]
    fn batch_ref_iterates_ops_in_order_without_allocation() {
        let ops = vec![KvOp::Put(1, 2), KvOp::Get(3), KvOp::Del(4), KvOp::Put(5, 6)];
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 1, &Request::Batch(ops.clone()));
        let Decoded::Frame { frame, .. } = decode_frame(&bytes).unwrap() else {
            panic!("truncated");
        };
        let RequestRef::Batch(b) = frame.req else {
            panic!("not a batch");
        };
        assert_eq!(b.len(), ops.len());
        assert!(!b.is_empty());
        assert_eq!(b.iter().collect::<Vec<_>>(), ops);
    }

    #[test]
    fn peek_consume_walks_a_pipelined_burst() {
        let reqs = requests();
        let mut fb = FrameBuffer::new();
        let mut stream = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            encode_request(&mut stream, i as u32, r);
        }
        fb.extend(&stream);
        let mut seen = Vec::new();
        loop {
            let consumed = match fb.peek_frame().unwrap() {
                Decoded::NeedMoreData => break,
                Decoded::Frame { frame, consumed } => {
                    seen.push(frame.to_owned_frame());
                    consumed
                }
            };
            fb.consume(consumed);
        }
        assert_eq!(fb.pending(), 0);
        assert_eq!(seen.len(), reqs.len());
        for (i, (frame, req)) in seen.into_iter().zip(reqs).enumerate() {
            assert_eq!(frame.id, i as u32);
            assert_eq!(frame.req, req);
        }
    }

    #[test]
    fn read_from_fills_the_buffer_like_extend() {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 3, &Request::Put { key: 8, value: 9 });
        let mut fb = FrameBuffer::new();
        // Deliver through the io::Read path in two ragged chunks.
        let mut src: &[u8] = &bytes;
        let n = fb
            .read_from(&mut std::io::Read::take(&mut src, 5), 16)
            .unwrap();
        assert_eq!(n, 5);
        assert!(matches!(fb.peek_frame(), Ok(Decoded::NeedMoreData)));
        let n = fb.read_from(&mut src, 1024).unwrap();
        assert_eq!(n, bytes.len() - 5);
        assert!(fb.pop_request().unwrap().is_some());
        assert_eq!(fb.pending(), 0);
        // End of stream reads 0 and buffers nothing.
        assert_eq!(fb.read_from(&mut src, 16).unwrap(), 0);
    }

    #[test]
    fn frame_buffer_compacts_without_losing_frames() {
        let mut fb = FrameBuffer::new();
        let mut one = Vec::new();
        encode_request(&mut one, 9, &Request::Put { key: 1, value: 2 });
        for _ in 0..2000 {
            fb.extend(&one);
            assert!(fb.pop_request().unwrap().is_some());
        }
        assert_eq!(fb.pending(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_bytes(seed: &mut u64, len: usize) -> Vec<u8> {
        (0..len).map(|_| mix(seed) as u8).collect()
    }

    fn random_request(seed: &mut u64) -> Request {
        match mix(seed) % 6 {
            0 => Request::Get {
                key: mix(seed) as u32,
            },
            1 => Request::Put {
                key: mix(seed) as u32,
                value: mix(seed) as u32,
            },
            2 => Request::Del {
                key: mix(seed) as u32,
            },
            3 => {
                let n = (mix(seed) % 20) as usize;
                Request::Batch(
                    (0..n)
                        .map(|_| match mix(seed) % 3 {
                            0 => KvOp::Get(mix(seed) as u32),
                            1 => KvOp::Put(mix(seed) as u32, mix(seed) as u32),
                            _ => KvOp::Del(mix(seed) as u32),
                        })
                        .collect(),
                )
            }
            4 => Request::Stats,
            _ => Request::Ping,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        // The core safety property: the decoders are total. Arbitrary
        // bytes never panic them — they decode, want more, or error.
        // `decode_request` is a wrapper over the zero-copy
        // `decode_frame`, so this pins down both; the explicit
        // `decode_frame` call also exercises the borrowed path's lazy
        // batch iterator.
        #[test]
        fn arbitrary_bytes_never_panic_the_decoders(seed in any::<u64>(), len in 0usize..256) {
            let mut s = seed;
            let bytes = random_bytes(&mut s, len);
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
            if let Ok(Decoded::Frame { frame, .. }) = decode_frame(&bytes) {
                if let RequestRef::Batch(b) = frame.req {
                    // The lazy iterator must be infallible after decode.
                    prop_assert_eq!(b.iter().count(), b.len());
                }
            }
            let mut fb = FrameBuffer::new();
            fb.extend(&bytes);
            // Drain until the buffer stalls or errors; must terminate.
            while let Ok(Some(_)) = fb.pop_request() {}
        }

        // The zero-copy and owned decoders agree bit-for-bit on
        // arbitrary input: same errors, same NeedMoreData verdicts,
        // same frames, same consumed counts.
        #[test]
        fn zero_copy_and_owned_decoders_agree(seed in any::<u64>(), len in 0usize..256) {
            let mut s = seed;
            let bytes = random_bytes(&mut s, len);
            let owned = decode_request(&bytes);
            let borrowed = decode_frame(&bytes).map(|d| match d {
                Decoded::NeedMoreData => Decoded::NeedMoreData,
                Decoded::Frame { frame, consumed } => Decoded::Frame {
                    frame: frame.to_owned_frame(),
                    consumed,
                },
            });
            prop_assert_eq!(owned, borrowed);
        }

        // Same agreement on well-formed frames (random_bytes rarely
        // forms a valid frame, so also drive the structured generator
        // through both paths).
        #[test]
        fn zero_copy_decodes_every_valid_frame(seed in any::<u64>()) {
            let mut s = seed;
            let req = random_request(&mut s);
            let id = mix(&mut s) as u32;
            let mut bytes = Vec::new();
            encode_request(&mut bytes, id, &req);
            let Decoded::Frame { frame, consumed } = decode_frame(&bytes).unwrap() else {
                panic!("complete frame reported as truncated");
            };
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(frame.to_owned_frame(), RequestFrame { id, req });
        }

        // Arbitrary random requests round-trip exactly.
        #[test]
        fn random_requests_round_trip(seed in any::<u64>()) {
            let mut s = seed;
            let req = random_request(&mut s);
            let id = mix(&mut s) as u32;
            let mut bytes = Vec::new();
            encode_request(&mut bytes, id, &req);
            let Decoded::Frame { frame, consumed } = decode_request(&bytes).unwrap() else {
                panic!("complete frame reported as truncated");
            };
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(frame, RequestFrame { id, req });
        }

        // Truncating a valid frame anywhere yields NeedMoreData, never
        // an error and never a bogus frame.
        #[test]
        fn truncated_random_frames_need_more_data(seed in any::<u64>()) {
            let mut s = seed;
            let req = random_request(&mut s);
            let mut bytes = Vec::new();
            encode_request(&mut bytes, mix(&mut s) as u32, &req);
            let cut = (mix(&mut s) as usize) % bytes.len();
            prop_assert_eq!(
                decode_request(&bytes[..cut]).unwrap(),
                Decoded::NeedMoreData
            );
        }

        // Flipping any single byte of a valid frame never panics the
        // decoder (it may decode to a different valid frame).
        #[test]
        fn single_byte_corruption_never_panics(seed in any::<u64>()) {
            let mut s = seed;
            let req = random_request(&mut s);
            let mut bytes = Vec::new();
            encode_request(&mut bytes, mix(&mut s) as u32, &req);
            let at = (mix(&mut s) as usize) % bytes.len();
            bytes[at] ^= (mix(&mut s) as u8) | 1;
            let _ = decode_request(&bytes);
        }
    }
}
