//! The ff-store TCP service: a std-only, thread-per-connection server.
//!
//! # Threading model
//!
//! One **accept thread** polls a nonblocking listener (~5 ms tick) and
//! spawns one **handler thread per connection**. No async runtime: the
//! repo's point is the consensus construction, and `std::net` plus
//! threads keeps the service layer auditable. Each handler owns a
//! private [`StoreClient`] — a full replica set, one log handle per
//! shard — so connections never contend on client state; they contend
//! only where the paper says they must, on the shards' consensus
//! cells.
//!
//! # Pipelining and server-side batching
//!
//! A client may write any number of request frames before reading.
//! The handler reads in ~16 KiB chunks and serves each chunk's frames
//! as one **burst**: consecutive GET/PUT/DEL frames in a burst are
//! coalesced into a single [`Kv::batch`] call, which groups same-shard
//! operations into **one log pass per shard** instead of one traversal
//! per request. Responses are written back in request order in a
//! single `write_all`, so a pipelined burst costs one read, one batch,
//! one write. An explicit BATCH frame is the same machinery with the
//! grouping visible to the client.
//!
//! # Backpressure
//!
//! Three mechanisms, all cheap and all visible to the peer:
//!
//! * **Connection cap** — beyond [`ServerConfig::max_connections`],
//!   new connections get one `Overloaded` error frame and are closed.
//!   This also protects the store's hard 1024-client pid space.
//! * **Write timeout** — a peer that stops draining responses stalls
//!   its own handler's `write_all`, which eventually errors and drops
//!   the connection; one slow reader cannot pin server memory.
//! * **Bounded frames** — the decoder rejects frames over
//!   [`MAX_FRAME_LEN`](crate::wire::MAX_FRAME_LEN) before buffering.
//!
//! # Graceful shutdown
//!
//! [`NetServer::shutdown`] flips a flag; handlers notice within one
//! read-timeout tick, stop reading, serve the frames they had already
//! buffered (in-flight requests drain rather than vanish), flush, and
//! retire their [`StoreClient`] into the server's graveyard. The
//! returned [`ServerReport`] hands those clients back so a harness can
//! run [`Store::verify`] over *exactly* the replicas that served
//! traffic.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ff_store::{Kv, KvOp, Store, StoreClient, StoreError};
use parking_lot::Mutex;

use crate::wire::{encode_response, ErrorCode, FrameBuffer, Request, Response, StatsReply};

/// Tuning for a [`NetServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections beyond this are refused with `Overloaded`.
    pub max_connections: usize,
    /// Per-connection read timeout; doubles as the shutdown-poll tick,
    /// so keep it small.
    pub read_timeout: Duration,
    /// Per-connection write timeout — the backpressure bound on a peer
    /// that stops draining responses.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
        }
    }
}

struct Shared {
    store: Arc<Store>,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicU32,
    ops_served: AtomicU64,
    /// Clients of finished connections, kept for post-shutdown
    /// verification.
    retired: Mutex<Vec<StoreClient>>,
}

/// A running ff-store TCP server. Dropping it without calling
/// [`NetServer::shutdown`] leaks the accept thread; shut it down.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

/// What a drained server hands back.
pub struct ServerReport {
    /// The per-connection replica clients, every one caught up on the
    /// traffic it served — feed them to [`Store::verify`].
    pub clients: Vec<StoreClient>,
    /// Requests served over the server's lifetime.
    pub ops_served: u64,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `store`.
    pub fn start<A: ToSocketAddrs>(
        store: Arc<Store>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicU32::new(0),
            ops_served: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u32 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain in-flight requests, join every thread and
    /// hand back the retired clients.
    pub fn shutdown(mut self) -> ServerReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let handlers = self
            .accept
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("accept thread never panics");
        for h in handlers {
            let _ = h.join();
        }
        let clients = std::mem::take(&mut *self.shared.retired.lock());
        ServerReport {
            clients,
            ops_served: self.shared.ops_served.load(Ordering::SeqCst),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return handlers;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    refuse(
                        stream,
                        &shared,
                        ErrorCode::ShuttingDown,
                        "server shutting down",
                    );
                    return handlers;
                }
                if shared.active.load(Ordering::SeqCst) as usize >= shared.config.max_connections {
                    refuse(
                        stream,
                        &shared,
                        ErrorCode::Overloaded,
                        "connection limit reached",
                    );
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, conn_shared)
                }));
                handlers.retain(|h| !h.is_finished());
            }
            // Nonblocking accept: nobody waiting — poll again shortly.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort: tell the refused peer why before closing.
fn refuse(mut stream: TcpStream, shared: &Shared, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut out = Vec::new();
    encode_response(
        &mut out,
        0,
        &Response::Error {
            code,
            detail: 0,
            message: message.to_string(),
        },
    );
    let _ = stream.write_all(&out);
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let client = shared.store.client();
    let client = run_connection(stream, &shared, client);
    shared.retired.lock().push(client);
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// Serve one connection until the peer closes, an error kills it, or a
/// shutdown drains it. Always returns the client for the graveyard.
fn run_connection(mut stream: TcpStream, shared: &Shared, mut client: StoreClient) -> StoreClient {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if !draining {
            match stream.read(&mut chunk) {
                Ok(0) => return client, // peer closed
                Ok(n) => fb.extend(&chunk[..n]),
                // Read-timeout tick: fall through to recheck shutdown.
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return client,
            }
        }
        let mut out = Vec::new();
        let ok = serve_burst(&mut fb, &mut client, shared, &mut out);
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return client;
        }
        if !ok || draining {
            let _ = stream.flush();
            return client;
        }
    }
}

/// Serve every complete frame currently buffered, coalescing runs of
/// single-op requests into one [`Kv::batch`]. Returns `false` if the
/// stream is unrecoverable (decode error — framing is lost).
fn serve_burst(
    fb: &mut FrameBuffer,
    client: &mut StoreClient,
    shared: &Shared,
    out: &mut Vec<u8>,
) -> bool {
    // (request id, op) pairs of the current coalescible run.
    let mut run: Vec<(u32, KvOp)> = Vec::new();
    loop {
        match fb.pop_request() {
            Ok(Some(frame)) => {
                let single = match frame.req {
                    Request::Get { key } => Some(KvOp::Get(key)),
                    Request::Put { key, value } => Some(KvOp::Put(key, value)),
                    Request::Del { key } => Some(KvOp::Del(key)),
                    _ => None,
                };
                if let Some(op) = single {
                    run.push((frame.id, op));
                    continue;
                }
                // Anything else is a batching boundary.
                flush_run(&mut run, client, shared, out);
                match frame.req {
                    Request::Batch(ops) => {
                        let resp = match client.batch(&ops) {
                            Ok(values) => {
                                shared
                                    .ops_served
                                    .fetch_add(ops.len() as u64, Ordering::Relaxed);
                                Response::Batch(values)
                            }
                            Err(e) => error_response(&e),
                        };
                        encode_response(out, frame.id, &resp);
                    }
                    Request::Stats => {
                        shared.ops_served.fetch_add(1, Ordering::Relaxed);
                        encode_response(out, frame.id, &Response::Stats(stats(shared)));
                    }
                    Request::Ping => {
                        shared.ops_served.fetch_add(1, Ordering::Relaxed);
                        encode_response(out, frame.id, &Response::Pong);
                    }
                    Request::Get { .. } | Request::Put { .. } | Request::Del { .. } => {
                        unreachable!("handled as coalescible ops")
                    }
                }
            }
            Ok(None) => {
                flush_run(&mut run, client, shared, out);
                return true;
            }
            Err(e) => {
                // Length-prefixed framing cannot resync after a bad
                // frame: answer what we had, report, close.
                flush_run(&mut run, client, shared, out);
                encode_response(
                    out,
                    0,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        detail: 0,
                        message: e.to_string(),
                    },
                );
                return false;
            }
        }
    }
}

/// Execute a coalesced run as one batch — one log pass per touched
/// shard — and answer each request under its own id, in order.
fn flush_run(
    run: &mut Vec<(u32, KvOp)>,
    client: &mut StoreClient,
    shared: &Shared,
    out: &mut Vec<u8>,
) {
    if run.is_empty() {
        return;
    }
    let ops: Vec<KvOp> = run.iter().map(|&(_, op)| op).collect();
    match client.batch(&ops) {
        Ok(values) => {
            shared
                .ops_served
                .fetch_add(ops.len() as u64, Ordering::Relaxed);
            for (&(id, _), value) in run.iter().zip(values) {
                encode_response(out, id, &Response::Value(value));
            }
        }
        // Validation fails the batch up front and divergence poisons
        // the whole shard set, so every request in the run gets the
        // error it would have hit alone.
        Err(e) => {
            let resp = error_response(&e);
            for &(id, _) in run.iter() {
                encode_response(out, id, &resp);
            }
        }
    }
    run.clear();
}

fn stats(shared: &Shared) -> StatsReply {
    let store = &shared.store;
    StatsReply {
        shards: store.shards() as u32,
        active_connections: shared.active.load(Ordering::SeqCst),
        diverged: (0..store.shards()).any(|s| store.shard_log(s).divergence_detected()),
        ops_served: shared.ops_served.load(Ordering::Relaxed),
    }
}

/// Map a [`StoreError`] onto a wire error frame; the `detail` word
/// carries the machine-readable part (shard, key, value).
fn error_response(e: &StoreError) -> Response {
    let (code, detail) = match *e {
        StoreError::Divergence { shard } => (ErrorCode::Divergence, shard as u32),
        StoreError::KeyOutOfRange { key } => (ErrorCode::KeyOutOfRange, key),
        StoreError::ValueOutOfRange { value } => (ErrorCode::ValueOutOfRange, value),
        StoreError::Io(_) | StoreError::Protocol(_) | StoreError::Server { .. } => {
            (ErrorCode::Internal, 0)
        }
    };
    Response::Error {
        code,
        detail,
        message: e.to_string(),
    }
}
