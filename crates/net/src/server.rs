//! The ff-store TCP service: a std-only, readiness-driven reactor.
//!
//! # Threading model
//!
//! One **accept thread** polls a nonblocking listener (~5 ms tick) and
//! hash-pins each accepted connection to one of N **event loops** (one
//! worker thread each, [`ServerConfig::loops`]). Every socket is
//! nonblocking; a loop multiplexes all of its connections through the
//! [`poll`](crate::poll) abstraction, so ten thousand mostly-idle
//! connections cost ten thousand readiness probes per tick — not ten
//! thousand parked threads. No async runtime: the repo's point is the
//! consensus construction, and `std::net` plus a handful of threads
//! keeps the service layer auditable.
//!
//! # Replica leases
//!
//! The old thread-per-connection server gave every connection a
//! private [`StoreClient`] — a full replica set whose apply cost grows
//! with the number of replicas, and whose 10-bit pid space caps out at
//! 1023 clients. The reactor makes that a **lease**: the first
//! [`ServerConfig::replica_budget`] connections get an exclusive
//! client (preserving the old semantics for small fleets, and the
//! graveyard the shutdown tests verify), and connections beyond the
//! budget share one lazily-minted **combiner** client per loop. Either
//! way every replica that served traffic retires into the graveyard
//! for [`Store::verify`].
//!
//! # Pipelining and cross-connection batching
//!
//! A client may write any number of request frames before reading.
//! Each loop tick reads every readable connection, decodes frames in
//! place (zero-copy [`peek_frame`](crate::wire::FrameBuffer::peek_frame)),
//! and merges **all** valid GET/PUT/DEL and BATCH operations from
//! **all** connections into one [`Kv::batch`](ff_store::Kv::batch)
//! call — one log pass per touched shard per tick, across clients.
//! This generalizes the old server's per-connection burst coalescing:
//! under high connection counts the store sees a few large batches
//! instead of thousands of tiny ones. Responses are answered under the
//! right request ids, in per-connection request order.
//!
//! # Backpressure
//!
//! * **Connection cap** — beyond [`ServerConfig::max_connections`],
//!   new connections get one `Overloaded` error frame and are closed.
//! * **Write pause** — a connection whose response buffer exceeds
//!   256 KiB stops being read (and served) until the peer drains it; a
//!   peer that stays blocked past [`ServerConfig::write_timeout`] is
//!   disconnected. One slow reader cannot pin server memory.
//! * **Bounded frames** — the decoder rejects frames over
//!   [`MAX_FRAME_LEN`](crate::wire::MAX_FRAME_LEN) before buffering.
//!
//! # Graceful shutdown
//!
//! [`NetServer::shutdown`] (or the idempotent
//! [`NetServer::begin_shutdown`]) flips a flag; each loop notices
//! within one poll tick, stops reading, serves the complete frames it
//! had already buffered (in-flight requests drain rather than vanish),
//! flushes within the write timeout, and retires every leased replica
//! into the graveyard. The returned [`ServerReport`] hands those
//! clients back so a harness can run [`Store::verify`] over *exactly*
//! the replicas that served traffic. Nothing on the shutdown path
//! panics: thread failures surface as typed [`ShutdownError`]s in the
//! report.

use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ff_store::{Store, StoreClient};
use parking_lot::Mutex;

use crate::reactor::{self, LoopShared};
use crate::wire::{encode_response, ErrorCode, Response, StatsReply};

/// Tuning for a [`NetServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections beyond this are refused with `Overloaded`.
    pub max_connections: usize,
    /// Upper bound on how long a quiet loop sleeps between readiness
    /// scans; bounds shutdown-notice latency. (The name predates the
    /// reactor: sockets are nonblocking now, nothing blocks in `read`.)
    pub read_timeout: Duration,
    /// Per-connection write stall bound — the backpressure limit on a
    /// peer that stops draining responses, and the drain deadline at
    /// shutdown.
    pub write_timeout: Duration,
    /// Event loops (worker threads). `0` means auto: one per available
    /// core, clamped to at most 8.
    pub loops: usize,
    /// How many connections get an **exclusive** [`StoreClient`]
    /// replica before later ones share a per-loop combiner client.
    /// The default keeps the old one-replica-per-connection semantics
    /// for small fleets; benches scaling to thousands of connections
    /// set it to 0 so apply cost stays flat.
    pub replica_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            loops: 0,
            replica_budget: 64,
        }
    }
}

/// Why part of a shutdown was not clean. Carried in
/// [`ServerReport::shutdown_errors`] instead of panicking the caller —
/// a crash-shaped exit of one worker must not abort the process that
/// is trying to verify what that worker served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShutdownError {
    /// The accept thread panicked; its panic payload is lost but every
    /// connection it had already pinned to a loop still drains.
    AcceptorPanicked,
    /// Event loop `index` panicked; its connections' replicas may be
    /// missing from the graveyard.
    LoopPanicked {
        /// Which loop died.
        index: usize,
    },
    /// The store's write-ahead log latched an I/O failure at some point
    /// — what this server served after that moment was never durable.
    Durability {
        /// The latched first failure.
        error: ff_store::WalIoError,
    },
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShutdownError::AcceptorPanicked => write!(f, "accept thread panicked"),
            ShutdownError::LoopPanicked { index } => write!(f, "event loop {index} panicked"),
            ShutdownError::Durability { error } => {
                write!(f, "write-ahead log failed mid-serve: {error}")
            }
        }
    }
}

impl std::error::Error for ShutdownError {}

pub(crate) struct Shared {
    pub(crate) store: Arc<Store>,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicU32,
    pub(crate) ops_served: AtomicU64,
    /// Merged runs executed across all loops (serve passes with ops).
    pub(crate) runs_executed: AtomicU64,
    /// Operations that went through merged runs.
    pub(crate) run_ops: AtomicU64,
    /// Largest single merged run any loop executed.
    pub(crate) max_run_ops: AtomicU32,
    /// Request frames staged for a response across all serve passes.
    pub(crate) frames_staged: AtomicU64,
    /// Exclusive replica leases currently held by live connections;
    /// bounded by `config.replica_budget`.
    pub(crate) exclusive_leases: AtomicUsize,
    /// Clients of finished connections, kept for post-shutdown
    /// verification.
    pub(crate) retired: Mutex<Vec<StoreClient>>,
    /// One inbox per event loop; the acceptor pins connections here.
    pub(crate) loops: Vec<LoopShared>,
}

/// A running ff-store TCP server. Dropping it without calling
/// [`NetServer::shutdown`] signals shutdown but detaches the threads;
/// call [`NetServer::shutdown`] to join them and collect the report.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// What a drained server hands back.
pub struct ServerReport {
    /// Every replica client that served traffic — per-connection
    /// exclusives and per-loop combiners alike, each caught up on what
    /// it executed — feed them to [`Store::verify`].
    pub clients: Vec<StoreClient>,
    /// Requests served over the server's lifetime.
    pub ops_served: u64,
    /// Anything unclean about the shutdown itself. Empty on the happy
    /// path; never a panic.
    pub shutdown_errors: Vec<ShutdownError>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `store`.
    pub fn start<A: ToSocketAddrs>(
        store: Arc<Store>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let nloops = effective_loops(&config);
        let shared = Arc::new(Shared {
            store,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicU32::new(0),
            ops_served: AtomicU64::new(0),
            runs_executed: AtomicU64::new(0),
            run_ops: AtomicU64::new(0),
            max_run_ops: AtomicU32::new(0),
            frames_staged: AtomicU64::new(0),
            exclusive_leases: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
            loops: (0..nloops).map(|_| LoopShared::default()).collect(),
        });
        let workers = (0..nloops)
            .map(|index| {
                let loop_shared = Arc::clone(&shared);
                std::thread::spawn(move || reactor::event_loop(loop_shared, index))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServer {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u32 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Signal shutdown without joining: idempotent and non-consuming.
    /// Returns `true` the first time, `false` on every repeat — a
    /// doubly-signaled shutdown is a no-op, not a panic.
    pub fn begin_shutdown(&self) -> bool {
        !self.shared.shutdown.swap(true, Ordering::SeqCst)
    }

    /// Stop accepting, drain in-flight requests, join every thread and
    /// hand back the retired clients. Never panics: a worker that died
    /// is reported as a [`ShutdownError`] in the report.
    pub fn shutdown(mut self) -> ServerReport {
        self.begin_shutdown();
        let mut shutdown_errors = Vec::new();
        if let Some(accept) = self.accept.take() {
            if accept.join().is_err() {
                shutdown_errors.push(ShutdownError::AcceptorPanicked);
            }
        }
        for (index, worker) in self.workers.drain(..).enumerate() {
            if worker.join().is_err() {
                shutdown_errors.push(ShutdownError::LoopPanicked { index });
            }
        }
        // The acceptor may have pinned a last connection after its
        // loop already drained; with every thread joined, closing the
        // stragglers is race-free.
        for l in &self.shared.loops {
            l.inbox.lock().clear();
        }
        // With every worker joined no more slots will be decided: push
        // the group-commit remainder to disk, and refuse to call the
        // shutdown clean if the WAL latched an I/O failure — what was
        // served after that moment was never durable.
        self.shared.store.flush_wal();
        if let Some(error) = self.shared.store.durability_error() {
            shutdown_errors.push(ShutdownError::Durability { error });
        }
        let clients = std::mem::take(&mut *self.shared.retired.lock());
        ServerReport {
            clients,
            ops_served: self.shared.ops_served.load(Ordering::SeqCst),
            shutdown_errors,
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Signal-only: threads notice within a tick and drain. Joining
        // here would turn a leaked server into a hang.
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

fn effective_loops(config: &ServerConfig) -> usize {
    if config.loops > 0 {
        return config.loops;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// SplitMix64: decorrelates the accept counter so connection pinning
/// spreads over the loops even under striped arrival patterns.
fn pin_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut counter: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    refuse(
                        stream,
                        &shared,
                        ErrorCode::ShuttingDown,
                        "server shutting down",
                    );
                    return;
                }
                if shared.active.load(Ordering::SeqCst) as usize >= shared.config.max_connections {
                    refuse(
                        stream,
                        &shared,
                        ErrorCode::Overloaded,
                        "connection limit reached",
                    );
                    continue;
                }
                // A blocking socket in a readiness loop would wedge
                // every connection pinned to that loop: if the switch
                // to nonblocking fails, refuse loudly instead of
                // serving wrong.
                if let Err(e) = stream.set_nonblocking(true) {
                    eprintln!(
                        "ff-net: refusing connection from {peer}: set_nonblocking failed: {e}"
                    );
                    refuse(stream, &shared, ErrorCode::Internal, "socket setup failed");
                    continue;
                }
                // Nagle is a latency tune, not a correctness knob —
                // keep the connection but say what happened.
                if let Err(e) = stream.set_nodelay(true) {
                    eprintln!("ff-net: set_nodelay failed for {peer} (serving anyway): {e}");
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                let index = (pin_hash(counter) % shared.loops.len() as u64) as usize;
                counter = counter.wrapping_add(1);
                shared.loops[index].inbox.lock().push(stream);
            }
            // Nonblocking accept: nobody waiting — poll again shortly.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Tell the refused peer why before closing, on the (still blocking)
/// just-accepted socket.
fn refuse(mut stream: TcpStream, shared: &Shared, code: ErrorCode, message: &str) {
    if let Err(e) = stream.set_write_timeout(Some(shared.config.write_timeout)) {
        // Without a bound, a hostile peer could park the acceptor in
        // this write forever. Close frameless rather than risk it.
        eprintln!(
            "ff-net: closing refused connection without a frame: set_write_timeout failed: {e}"
        );
        return;
    }
    let mut out = Vec::new();
    encode_response(
        &mut out,
        0,
        &Response::Error {
            code,
            detail: 0,
            message: message.to_string(),
        },
    );
    // Best-effort by design: the peer may already be gone, and the
    // close itself carries the refusal.
    let _ = stream.write_all(&out);
}

pub(crate) fn stats(shared: &Shared) -> StatsReply {
    let store = &shared.store;
    let combine = store.combine_snapshot();
    let durability = store.durability_snapshot();
    StatsReply {
        shards: store.shards() as u32,
        active_connections: shared.active.load(Ordering::SeqCst),
        diverged: (0..store.shards()).any(|s| store.shard_log(s).divergence_detected()),
        ops_served: shared.ops_served.load(Ordering::Relaxed),
        runs_executed: shared.runs_executed.load(Ordering::Relaxed),
        run_ops: shared.run_ops.load(Ordering::Relaxed),
        max_run_ops: shared.max_run_ops.load(Ordering::Relaxed),
        frames_staged: shared.frames_staged.load(Ordering::Relaxed),
        combine_passes: combine.as_ref().map_or(0, |c| c.passes),
        combine_ops: combine.as_ref().map_or(0, |c| c.combined_ops),
        wal_records: durability.as_ref().map_or(0, |d| d.records_logged),
        wal_fsyncs: durability.as_ref().map_or(0, |d| d.fsyncs),
        recovered_records: durability.as_ref().map_or(0, |d| d.records_replayed),
        recovered_checkpoints: durability.as_ref().map_or(0, |d| d.checkpoints_loaded),
    }
}
