//! Readiness polling without `unsafe`: the reactor's poll abstraction.
//!
//! The event loops need one question answered per tick — *which of
//! these nonblocking sockets has bytes to read?* — without an async
//! runtime and without FFI (`ff-net` forbids `unsafe`, so `epoll`/
//! `kqueue` are out of reach). [`ScanPoller`] answers it with the one
//! readiness probe `std` exposes: [`TcpStream::peek`] on a nonblocking
//! socket returns `WouldBlock` when the receive queue is empty and
//! `Ok` (including `Ok(0)` at EOF) when a read would make progress.
//! The scan is O(connections) per tick, like classic `poll(2)` — the
//! trade the repo makes everywhere: auditable std-only code over the
//! last constant factor.
//!
//! Write readiness is **not probed**. The reactor uses an
//! attempted-write model: it simply writes and treats `WouldBlock` as
//! "not writable yet". The poller's only job for writers is pacing —
//! when a tick has pending writes but nothing readable, it returns
//! after a short bounded sleep instead of the full idle timeout, so
//! blocked writes are retried on a ~1 ms cadence rather than spun on.
//!
//! Idle pacing is adaptive: consecutive all-quiet scans back off
//! exponentially (100 µs doubling up to the caller's timeout), and any
//! readable source resets the backoff to zero. Busy loops never sleep;
//! idle loops cost a scan every few milliseconds.

use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What a connection wants to be woken for this tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Interest {
    /// The connection can accept inbound bytes.
    pub read: bool,
    /// The connection has buffered response bytes waiting to flush.
    pub write: bool,
}

/// One pollable socket with its interest set.
pub(crate) struct PollSource<'a> {
    /// The nonblocking stream to probe.
    pub stream: &'a TcpStream,
    /// What to probe it for.
    pub interest: Interest,
}

/// Per-source readiness verdict filled in by [`Poller::poll`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Readiness {
    /// A read would make progress (data buffered, EOF, or a pending
    /// socket error to surface).
    pub readable: bool,
    /// A write should be attempted. Under the attempted-write model
    /// this is advisory: the write itself is the real probe.
    pub writable: bool,
}

/// The small poll abstraction the reactor runs on. One implementation
/// today ([`ScanPoller`]); the seam exists so an `epoll`-backed poller
/// could slot in if the no-`unsafe` constraint is ever lifted.
pub(crate) trait Poller {
    /// Fill `out[i]` with the readiness of `sources[i]`, waiting up to
    /// `timeout` when nothing is ready. Returns how many sources are
    /// ready. `out` must be at least as long as `sources`.
    fn poll(
        &mut self,
        sources: &[PollSource<'_>],
        out: &mut [Readiness],
        timeout: Duration,
    ) -> usize;
}

/// Smallest idle sleep; doubles per all-quiet scan.
const MIN_BACKOFF: Duration = Duration::from_micros(100);
/// Retry cadence for blocked writes: don't sleep longer than this when
/// a connection has bytes waiting to flush.
const WRITE_RETRY: Duration = Duration::from_millis(1);

/// The std-only poller: one `peek` syscall per read-interested source
/// per scan, adaptive backoff between all-quiet scans.
pub(crate) struct ScanPoller {
    backoff: Duration,
}

impl ScanPoller {
    /// A fresh poller with its backoff reset.
    pub fn new() -> ScanPoller {
        ScanPoller {
            backoff: Duration::ZERO,
        }
    }

    /// Probe one stream for read readiness without consuming bytes.
    fn read_ready(stream: &TcpStream) -> bool {
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            // Data waiting — or Ok(0): the peer closed and a read will
            // observe EOF. Both mean "reading makes progress".
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
            // A pending socket error (reset, aborted): readable so the
            // read path surfaces it and the connection is reaped.
            Err(_) => true,
        }
    }

    /// One pass over the sources. Returns the number readable.
    fn scan(sources: &[PollSource<'_>], out: &mut [Readiness]) -> usize {
        let mut ready = 0;
        for (src, slot) in sources.iter().zip(out.iter_mut()) {
            let readable = src.interest.read && Self::read_ready(src.stream);
            *slot = Readiness {
                readable,
                writable: src.interest.write,
            };
            if readable {
                ready += 1;
            }
        }
        ready
    }
}

impl Poller for ScanPoller {
    fn poll(
        &mut self,
        sources: &[PollSource<'_>],
        out: &mut [Readiness],
        timeout: Duration,
    ) -> usize {
        // Pending writes bound the wait: the write attempt is the real
        // readiness probe, so retry it on a short cadence.
        let has_writer = sources.iter().any(|s| s.interest.write);
        let budget = if has_writer {
            timeout.min(WRITE_RETRY)
        } else {
            timeout
        };
        let deadline = Instant::now() + budget;
        loop {
            let ready = Self::scan(sources, out);
            if ready > 0 {
                self.backoff = Duration::ZERO;
                return ready;
            }
            let now = Instant::now();
            if now >= deadline {
                // Report advisory writability even on an all-quiet
                // scan so the reactor retries its blocked writes.
                return out.iter().filter(|r| r.writable).count();
            }
            self.backoff = self.backoff.max(MIN_BACKOFF).saturating_mul(2).min(budget);
            std::thread::sleep(self.backoff.min(deadline - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        (served, peer)
    }

    #[test]
    fn quiet_socket_is_not_readable_and_data_makes_it_readable() {
        let (served, mut peer) = pair();
        let mut poller = ScanPoller::new();
        let sources = [PollSource {
            stream: &served,
            interest: Interest {
                read: true,
                write: false,
            },
        }];
        let mut out = [Readiness::default()];
        assert_eq!(poller.poll(&sources, &mut out, Duration::ZERO), 0);
        assert!(!out[0].readable);

        peer.write_all(b"x").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if poller.poll(&sources, &mut out, Duration::from_millis(5)) > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "delivered byte never readable");
        }
        assert!(out[0].readable);
    }

    #[test]
    fn eof_and_write_interest_both_wake_the_poller() {
        let (served, peer) = pair();
        drop(peer);
        let mut poller = ScanPoller::new();
        let mut out = [Readiness::default()];
        // EOF counts as readable: the read observes the close.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let sources = [PollSource {
                stream: &served,
                interest: Interest {
                    read: true,
                    write: false,
                },
            }];
            if poller.poll(&sources, &mut out, Duration::from_millis(5)) > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "EOF never became readable");
        }
        assert!(out[0].readable);

        // Write interest alone returns promptly (advisory writable),
        // bounding the blocked-write retry cadence.
        let sources = [PollSource {
            stream: &served,
            interest: Interest {
                read: false,
                write: true,
            },
        }];
        let start = Instant::now();
        let ready = poller.poll(&sources, &mut out, Duration::from_millis(50));
        assert_eq!(ready, 1);
        assert!(out[0].writable && !out[0].readable);
        assert!(start.elapsed() < Duration::from_millis(40));
    }
}
