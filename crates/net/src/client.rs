//! [`NetClient`]: the TCP implementation of [`Kv`].
//!
//! One client ↔ one connection ↔ one server-side [`StoreClient`]
//! replica set. The client speaks the `wire` protocol, matches
//! responses to requests by id, and maps wire error frames back onto
//! the same [`StoreError`] values the in-process client produces — so
//! a workload written against [`Kv`] cannot tell the transports apart
//! except by latency.
//!
//! Beyond the trait, [`NetClient::pipeline`] exposes raw pipelining:
//! write N request frames in one syscall, then collect the N in-order
//! responses. [`Kv::batch`] instead sends one BATCH frame, which the
//! server executes as one log pass per touched shard; both cost a
//! single round trip, but BATCH also coalesces consensus work.
//!
//! `pipeline` is itself built from the split halves
//! [`NetClient::send`] / [`NetClient::collect`]: `send` writes the
//! frames and returns a [`PipelineTicket`], `collect` redeems it for
//! the responses. The split lets a driver thread keep one batch in
//! flight on each of *many* connections — send on all, then collect
//! on all — which is how the bench harness loads a reactor with
//! thousands of connections from a handful of threads.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ff_store::{Kv, KvOp, StoreError};

use crate::wire::{encode_request, ErrorCode, FrameBuffer, Request, Response, StatsReply};

/// A pipelining TCP client for a [`NetServer`](crate::NetServer).
pub struct NetClient {
    stream: TcpStream,
    fb: FrameBuffer,
    next_id: u32,
    /// Encode scratch reused across sends.
    obuf: Vec<u8>,
}

/// A receipt for request frames written by [`NetClient::send`] but not
/// yet answered. Redeem it with [`NetClient::collect`]. Tickets must
/// be collected in the order they were issued — the server answers in
/// request order.
#[must_use = "uncollected pipelined requests leave responses on the socket"]
pub struct PipelineTicket {
    first: u32,
    count: usize,
}

impl PipelineTicket {
    /// How many responses this ticket will redeem.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the ticket covers no requests at all.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

impl NetClient {
    /// Connect with a 10 s read/write timeout (a server that stops
    /// answering surfaces as [`StoreError::Io`], not a hang).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, StoreError> {
        NetClient::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read/write timeout.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<NetClient, StoreError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
        Ok(NetClient {
            stream,
            fb: FrameBuffer::new(),
            next_id: 1,
            obuf: Vec::new(),
        })
    }

    /// Send every request in one write, then read the responses in
    /// order. The server answers in request order, so a mismatched id
    /// is a protocol violation, not a reordering to tolerate.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, StoreError> {
        let ticket = self.send(reqs)?;
        self.collect(ticket)
    }

    /// Write `reqs` as one burst of frames without waiting for the
    /// answers. Redeem the returned ticket with
    /// [`NetClient::collect`]; multiple tickets may be outstanding but
    /// must be collected in issue order.
    pub fn send(&mut self, reqs: &[Request]) -> Result<PipelineTicket, StoreError> {
        // Ids must never collide with 0 (reserved for connection-level
        // errors); restart the sequence rather than wrap into it.
        if u32::MAX - self.next_id < reqs.len() as u32 {
            self.next_id = 1;
        }
        let first = self.next_id;
        self.obuf.clear();
        for req in reqs {
            encode_request(&mut self.obuf, self.next_id, req);
            self.next_id = self.next_id.wrapping_add(1);
        }
        self.stream.write_all(&self.obuf).map_err(io_err)?;
        Ok(PipelineTicket {
            first,
            count: reqs.len(),
        })
    }

    /// Read the in-order responses to a previously [`send`]-written
    /// burst.
    ///
    /// [`send`]: NetClient::send
    pub fn collect(&mut self, ticket: PipelineTicket) -> Result<Vec<Response>, StoreError> {
        let mut resps = Vec::with_capacity(ticket.count);
        for i in 0..ticket.count {
            let frame = self.read_frame()?;
            let want = ticket.first.wrapping_add(i as u32);
            if frame.id != want {
                // Id 0 is reserved for connection-level errors the
                // server sends unprompted (overloaded, shutting down,
                // unrecoverable framing) before closing.
                if frame.id == 0 {
                    if let Response::Error { .. } = frame.resp {
                        return Err(response_error(frame.resp));
                    }
                }
                return Err(StoreError::Protocol(format!(
                    "response id {} where {} was expected",
                    frame.id, want
                )));
            }
            resps.push(frame.resp);
        }
        Ok(resps)
    }

    fn read_frame(&mut self) -> Result<crate::wire::ResponseFrame, StoreError> {
        loop {
            if let Some(frame) = self
                .fb
                .pop_response()
                .map_err(|e| StoreError::Protocol(e.to_string()))?
            {
                return Ok(frame);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(StoreError::Io("connection closed by server".to_string())),
                Ok(n) => self.fb.extend(&chunk[..n]),
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    fn roundtrip(&mut self, req: Request) -> Result<Response, StoreError> {
        let mut resps = self.pipeline(std::slice::from_ref(&req))?;
        Ok(resps
            .pop()
            .expect("pipeline returns one response per request"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), StoreError> {
        match self.roundtrip(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(response_error(other)),
        }
    }

    /// Fetch server-side counters.
    pub fn stats(&mut self) -> Result<StatsReply, StoreError> {
        match self.roundtrip(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(response_error(other)),
        }
    }

    fn value_of(&mut self, req: Request) -> Result<Option<u32>, StoreError> {
        match self.roundtrip(req)? {
            Response::Value(v) => Ok(v),
            other => Err(response_error(other)),
        }
    }
}

/// An error frame maps back onto the [`StoreError`] the in-process
/// client would have returned; anything else is a protocol violation.
///
/// Public so drivers built directly on [`NetClient::send`] /
/// [`NetClient::collect`] (the bench harness) share the client's exact
/// error semantics instead of re-deriving the code → error mapping.
pub fn response_error(resp: Response) -> StoreError {
    match resp {
        Response::Error {
            code,
            detail,
            message,
        } => match code {
            ErrorCode::Divergence => StoreError::Divergence {
                shard: detail as usize,
            },
            ErrorCode::KeyOutOfRange => StoreError::KeyOutOfRange { key: detail },
            ErrorCode::ValueOutOfRange => StoreError::ValueOutOfRange { value: detail },
            other => StoreError::Server {
                code: other as u8,
                message,
            },
        },
        other => StoreError::Protocol(format!("unexpected response {other:?}")),
    }
}

impl Kv for NetClient {
    fn get(&mut self, key: u32) -> Result<Option<u32>, StoreError> {
        self.value_of(Request::Get { key })
    }

    fn put(&mut self, key: u32, value: u32) -> Result<Option<u32>, StoreError> {
        self.value_of(Request::Put { key, value })
    }

    fn del(&mut self, key: u32) -> Result<Option<u32>, StoreError> {
        self.value_of(Request::Del { key })
    }

    fn batch(&mut self, ops: &[KvOp]) -> Result<Vec<Option<u32>>, StoreError> {
        match self.roundtrip(Request::Batch(ops.to_vec()))? {
            Response::Batch(values) => {
                if values.len() != ops.len() {
                    return Err(StoreError::Protocol(format!(
                        "batch of {} ops answered with {} values",
                        ops.len(),
                        values.len()
                    )));
                }
                Ok(values)
            }
            other => Err(response_error(other)),
        }
    }
}
