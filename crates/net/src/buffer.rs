//! Pooled per-connection buffers for the reactor.
//!
//! Every connection owns a read-side [`FrameBuffer`] and a write-side
//! `Vec<u8>`. At thread-per-connection scale that allocation churn is
//! invisible; at reactor scale (thousands of short-lived connections
//! hash-pinned to a handful of loops) it is worth recycling. Each
//! event loop owns one [`BufferPool`] — single-threaded, no locks —
//! and connections check buffers out on admit and back in on reap.
//!
//! The pool is deliberately bounded on both axes: it keeps at most
//! [`POOL_CAP`] buffers of each kind, and refuses to retain a buffer
//! whose capacity grew past [`RETAIN_CAP`] (one oversized response
//! burst must not pin megabytes for the rest of the process).

use crate::wire::FrameBuffer;

/// Most buffers of each kind a pool retains.
const POOL_CAP: usize = 64;
/// Largest capacity worth keeping; bigger buffers are dropped.
const RETAIN_CAP: usize = 256 * 1024;

/// A single-threaded recycler for connection buffers. One per event
/// loop.
pub(crate) struct BufferPool {
    read: Vec<FrameBuffer>,
    write: Vec<Vec<u8>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool {
            read: Vec::new(),
            write: Vec::new(),
        }
    }

    /// A cleared read-side frame buffer, recycled if one is banked.
    pub fn take_read(&mut self) -> FrameBuffer {
        self.read.pop().unwrap_or_default()
    }

    /// A cleared write-side byte buffer, recycled if one is banked.
    pub fn take_write(&mut self) -> Vec<u8> {
        self.write.pop().unwrap_or_default()
    }

    /// Bank a finished connection's frame buffer for reuse.
    pub fn put_read(&mut self, mut fb: FrameBuffer) {
        if self.read.len() < POOL_CAP && fb.capacity() <= RETAIN_CAP {
            fb.reset();
            self.read.push(fb);
        }
    }

    /// Bank a finished connection's write buffer for reuse.
    pub fn put_write(&mut self, mut buf: Vec<u8>) {
        if self.write.len() < POOL_CAP && buf.capacity() <= RETAIN_CAP {
            buf.clear();
            self.write.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_cleared_and_bounded() {
        let mut pool = BufferPool::new();
        let mut fb = pool.take_read();
        fb.extend(&[1, 2, 3]);
        let read_cap = fb.capacity();
        pool.put_read(fb);
        let recycled = pool.take_read();
        assert_eq!(recycled.pending(), 0, "banked buffers come back empty");
        assert_eq!(recycled.capacity(), read_cap, "allocation is reused");

        let mut w = pool.take_write();
        w.extend_from_slice(b"response bytes");
        let write_cap = w.capacity();
        pool.put_write(w);
        let w = pool.take_write();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), write_cap);

        // Oversized buffers are dropped, not hoarded.
        pool.put_write(Vec::with_capacity(RETAIN_CAP + 1));
        assert_eq!(pool.take_write().capacity(), 0);

        // The pool depth is bounded.
        for _ in 0..POOL_CAP + 8 {
            pool.put_write(Vec::with_capacity(16));
        }
        assert_eq!(pool.write.len(), POOL_CAP);
    }
}
