//! The CAS object abstractions the native (thread-based) protocols run on.
//!
//! The paper's CAS *objects* expose a single operation — `CAS(exp, new)`,
//! returning the old content — and in particular no read (Section 3.3).
//! [`CasCell`] is one such object; [`CasEnsemble`] is the indexed
//! collection `O_0 … O_{k-1}` a construction is built from, sharing one
//! fault budget across objects as Definition 3 prescribes.

use ff_spec::{ObjectId, Word};
use std::sync::Arc;

/// A single CAS object: one atomic word supporting only compare-and-swap.
pub trait CasCell: Send + Sync {
    /// `old ← CAS(self, exp, new)`: atomically compare the content to
    /// `exp` and, on a match, replace it with `new`. Returns the previous
    /// content either way.
    ///
    /// Implementations may inject functional faults at the linearization
    /// point; the returned `old` remains the true previous content except
    /// under an invisible fault.
    fn cas(&self, exp: Word, new: Word) -> Word;
}

/// An indexed collection of CAS objects sharing a fault environment.
pub trait CasEnsemble: Send + Sync {
    /// Number of CAS objects.
    fn len(&self) -> usize;

    /// `true` iff the ensemble has no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute `old ← CAS(O_obj, exp, new)`.
    fn cas(&self, obj: ObjectId, exp: Word, new: Word) -> Word;
}

/// A [`CasCell`] view of one object of a shared ensemble.
#[derive(Clone)]
pub struct EnsembleCell<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    obj: ObjectId,
}

impl<E: CasEnsemble + ?Sized> EnsembleCell<E> {
    /// Bind object `obj` of `ensemble`.
    pub fn new(ensemble: Arc<E>, obj: ObjectId) -> Self {
        assert!(obj.0 < ensemble.len(), "object {obj} out of range");
        EnsembleCell { ensemble, obj }
    }

    /// The bound object id.
    pub fn object(&self) -> ObjectId {
        self.obj
    }
}

impl<E: CasEnsemble + ?Sized> CasCell for EnsembleCell<E> {
    fn cas(&self, exp: Word, new: Word) -> Word {
        self.ensemble.cas(self.obj, exp, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicCasArray;
    use ff_spec::BOTTOM;

    #[test]
    fn ensemble_cell_binds_one_object() {
        let ensemble = Arc::new(AtomicCasArray::new(2));
        let c0 = EnsembleCell::new(Arc::clone(&ensemble), ObjectId(0));
        let c1 = EnsembleCell::new(Arc::clone(&ensemble), ObjectId(1));
        assert_eq!(c0.object(), ObjectId(0));
        assert_eq!(c0.cas(BOTTOM, 5), BOTTOM);
        assert_eq!(c1.cas(BOTTOM, 9), BOTTOM, "c1 is a different object");
        assert_eq!(c0.cas(BOTTOM, 7), 5, "c0 kept its content");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_binding_panics() {
        let ensemble = Arc::new(AtomicCasArray::new(1));
        let _ = EnsembleCell::new(ensemble, ObjectId(1));
    }

    #[test]
    fn is_empty_default() {
        let ensemble = AtomicCasArray::new(0);
        assert!(ensemble.is_empty());
        let ensemble = AtomicCasArray::new(1);
        assert!(!ensemble.is_empty());
    }
}
