//! Thread-safe `(f, t)` fault accounting for native executions.
//!
//! The faulty set (at most `f` objects) is fixed when the ensemble is
//! built — matching Definition 2, under which an object is "faulty" for a
//! whole execution. Each faulty object carries an atomic countdown of `t`
//! remaining faults (or an unbounded marker). Reservation is optimistic:
//! an injector *reserves* a fault before the operation and *refunds* it if
//! the operation turned out indistinguishable from a correct one (e.g. an
//! overriding write whose comparison matched anyway). The budget is thus
//! never exceeded, at the cost of occasionally under-faulting during a
//! reservation window — the conservative direction for validating the
//! paper's tolerance claims.

use ff_spec::{Bound, ObjectId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel stored in the countdown for unbounded budgets.
const UNBOUNDED: u64 = u64::MAX;

/// Thread-safe per-object fault countdowns.
#[derive(Debug)]
pub struct NativeBudget {
    faulty: Vec<bool>,
    remaining: Vec<AtomicU64>,
}

impl NativeBudget {
    /// Budget over `num_objects` objects, where `faulty_set` may fault at
    /// most `per_object` times each.
    pub fn new(num_objects: usize, faulty_set: &[ObjectId], per_object: Bound) -> Self {
        let mut faulty = vec![false; num_objects];
        let remaining: Vec<AtomicU64> = (0..num_objects).map(|_| AtomicU64::new(0)).collect();
        for &obj in faulty_set {
            assert!(
                obj.0 < num_objects,
                "faulty set names object {obj} but the ensemble has {num_objects} objects"
            );
            faulty[obj.0] = true;
            remaining[obj.0].store(
                match per_object {
                    Bound::Finite(t) => {
                        assert!(t < UNBOUNDED, "finite budget too large");
                        t
                    }
                    Bound::Unbounded => UNBOUNDED,
                },
                Ordering::Relaxed,
            );
        }
        NativeBudget { faulty, remaining }
    }

    /// Is `obj` in the faulty set at all?
    pub fn is_faulty_object(&self, obj: ObjectId) -> bool {
        self.faulty[obj.0]
    }

    /// Try to reserve one fault on `obj`. Returns `true` on success; the
    /// caller must either commit the fault or [`NativeBudget::refund`] it.
    pub fn try_reserve(&self, obj: ObjectId) -> bool {
        if !self.faulty[obj.0] {
            return false;
        }
        self.remaining[obj.0]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| match cur {
                0 => None,
                UNBOUNDED => Some(UNBOUNDED),
                k => Some(k - 1),
            })
            .is_ok()
    }

    /// Return a reserved-but-unused fault to the pool.
    pub fn refund(&self, obj: ObjectId) {
        let cell = &self.remaining[obj.0];
        let _ = cell.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| match cur {
            UNBOUNDED => Some(UNBOUNDED),
            k => Some(k + 1),
        });
    }

    /// Remaining faults on `obj` (`None` = unbounded).
    pub fn remaining(&self, obj: ObjectId) -> Option<u64> {
        match self.remaining[obj.0].load(Ordering::Acquire) {
            UNBOUNDED => None,
            k => Some(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reserve_until_exhausted() {
        let b = NativeBudget::new(2, &[ObjectId(0)], Bound::Finite(2));
        assert!(b.is_faulty_object(ObjectId(0)));
        assert!(!b.is_faulty_object(ObjectId(1)));
        assert!(b.try_reserve(ObjectId(0)));
        assert!(b.try_reserve(ObjectId(0)));
        assert!(!b.try_reserve(ObjectId(0)));
        assert_eq!(b.remaining(ObjectId(0)), Some(0));
        assert!(
            !b.try_reserve(ObjectId(1)),
            "non-faulty object never faults"
        );
    }

    #[test]
    fn refund_restores_budget() {
        let b = NativeBudget::new(1, &[ObjectId(0)], Bound::Finite(1));
        assert!(b.try_reserve(ObjectId(0)));
        assert!(!b.try_reserve(ObjectId(0)));
        b.refund(ObjectId(0));
        assert!(b.try_reserve(ObjectId(0)));
    }

    #[test]
    fn unbounded_budget() {
        let b = NativeBudget::new(1, &[ObjectId(0)], Bound::Unbounded);
        for _ in 0..1000 {
            assert!(b.try_reserve(ObjectId(0)));
        }
        assert_eq!(b.remaining(ObjectId(0)), None);
        b.refund(ObjectId(0));
        assert_eq!(b.remaining(ObjectId(0)), None, "refund keeps ∞ at ∞");
    }

    #[test]
    #[should_panic(expected = "ensemble has")]
    fn out_of_range_faulty_set_panics() {
        NativeBudget::new(1, &[ObjectId(1)], Bound::Finite(1));
    }

    #[test]
    fn concurrent_reservations_never_exceed_t() {
        let t = 64u64;
        let b = Arc::new(NativeBudget::new(1, &[ObjectId(0)], Bound::Finite(t)));
        let granted: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let mut got = 0u64;
                        for _ in 0..100 {
                            if b.try_reserve(ObjectId(0)) {
                                got += 1;
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(granted, t, "exactly t reservations must be granted");
    }
}
