//! CAS ensembles with functional-fault injection at the linearization
//! point — the "unreliable hardware" the native protocols run on.
//!
//! Each fault kind of Sections 3.3–3.4 is emulated by a different atomic
//! primitive at the linearization point:
//!
//! * **overriding** — an unconditional `swap`: exactly the postcondition
//!   `R = val ∧ old = R'`;
//! * **silent** — a plain load (nothing written, old value reported);
//! * **invisible** — a correct compare-exchange whose *reported* old value
//!   is corrupted (we report `exp`, pretending the comparison matched);
//! * **arbitrary** — a `swap` of a pseudo-random junk word;
//! * **nonresponsive** — the calling thread parks forever.
//!
//! Whether an invocation *attempts* a fault is the [`FaultPolicy`]'s call;
//! whether the attempt *counts* is decided after the fact by classifying
//! the observable record (Definition 1): an attempt indistinguishable from
//! a correct execution — e.g. an overriding write whose comparison matched
//! anyway — is refunded to the budget.

use crate::atomic::AtomicCas;
use crate::budget::NativeBudget;
use crate::cell::CasEnsemble;
use crate::policy::{splitmix64, FaultPolicy, NeverPolicy};
use crate::raw::RawCas;
use crate::stats::EnsembleStats;
use ff_spec::{
    classify_cas, Bound, CasClassification, CasRecord, FaultKind, History, ObjectId, OpEvent,
    ProcessId, Word,
};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static THREAD_PID: Cell<ProcessId> = const { Cell::new(ProcessId(usize::MAX)) };
}

/// Tag the current thread with the process id recorded in ensemble
/// histories. Runners call this once per worker thread; untagged threads
/// record as `ProcessId(usize::MAX)`.
pub fn set_thread_process_id(pid: ProcessId) {
    THREAD_PID.with(|c| c.set(pid));
}

/// The process id the current thread records operations under.
pub fn thread_process_id() -> ProcessId {
    THREAD_PID.with(|c| c.get())
}

/// A CAS ensemble whose designated faulty objects inject functional
/// faults, within an `(f, t)` budget.
///
/// The inner objects default to [`AtomicCas`] words, but any
/// [`RawCas`] implementation can be wrapped instead
/// ([`FaultyCasArrayBuilder::over_cells`]) — that is how the robust
/// constructions are composed over the weaker-primitive substrates.
pub struct FaultyCasArray {
    cells: Vec<Arc<dyn RawCas>>,
    kind: FaultKind,
    budget: NativeBudget,
    policy: Box<dyn FaultPolicy>,
    stats: Arc<EnsembleStats>,
    history: Option<Mutex<History>>,
}

impl FaultyCasArray {
    /// Start building an ensemble of `count` objects (all `⊥`).
    pub fn builder(count: usize) -> FaultyCasArrayBuilder {
        FaultyCasArrayBuilder::new(count)
    }

    /// The fault kind this ensemble's faulty objects exhibit.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Per-object operation/fault counters.
    pub fn stats(&self) -> &EnsembleStats {
        &self.stats
    }

    /// The shared stats handle (the same counters as [`Self::stats`],
    /// clonable so callers can keep reading after the ensemble is gone).
    pub fn stats_handle(&self) -> Arc<EnsembleStats> {
        Arc::clone(&self.stats)
    }

    /// Remaining fault budget on `obj` (`None` = unbounded).
    pub fn remaining_budget(&self, obj: ObjectId) -> Option<u64> {
        self.budget.remaining(obj)
    }

    /// A copy of the recorded operation history (empty when recording is
    /// disabled). Event order is the order recording locks were acquired,
    /// which may differ slightly from linearization order under
    /// contention; per-event records are exact, so fault accounting —
    /// which is order-independent — is unaffected.
    pub fn history(&self) -> History {
        self.history
            .as_ref()
            .map(|h| h.lock().clone())
            .unwrap_or_default()
    }

    fn record_event(&self, obj: ObjectId, record: CasRecord, injected: bool) {
        if let Some(h) = &self.history {
            h.lock().push(OpEvent {
                process: thread_process_id(),
                object: obj,
                record,
                injected_fault: injected,
            });
        }
    }
}

impl CasEnsemble for FaultyCasArray {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn cas(&self, obj: ObjectId, exp: Word, new: Word) -> Word {
        let cell = &self.cells[obj.0];
        let op_index = self.stats.record_op(obj);

        let attempt = self.budget.is_faulty_object(obj)
            && self.policy.should_fault(obj, op_index)
            && self.budget.try_reserve(obj);

        let record = if attempt {
            self.stats.record_attempt(obj);
            match self.kind {
                FaultKind::Overriding => {
                    let old = cell.swap(new);
                    CasRecord {
                        pre: old,
                        exp,
                        new,
                        post: new,
                        returned: old,
                    }
                }
                FaultKind::Silent => {
                    let pre = cell.load();
                    CasRecord {
                        pre,
                        exp,
                        new,
                        post: pre,
                        returned: pre,
                    }
                }
                FaultKind::Invisible => {
                    let old = cell.cas(exp, new);
                    let post = if old == exp { new } else { old };
                    CasRecord {
                        pre: old,
                        exp,
                        new,
                        post,
                        // Pretend the comparison matched: report `exp`.
                        returned: exp,
                    }
                }
                FaultKind::Arbitrary => {
                    let junk = splitmix64(0xFEED_FACE ^ splitmix64(obj.0 as u64) ^ op_index);
                    let old = cell.swap(junk);
                    CasRecord {
                        pre: old,
                        exp,
                        new,
                        post: junk,
                        returned: old,
                    }
                }
                FaultKind::Nonresponsive => {
                    // The operation never responds (Section 3.4). The
                    // calling thread is gone; harnesses must collect
                    // results with timeouts and leave the thread detached.
                    loop {
                        std::thread::park();
                    }
                }
            }
        } else {
            let old = cell.cas(exp, new);
            let post = if old == exp { new } else { old };
            CasRecord {
                pre: old,
                exp,
                new,
                post,
                returned: old,
            }
        };

        if attempt {
            if matches!(classify_cas(&record), CasClassification::Correct) {
                // Indistinguishable from a correct execution: not a fault
                // per Definition 1 — refund the budget.
                self.budget.refund(obj);
                self.stats.unrecord_attempt(obj);
            } else {
                self.stats.record_observable(obj);
            }
        }
        self.record_event(obj, record, attempt);
        record.returned
    }
}

/// Builder for [`FaultyCasArray`].
pub struct FaultyCasArrayBuilder {
    count: usize,
    kind: FaultKind,
    faulty_set: Vec<ObjectId>,
    per_object: Bound,
    policy: Box<dyn FaultPolicy>,
    record_history: bool,
    shared_stats: Option<Arc<EnsembleStats>>,
    inner_cells: Option<Vec<Arc<dyn RawCas>>>,
}

impl FaultyCasArrayBuilder {
    /// Defaults: no faulty objects, overriding kind, never-fault policy,
    /// history recording on.
    pub fn new(count: usize) -> Self {
        FaultyCasArrayBuilder {
            count,
            kind: FaultKind::Overriding,
            faulty_set: Vec::new(),
            per_object: Bound::Finite(0),
            policy: Box::new(NeverPolicy),
            record_history: true,
            shared_stats: None,
            inner_cells: None,
        }
    }

    /// Set the fault kind.
    pub fn kind(mut self, kind: FaultKind) -> Self {
        self.kind = kind;
        self
    }

    /// Designate an explicit faulty set.
    pub fn faulty_objects(mut self, objs: impl IntoIterator<Item = ObjectId>) -> Self {
        self.faulty_set = objs.into_iter().collect();
        self
    }

    /// Designate the first `f` objects as the faulty set.
    pub fn faulty_first(mut self, f: usize) -> Self {
        self.faulty_set = (0..f).map(ObjectId).collect();
        self
    }

    /// Per-object fault limit `t`.
    pub fn per_object(mut self, t: Bound) -> Self {
        self.per_object = t;
        self
    }

    /// The fault policy.
    pub fn policy(mut self, policy: impl FaultPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Enable/disable history recording (disable for throughput benches).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Aggregate operation/fault counters into an externally owned
    /// [`EnsembleStats`] instead of a private one. Many ensembles may
    /// share the same instance (e.g. every consensus cell of one store
    /// shard), surfacing *live* aggregate counts without keeping the
    /// ensembles themselves alive.
    ///
    /// Caveat: the per-object operation index that fault policies see
    /// then runs across every ensemble sharing the stats, not per
    /// ensemble — fine for stateless policies such as
    /// [`ProbabilisticPolicy`](crate::ProbabilisticPolicy), but
    /// [`FirstKPolicy`](crate::FirstKPolicy)-style positional policies
    /// will no longer restart at each ensemble.
    pub fn shared_stats(mut self, stats: Arc<EnsembleStats>) -> Self {
        assert!(
            stats.num_objects() >= self.count,
            "shared stats cover {} objects but the ensemble has {}",
            stats.num_objects(),
            self.count
        );
        self.shared_stats = Some(stats);
        self
    }

    /// Inject faults over these inner objects instead of fresh
    /// [`AtomicCas`] words — the seam that lets the robust
    /// constructions compose over any consensus substrate. The vector
    /// must hold exactly `count` cells.
    ///
    /// Not every fault kind is realizable over every inner object: an
    /// *arbitrary* fault swaps a full-width junk word in, which an
    /// inner object with a narrower value domain (e.g.
    /// [`KwCas`](crate::KwCas), whose packed encoding holds inputs and
    /// `⊥` only) will refuse by panicking. Substrates declare which
    /// kinds they tolerate; configuration layers enforce it.
    pub fn over_cells(mut self, cells: Vec<Arc<dyn RawCas>>) -> Self {
        assert_eq!(
            cells.len(),
            self.count,
            "inner cells ({}) must match the ensemble size ({})",
            cells.len(),
            self.count
        );
        self.inner_cells = Some(cells);
        self
    }

    /// Build the ensemble.
    pub fn build(self) -> FaultyCasArray {
        let budget = NativeBudget::new(self.count, &self.faulty_set, self.per_object);
        FaultyCasArray {
            cells: self.inner_cells.unwrap_or_else(|| {
                (0..self.count)
                    .map(|_| Arc::new(AtomicCas::new()) as Arc<dyn RawCas>)
                    .collect()
            }),
            kind: self.kind,
            budget,
            policy: self.policy,
            stats: self
                .shared_stats
                .unwrap_or_else(|| Arc::new(EnsembleStats::new(self.count))),
            history: self.record_history.then(|| Mutex::new(History::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysPolicy, FirstKPolicy};
    use ff_spec::{Tolerance, BOTTOM};
    use std::sync::Arc;

    #[test]
    fn no_faulty_objects_behaves_correctly() {
        let a = FaultyCasArray::builder(2).build();
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 5), BOTTOM);
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 9), 5);
        assert_eq!(a.cas(ObjectId(0), 5, 9), 5);
        assert_eq!(a.stats().total_observable(), 0);
        assert_eq!(a.history().len(), 3);
    }

    #[test]
    fn overriding_fault_writes_on_mismatch() {
        let a = FaultyCasArray::builder(1)
            .faulty_first(1)
            .per_object(Bound::Unbounded)
            .policy(AlwaysPolicy)
            .build();
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 5), BOTTOM); // match: correct, refunded
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 9), 5); // mismatch: OVERRIDES
                                                      // The override took effect:
        assert_eq!(a.cas(ObjectId(0), 9, 7), 9);
        assert_eq!(a.stats().object(ObjectId(0)).observable_faults, 1);
        assert_eq!(a.stats().faulty_object_count(), 1);
        // History agrees with the stats.
        let h = a.history();
        assert_eq!(h.faulty_object_count(), 1);
        assert_eq!(h.max_faults_per_object(), 1);
        assert!(h.within(&Tolerance::new(1, 1, 1)));
    }

    #[test]
    fn matching_override_is_refunded() {
        // t = 1 and the only attempt matches: budget must be refunded so a
        // later mismatching CAS can still fault.
        let a = FaultyCasArray::builder(1)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(AlwaysPolicy)
            .build();
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 5), BOTTOM); // match → refund
        assert_eq!(a.remaining_budget(ObjectId(0)), Some(1));
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 9), 5); // mismatch → fault
        assert_eq!(a.remaining_budget(ObjectId(0)), Some(0));
        assert_eq!(
            a.cas(ObjectId(0), BOTTOM, 7),
            9,
            "budget exhausted: correct"
        );
        assert_eq!(a.stats().object(ObjectId(0)).observable_faults, 1);
    }

    #[test]
    fn budget_bounds_faults_exactly() {
        let a = FaultyCasArray::builder(1)
            .faulty_first(1)
            .per_object(Bound::Finite(2))
            .policy(AlwaysPolicy)
            .build();
        a.cas(ObjectId(0), BOTTOM, 1); // correct (match)
        for i in 0..10 {
            a.cas(ObjectId(0), BOTTOM, 100 + i); // all mismatch
        }
        assert_eq!(a.stats().object(ObjectId(0)).observable_faults, 2);
    }

    #[test]
    fn silent_fault_suppresses_write() {
        let a = FaultyCasArray::builder(1)
            .kind(FaultKind::Silent)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(AlwaysPolicy)
            .build();
        // Match, but silently dropped.
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 5), BOTTOM);
        // Budget spent; this one goes through.
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 9), BOTTOM);
        assert_eq!(a.cas(ObjectId(0), 9, 7), 9);
        assert_eq!(a.stats().object(ObjectId(0)).observable_faults, 1);
    }

    #[test]
    fn invisible_fault_corrupts_returned_value_only() {
        let a = FaultyCasArray::builder(1)
            .kind(FaultKind::Invisible)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(FirstKPolicy::new(2))
            .build();
        a.cas(ObjectId(0), BOTTOM, 5); // match: invisible attempt returns exp = ⊥ = pre → correct, refunded
        let old = a.cas(ObjectId(0), 7, 9); // mismatch: reports exp = 7 although cell holds 5
        assert_eq!(old, 7, "invisible fault lies about the old value");
        // The register itself followed the spec: still 5.
        assert_eq!(a.cas(ObjectId(0), 5, 1), 5);
        assert_eq!(a.stats().object(ObjectId(0)).observable_faults, 1);
    }

    #[test]
    fn arbitrary_fault_writes_junk() {
        let a = FaultyCasArray::builder(1)
            .kind(FaultKind::Arbitrary)
            .faulty_first(1)
            .per_object(Bound::Finite(1))
            .policy(AlwaysPolicy)
            .build();
        let old = a.cas(ObjectId(0), BOTTOM, 5);
        assert_eq!(old, BOTTOM, "arbitrary fault still returns correct old");
        assert_eq!(a.stats().object(ObjectId(0)).observable_faults, 1);
        // The cell now holds junk (whatever it is, not ⊥ and almost surely
        // not 5 — verify via a probe CAS that fails and reports it).
        let junk = a.cas(ObjectId(0), BOTTOM, 5);
        assert_ne!(junk, BOTTOM);
    }

    #[test]
    fn nonresponsive_fault_never_returns() {
        let a = Arc::new(
            FaultyCasArray::builder(1)
                .kind(FaultKind::Nonresponsive)
                .faulty_first(1)
                .per_object(Bound::Finite(1))
                .policy(AlwaysPolicy)
                .build(),
        );
        let (tx, rx) = std::sync::mpsc::channel();
        {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let old = a.cas(ObjectId(0), BOTTOM, 5);
                let _ = tx.send(old);
            });
        }
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(200))
                .is_err(),
            "nonresponsive CAS must not respond"
        );
        // Budget exhausted: a second CAS responds normally.
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 9), BOTTOM);
    }

    #[test]
    fn thread_pid_tagging_reaches_history() {
        let a = FaultyCasArray::builder(1).build();
        set_thread_process_id(ProcessId(7));
        a.cas(ObjectId(0), BOTTOM, 5);
        let h = a.history();
        assert_eq!(h.events()[0].process, ProcessId(7));
        set_thread_process_id(ProcessId(usize::MAX));
    }

    #[test]
    fn history_can_be_disabled() {
        let a = FaultyCasArray::builder(1).record_history(false).build();
        a.cas(ObjectId(0), BOTTOM, 5);
        assert!(a.history().is_empty());
    }

    #[test]
    fn concurrent_faulting_respects_budget() {
        let t = 5u64;
        let a = Arc::new(
            FaultyCasArray::builder(1)
                .faulty_first(1)
                .per_object(Bound::Finite(t))
                .policy(AlwaysPolicy)
                .build(),
        );
        std::thread::scope(|s| {
            for i in 0..8 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for j in 0..200u64 {
                        // Everything mismatches after the first write.
                        a.cas(ObjectId(0), BOTTOM, 1_000 + i * 1_000 + j);
                    }
                });
            }
        });
        let observable = a.stats().object(ObjectId(0)).observable_faults;
        assert!(observable <= t, "observable {observable} exceeds t = {t}");
        let h = a.history();
        assert!(h.max_faults_per_object() <= t);
    }
}
