//! # ff-cas — CAS objects with functional-fault injection
//!
//! The native-thread hardware layer of the *Functional Faults*
//! reproduction (Sheffi & Petrank, SPAA 2020): real `std::sync::atomic`
//! CAS words wrapped with fault injection *at the linearization point*.
//!
//! The paper's hardware faults (voltage scaling, soft errors) are
//! simulated in software, which preserves the model exactly: a functional
//! fault is *defined* by the effect on the operation's postconditions
//! (Definition 1), not by its physical cause. An overriding fault, for
//! instance, is emulated by an unconditional atomic `swap` — precisely the
//! postcondition `R = val ∧ old = R'`.
//!
//! ```
//! use ff_cas::{CasEnsemble, FaultyCasArray, AlwaysPolicy};
//! use ff_spec::{Bound, ObjectId, BOTTOM};
//!
//! // One CAS object with at most two overriding faults.
//! let ensemble = FaultyCasArray::builder(1)
//!     .faulty_first(1)
//!     .per_object(Bound::Finite(2))
//!     .policy(AlwaysPolicy)
//!     .build();
//!
//! assert_eq!(ensemble.cas(ObjectId(0), BOTTOM, 5), BOTTOM); // correct (match)
//! assert_eq!(ensemble.cas(ObjectId(0), BOTTOM, 9), 5);      // overriding fault!
//! assert_eq!(ensemble.cas(ObjectId(0), 9, 7), 9);           // the override stuck
//! assert_eq!(ensemble.stats().total_observable(), 1);
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod budget;
pub mod cell;
pub mod faulty;
pub mod kw;
pub mod policy;
pub mod raw;
pub mod stats;
pub mod wfa;

pub use atomic::{AtomicCas, AtomicCasArray};
pub use budget::NativeBudget;
pub use cell::{CasCell, CasEnsemble, EnsembleCell};
pub use faulty::{set_thread_process_id, thread_process_id, FaultyCasArray, FaultyCasArrayBuilder};
pub use kw::{KwCas, KwCasArray};
pub use policy::{
    splitmix64, AlwaysPolicy, EveryNthPolicy, FaultPolicy, FirstKPolicy, NeverPolicy,
    ProbabilisticPolicy, ScriptedPolicy,
};
pub use raw::RawCas;
pub use stats::{EnsembleStats, ObjectStats};
pub use wfa::WriteAndFArray;
