//! Wait-free CAS from consensus-number-1 primitives, after
//! Khanchandani & Wattenhofer ("Is Compare-and-Swap Really Necessary?",
//! arXiv 1802.03844).
//!
//! The hierarchy places compare-and-swap at consensus number ∞ and
//! max-registers at consensus number 1, yet KW show a CAS object can be
//! *implemented*, wait-free for its one-shot uses, from a combination
//! of a **max-write** and a **half-max** on a single word. This module
//! is an independent construction in that spirit (only the paper's
//! abstract is available offline; the algorithm below is derived and
//! argued from scratch, then model-checked in the tests):
//!
//! The object's value lives in a max-register `X` packed as
//! `(epoch, value)`. A successful CAS advances the epoch by one; the
//! value at epoch `k` is arbitrated by a per-epoch decision word `D_k`
//! packed as `(frozen, tag, value)`:
//!
//! 1. **read** `X = (e, v)`. If `v ≠ exp`, the CAS fails, linearized at
//!    this read (the content really was `v` then, and a failed CAS
//!    writes nothing).
//! 2. **propose**: max-write `(0, t, new)` into `D_{e+1}` with a unique
//!    tag `t`. Because `frozen` is the top bit and `tag` orders below
//!    it, this single `fetch_max` *is* the max-write primitive: it can
//!    never displace a frozen word, and among proposals the highest tag
//!    wins.
//! 3. **freeze**: `fetch_or` the top bit of `D_{e+1}` — a half-max on
//!    the one-bit half (monotone: once set, never unset), making the
//!    current winner sticky. Every contender freezes before reading, so
//!    every contender reads the *same* winner.
//! 4. **read** `D_{e+1} = (1, w_t, w_v)` and **help**: max-write
//!    `(e+1, w_v)` into `X`. All helpers of epoch `e+1` write the same
//!    pair (the word was frozen first), so the lexicographic
//!    `fetch_max` on `(epoch, value)` is again a true max-write.
//! 5. If `w_t = t`, this process's proposal won: its CAS succeeded,
//!    linearized at the instant `X` advanced from `(e, exp)` to
//!    `(e+1, new)` — until that instant the content was still `exp`
//!    (epoch-`e` content only changes by the epoch advancing), and
//!    after it, `new`. Return `exp`.
//! 6. Otherwise the winner installed `w_v`. If `w_v ≠ exp`, this CAS
//!    fails, linearized immediately after the winner's: the content was
//!    `w_v` there. Return `w_v`. If `w_v = exp` — the winner installed
//!    exactly the value we expected, so a failure returning `exp` would
//!    be contradictory — retry from step 1; `X` has already advanced
//!    past `e` (we helped it), so every retry strictly increases the
//!    epoch: the loop is lock-free, and **wait-free for the one-shot
//!    consensus pattern** `CAS(⊥, input)`, where a lost round always
//!    decided some input `≠ ⊥` and the retry case is unreachable.
//!
//! Shared-memory primitives used: `fetch_max` (max-write), `fetch_or`
//! on one bit (half-max) and plain loads — all consensus number 1. The
//! per-object `fetch_add` ticket is a *naming* oracle, not an
//! arbitration one: it only manufactures unique proposal tags, the role
//! unique process ids play in the original construction (the store's
//! combining clients share a process id, so ids cannot serve here); no
//! decision ever depends on the ticket order, only on tag uniqueness.
//!
//! Width budget (values are `⊥` or 32-bit inputs, see
//! [`ff_spec::Input`]): `X = [epoch:31 | value:33]`,
//! `D = [frozen:1 | tag:30 | value:33]`, with value encoded as `0` for
//! `⊥` and `v + 1` otherwise. A consequence the substrate layer must
//! declare: a KW cell **cannot hold arbitrary 64-bit junk**, so
//! *arbitrary*-kind fault injection (which swaps in full-width junk) is
//! not tolerable over this object — [`KwCas::swap`] panics on an
//! unencodable word rather than silently truncating it.

use crate::cell::{CasCell, CasEnsemble};
use crate::raw::RawCas;
use ff_spec::{ObjectId, Word, BOTTOM};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of the packed value field (32-bit inputs plus the `⊥` code).
const ENC_BITS: u32 = 33;
const ENC_MASK: u64 = (1 << ENC_BITS) - 1;
/// Bits of the proposal tag in a `D` word.
const TAG_BITS: u32 = 30;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;
/// The half-max freeze bit (top bit of a `D` word).
const FROZEN: u64 = 1 << 63;
/// Epochs representable in an `X` word.
const MAX_EPOCH: u64 = (1 << 31) - 1;

/// Default length of the per-epoch decision chain. One-shot consensus
/// cells consume one epoch per decision plus one per overriding fault
/// landed on them — far below this; generic swap-heavy use can raise it
/// via [`KwCas::with_epoch_capacity`].
pub const DEFAULT_EPOCH_CAPACITY: usize = 256;

/// Encode a cell value into the 33-bit field (`⊥ → 0`, `v → v + 1`).
fn enc(v: Word) -> u64 {
    if v == BOTTOM {
        0
    } else {
        assert!(
            v <= u32::MAX as u64,
            "kw cell cannot hold word {v:#x}: values are ⊥ or 32-bit inputs"
        );
        v + 1
    }
}

/// Decode the 33-bit field back into a cell value.
fn dec(e: u64) -> Word {
    if e == 0 {
        BOTTOM
    } else {
        e - 1
    }
}

fn pack_x(epoch: u64, venc: u64) -> u64 {
    debug_assert!(epoch <= MAX_EPOCH && venc <= ENC_MASK);
    (epoch << ENC_BITS) | venc
}

fn unpack_x(word: u64) -> (u64, u64) {
    (word >> ENC_BITS, word & ENC_MASK)
}

fn pack_d(tag: u64, venc: u64) -> u64 {
    debug_assert!(tag <= TAG_MASK && venc <= ENC_MASK);
    (tag << ENC_BITS) | venc
}

fn unpack_d(word: u64) -> (u64, u64) {
    ((word >> ENC_BITS) & TAG_MASK, word & ENC_MASK)
}

/// One CAS object implemented from max-write/half-max words.
pub struct KwCas {
    /// The max-register holding `(epoch, value)`.
    x: AtomicU64,
    /// Per-target-epoch decision words `D_1 … D_cap` (index `k - 1`
    /// arbitrates the transition into epoch `k`).
    d: Vec<AtomicU64>,
    /// Unique-tag source (naming oracle; see module docs).
    ticket: AtomicU64,
}

impl KwCas {
    /// A KW cell initialized with `⊥` and the default epoch capacity.
    pub fn new() -> Self {
        Self::with_epoch_capacity(DEFAULT_EPOCH_CAPACITY)
    }

    /// A KW cell initialized with `⊥` and room for `capacity`
    /// successful CASes over its lifetime.
    pub fn with_epoch_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "need at least one epoch");
        assert!((capacity as u64) < MAX_EPOCH, "epoch capacity too large");
        KwCas {
            x: AtomicU64::new(pack_x(0, enc(BOTTOM))),
            d: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            ticket: AtomicU64::new(0),
        }
    }

    /// The decision word arbitrating the transition into epoch `k`.
    fn d_word(&self, k: u64) -> &AtomicU64 {
        self.d.get((k - 1) as usize).unwrap_or_else(|| {
            panic!(
                "kw cell exhausted its epoch chain (capacity {}): \
                 raise with_epoch_capacity for swap-heavy use",
                self.d.len()
            )
        })
    }

    /// Epochs consumed so far (successful CASes, including emulated
    /// swaps landed on this cell).
    pub fn epoch(&self) -> u64 {
        unpack_x(self.x.load(Ordering::SeqCst)).0
    }
}

impl Default for KwCas {
    fn default() -> Self {
        Self::new()
    }
}

impl CasCell for KwCas {
    fn cas(&self, exp: Word, new: Word) -> Word {
        let new_enc = enc(new);
        loop {
            // 1. Read X; fail fast on mismatch (linearized at the read).
            let (e, venc) = unpack_x(self.x.load(Ordering::SeqCst));
            let v = dec(venc);
            if v != exp {
                return v;
            }
            let k = e + 1;
            let d = self.d_word(k);
            // 2. Propose under a unique tag (max-write: cannot displace
            // a frozen word; highest tag wins among proposals).
            let t = self.ticket.fetch_add(1, Ordering::SeqCst) + 1;
            assert!(t <= TAG_MASK, "kw cell tag space exhausted");
            d.fetch_max(pack_d(t, new_enc), Ordering::SeqCst);
            // 3. Freeze (half-max on the top bit): the winner is sticky
            // before anyone reads it.
            d.fetch_or(FROZEN, Ordering::SeqCst);
            // 4. Read the frozen decision and help X forward. Every
            // helper of epoch k writes the same pair.
            let (wt, wenc) = unpack_d(d.load(Ordering::SeqCst));
            self.x.fetch_max(pack_x(k, wenc), Ordering::SeqCst);
            if wt == t {
                // 5. Our proposal won: success, old value was exp.
                return exp;
            }
            let wv = dec(wenc);
            if wv != exp {
                // 6. Lost to a different value: fail, linearized right
                // after the winner's transition.
                return wv;
            }
            // Lost to our own expected value: retry at a later epoch
            // (X already advanced past e via our help write).
        }
    }
}

impl RawCas for KwCas {
    fn load(&self) -> Word {
        dec(unpack_x(self.x.load(Ordering::SeqCst)).1)
    }

    fn swap(&self, new: Word) -> Word {
        // Emulated unconditional exchange: retry CAS against the
        // current content until one lands. Lock-free (every failed
        // round means some other operation succeeded), and the only
        // caller is the fault injector, which tolerates the bounded
        // extra steps.
        loop {
            let cur = self.load();
            if self.cas(cur, new) == cur {
                return cur;
            }
        }
    }
}

/// An ensemble of independent [`KwCas`] objects, all initialized `⊥`.
pub struct KwCasArray {
    cells: Vec<KwCas>,
}

impl KwCasArray {
    /// `count` KW cells with the default epoch capacity.
    pub fn new(count: usize) -> Self {
        KwCasArray {
            cells: (0..count).map(|_| KwCas::new()).collect(),
        }
    }

    /// The raw cells, for wrapping in a fault-injection layer.
    pub fn into_raw_cells(self) -> Vec<std::sync::Arc<dyn RawCas>> {
        self.cells
            .into_iter()
            .map(|c| std::sync::Arc::new(c) as std::sync::Arc<dyn RawCas>)
            .collect()
    }
}

impl CasEnsemble for KwCasArray {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn cas(&self, obj: ObjectId, exp: Word, new: Word) -> Word {
        self.cells[obj.0].cas(exp, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_cas_semantics() {
        let c = KwCas::new();
        assert_eq!(c.cas(BOTTOM, 5), BOTTOM);
        assert_eq!(c.cas(BOTTOM, 9), 5, "failure reports the content");
        assert_eq!(c.cas(5, 9), 5);
        assert_eq!(c.cas(9, 7), 9);
        assert_eq!(c.load(), 7);
        assert_eq!(c.epoch(), 3);
    }

    #[test]
    fn swap_is_unconditional() {
        let c = KwCas::new();
        c.cas(BOTTOM, 5);
        assert_eq!(c.swap(9), 5);
        assert_eq!(c.load(), 9);
    }

    #[test]
    #[should_panic(expected = "cannot hold word")]
    fn junk_words_are_refused() {
        let c = KwCas::new();
        c.swap(0xDEAD_BEEF_0000_0001);
    }

    #[test]
    fn exactly_one_concurrent_winner() {
        // Herlihy's argument must hold over the emulated object too.
        for round in 0..50 {
            let cell = Arc::new(KwCas::new());
            let n = 8;
            let winners: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let cell = Arc::clone(&cell);
                        s.spawn(move || cell.cas(BOTTOM, (round * 100 + i) as Word) == BOTTOM)
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(winners.iter().filter(|&&w| w).count(), 1);
        }
    }

    #[test]
    fn losers_all_report_the_winner() {
        for round in 0..50u64 {
            let cell = Arc::new(KwCas::new());
            let n = 6u64;
            let olds: Vec<Word> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let cell = Arc::clone(&cell);
                        s.spawn(move || cell.cas(BOTTOM, round * 100 + i))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let winner = cell.load();
            for (i, old) in olds.iter().enumerate() {
                if *old == BOTTOM {
                    assert_eq!(winner, round * 100 + i as u64, "winner installed its value");
                } else {
                    assert_eq!(*old, winner, "losers observe the winner's value");
                }
            }
        }
    }

    #[test]
    fn mixed_cas_chain_under_contention() {
        // Threads race to advance a counter-like chain 0 → 1 → 2 → …;
        // every successful CAS claims a unique slot in the chain, so
        // the final value equals the number of successes.
        let cell = Arc::new(KwCas::with_epoch_capacity(4096));
        cell.cas(BOTTOM, 0);
        let successes: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    s.spawn(move || {
                        let mut wins = 0u64;
                        for _ in 0..200 {
                            let cur = cell.load();
                            if cell.cas(cur, cur + 1) == cur {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(cell.load(), successes, "each success advanced by one");
    }

    // -----------------------------------------------------------------
    // Model check: exhaustive interleavings of the step protocol.
    //
    // The model mirrors the implementation's shared-memory steps one
    // to one (same packing helpers, same fetch_max/fetch_or
    // semantics), with each primitive an atomic step. For the one-shot
    // pattern CAS(⊥, input_i) there are six steps per process and no
    // retries, so the full interleaving space of 2 processes is
    // enumerable exactly; 3 processes are covered exhaustively too
    // (the state space shares prefixes via DFS).
    // -----------------------------------------------------------------

    #[derive(Clone)]
    struct ModelState {
        x: u64,
        d: Vec<u64>,
        ticket: u64,
        procs: Vec<ProcState>,
    }

    #[derive(Clone)]
    struct ProcState {
        input: Word,
        pc: u8,
        epoch: u64,
        tag: u64,
        dword: u64,
        result: Option<Word>,
    }

    impl ModelState {
        fn new(inputs: &[Word]) -> Self {
            ModelState {
                x: pack_x(0, enc(BOTTOM)),
                d: vec![0; 8],
                ticket: 0,
                procs: inputs
                    .iter()
                    .map(|&input| ProcState {
                        input,
                        pc: 0,
                        epoch: 0,
                        tag: 0,
                        dword: 0,
                        result: None,
                    })
                    .collect(),
            }
        }

        /// Execute process `p`'s next atomic step. Returns false when
        /// the process has terminated.
        fn step(&mut self, p: usize) -> bool {
            let proc = &mut self.procs[p];
            match proc.pc {
                0 => {
                    // read X (one-shot: exp = ⊥; a non-⊥ read fails).
                    let (e, venc) = unpack_x(self.x);
                    if dec(venc) != BOTTOM {
                        proc.result = Some(dec(venc));
                        proc.pc = 6;
                        return false;
                    }
                    proc.epoch = e;
                    proc.pc = 1;
                }
                1 => {
                    // ticket
                    self.ticket += 1;
                    proc.tag = self.ticket;
                    proc.pc = 2;
                }
                2 => {
                    // propose: fetch_max on D
                    let k = proc.epoch + 1;
                    let w = pack_d(proc.tag, enc(proc.input));
                    let d = &mut self.d[(k - 1) as usize];
                    *d = (*d).max(w);
                    proc.pc = 3;
                }
                3 => {
                    // freeze: fetch_or on D's top bit
                    let k = proc.epoch + 1;
                    self.d[(k - 1) as usize] |= FROZEN;
                    proc.pc = 4;
                }
                4 => {
                    // read D
                    let k = proc.epoch + 1;
                    proc.dword = self.d[(k - 1) as usize];
                    proc.pc = 5;
                }
                5 => {
                    // help X, then resolve (local).
                    let k = proc.epoch + 1;
                    let (wt, wenc) = unpack_d(proc.dword);
                    self.x = self.x.max(pack_x(k, wenc));
                    proc.result = Some(if wt == proc.tag { BOTTOM } else { dec(wenc) });
                    // One-shot: the retry case needs wv = ⊥, impossible.
                    assert!(wt == proc.tag || dec(wenc) != BOTTOM);
                    proc.pc = 6;
                }
                _ => return false,
            }
            proc.pc < 6
        }

        fn done(&self) -> bool {
            self.procs.iter().all(|p| p.pc >= 6)
        }

        fn check(&self) {
            // Exactly one winner; every loser reports the winner's
            // value; the object holds the winner's value.
            let current = dec(unpack_x(self.x).1);
            let mut winners = 0;
            for p in &self.procs {
                match p.result.expect("terminated") {
                    BOTTOM => {
                        winners += 1;
                        assert_eq!(current, p.input, "winner's value installed");
                    }
                    old => assert_eq!(old, current, "loser reports the winner"),
                }
            }
            assert_eq!(winners, 1, "exactly one CAS(⊥, ·) succeeds");
        }
    }

    fn explore(state: ModelState, explored: &mut u64) {
        if state.done() {
            state.check();
            *explored += 1;
            return;
        }
        for p in 0..state.procs.len() {
            if state.procs[p].pc < 6 {
                let mut next = state.clone();
                next.step(p);
                explore(next, explored);
            }
        }
    }

    #[test]
    fn model_exhaustive_two_processes() {
        let mut n = 0;
        explore(ModelState::new(&[10, 20]), &mut n);
        assert!(n >= 900, "all interleavings of 2×6 steps: got {n}");
    }

    #[test]
    fn model_exhaustive_three_processes() {
        let mut n = 0;
        explore(ModelState::new(&[10, 20, 30]), &mut n);
        // 18!/(6!)³ = 17,153,136 schedules minus the early-exit
        // (failed-read) collapses — every single one checked.
        assert!(n >= 1_000_000, "three-process interleavings: got {n}");
    }
}
