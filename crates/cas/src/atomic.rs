//! Fault-free CAS objects backed by `std::sync::atomic`.

use crate::cell::{CasCell, CasEnsemble};
use ff_spec::{ObjectId, Word, BOTTOM};
use std::sync::atomic::{AtomicU64, Ordering};

/// One correct CAS object on a real atomic word.
///
/// All operations use sequentially consistent ordering: the paper's model
/// (Section 2) assumes atomic steps over a single shared memory, and the
/// protocols' correctness arguments are interleaving-based, so we buy the
/// strongest hardware ordering rather than re-deriving the proofs under
/// weaker memory models.
#[derive(Debug)]
pub struct AtomicCas {
    word: AtomicU64,
}

impl AtomicCas {
    /// A CAS object initialized with `⊥`.
    pub fn new() -> Self {
        Self::with_initial(BOTTOM)
    }

    /// A CAS object with an explicit initial value.
    pub fn with_initial(value: Word) -> Self {
        AtomicCas {
            word: AtomicU64::new(value),
        }
    }

    /// Unconditional atomic exchange — the memory effect of an overriding
    /// fault (`R = val ∧ old = R'`). Exposed to the fault-injection layer
    /// only; correct protocols never call it.
    pub(crate) fn swap(&self, new: Word) -> Word {
        self.word.swap(new, Ordering::SeqCst)
    }

    /// Plain load — used by the fault-injection layer to linearize silent
    /// faults (which touch nothing but must still report the old value).
    pub(crate) fn load(&self) -> Word {
        self.word.load(Ordering::SeqCst)
    }
}

impl Default for AtomicCas {
    fn default() -> Self {
        Self::new()
    }
}

impl CasCell for AtomicCas {
    fn cas(&self, exp: Word, new: Word) -> Word {
        match self
            .word
            .compare_exchange(exp, new, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(old) => old,
            Err(old) => old,
        }
    }
}

impl crate::raw::RawCas for AtomicCas {
    fn load(&self) -> Word {
        AtomicCas::load(self)
    }

    fn swap(&self, new: Word) -> Word {
        AtomicCas::swap(self, new)
    }
}

/// A fault-free ensemble of CAS objects, all initialized with `⊥`.
#[derive(Debug)]
pub struct AtomicCasArray {
    cells: Vec<AtomicCas>,
}

impl AtomicCasArray {
    /// `count` correct CAS objects.
    pub fn new(count: usize) -> Self {
        AtomicCasArray {
            cells: (0..count).map(|_| AtomicCas::new()).collect(),
        }
    }
}

impl CasEnsemble for AtomicCasArray {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn cas(&self, obj: ObjectId, exp: Word, new: Word) -> Word {
        self.cells[obj.0].cas(exp, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cas_succeeds_on_match() {
        let c = AtomicCas::new();
        assert_eq!(c.cas(BOTTOM, 5), BOTTOM);
        assert_eq!(c.cas(5, 9), 5);
    }

    #[test]
    fn cas_fails_on_mismatch() {
        let c = AtomicCas::new();
        c.cas(BOTTOM, 5);
        assert_eq!(c.cas(BOTTOM, 9), 5);
        assert_eq!(c.cas(5, 7), 5, "content was untouched by the failure");
    }

    #[test]
    fn with_initial_value() {
        let c = AtomicCas::with_initial(42);
        assert_eq!(c.cas(42, 1), 42);
    }

    #[test]
    fn swap_is_unconditional() {
        let c = AtomicCas::new();
        c.cas(BOTTOM, 5);
        assert_eq!(c.swap(9), 5);
        assert_eq!(c.load(), 9);
    }

    #[test]
    fn exactly_one_concurrent_winner() {
        // The Herlihy argument in hardware: of N racing CAS(⊥, i), exactly
        // one succeeds.
        let cell = Arc::new(AtomicCas::new());
        let n = 8;
        let winners: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let cell = Arc::clone(&cell);
                    s.spawn(move || cell.cas(BOTTOM, i as Word) == BOTTOM)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().filter(|&&w| w).count(), 1);
    }

    #[test]
    fn array_indexes_independent_cells() {
        let a = AtomicCasArray::new(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 1), BOTTOM);
        assert_eq!(a.cas(ObjectId(1), BOTTOM, 2), BOTTOM);
        assert_eq!(a.cas(ObjectId(0), BOTTOM, 9), 1);
    }
}
