//! The write-and-f-array shared object, after Obryk ("Write-and-f-array:
//! implementation and an application", arXiv 1407.6153).
//!
//! A write-and-f-array generalizes a max-array: it holds an array of
//! single-writer cells and supports `write_and_f(i, v)` — atomically
//! write `v` into cell `i` and return `f` applied to the whole array —
//! in one linearizable step. Only the paper's abstract is available
//! offline, so this module is an independent construction of the
//! *object* (not a transcription of Obryk's polylogarithmic algorithm):
//! we choose the aggregate `f(A) = (count of written cells, min of
//! written values)`, which is exactly the summary a consensus
//! arbitration stage needs, and implement it from `fetch_min` slots
//! plus a CAS-merged aggregation root. The root merge is a retry loop,
//! so this implementation is lock-free rather than wait-free — the
//! hierarchy sweep measures the construction, it does not claim Obryk's
//! step complexity.
//!
//! Consensus-wise the object is *weak*: `write_and_f` operations
//! commute in Herlihy's sense once two distinct cells are written
//! (both writers see both writes or a symmetric disagreement), so a
//! write-and-f-array alone has bounded consensus number and cannot
//! arbitrate among `n` processes. The substrate layer therefore pairs
//! it with a separate arbitration stage (see `WafConsensus` in
//! `ff-consensus`): the array aggregates candidate inputs — validity
//! comes from `min` being some process's input — and a single
//! downstream consensus object picks the decided aggregate.
//!
//! Packing: the root word is `[count:31 | min_enc:33]` with
//! `min_enc = 0` for "nothing written yet" and `v + 1` otherwise;
//! values are 32-bit inputs (the store's `Input` domain), wider words
//! are refused loudly.

use ff_spec::Word;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for an unwritten slot (`fetch_min` identity).
const EMPTY: u64 = u64::MAX;
/// Bits of the packed min field in the root word.
const ENC_BITS: u32 = 33;
const ENC_MASK: u64 = (1 << ENC_BITS) - 1;
const MAX_COUNT: u64 = (1 << 31) - 1;

fn enc(v: Word) -> u64 {
    assert!(
        v <= u32::MAX as u64,
        "write-and-f-array cannot hold word {v:#x}: values are 32-bit inputs"
    );
    v + 1
}

fn pack_root(count: u64, min_enc: u64) -> u64 {
    debug_assert!(count <= MAX_COUNT && min_enc <= ENC_MASK);
    (count << ENC_BITS) | min_enc
}

fn unpack_root(word: u64) -> (u64, u64) {
    (word >> ENC_BITS, word & ENC_MASK)
}

/// The aggregate a [`WriteAndFArray::write_and_f`] returns: `f(A)` over
/// the written cells at the operation's linearization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WafView {
    /// Number of distinct cells written so far (including this write).
    pub count: u64,
    /// Minimum value written so far, `None` before any write.
    pub min: Option<Word>,
}

/// A write-and-f-array over `m` cells with
/// `f(A) = (count written, min value)`.
pub struct WriteAndFArray {
    slots: Vec<AtomicU64>,
    /// Packed `(count, min_enc)` aggregate, merged monotonically.
    root: AtomicU64,
    /// Slot-naming oracle for callers without stable ids.
    ticket: AtomicU64,
}

impl WriteAndFArray {
    /// An array of `m` unwritten cells.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one cell");
        WriteAndFArray {
            slots: (0..m).map(|_| AtomicU64::new(EMPTY)).collect(),
            root: AtomicU64::new(pack_root(0, 0)),
            ticket: AtomicU64::new(0),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the array has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Write `v` into cell `slot` and return the aggregate over the
    /// whole array, atomically at the root merge.
    ///
    /// Cells are single-value-monotone rather than single-writer: a
    /// second write to the same slot keeps the smaller value
    /// (`fetch_min`), which preserves the aggregate's meaning — `min`
    /// is still the min of all values ever written, `count` still the
    /// number of distinct cells touched.
    pub fn write_and_f(&self, slot: usize, v: Word) -> WafView {
        let venc = enc(v);
        let old = self.slots[slot].fetch_min(v, Ordering::SeqCst);
        let first_write = old == EMPTY;
        // Merge into the root: count grows by one on a slot's first
        // write, min shrinks monotonically. The CAS loop is the
        // linearization point; both components only move one way, so a
        // lost race means someone else's merge already advanced the
        // aggregate and we retry against the newer view.
        let mut cur = self.root.load(Ordering::SeqCst);
        loop {
            let (count, min_enc) = unpack_root(cur);
            let new_count = count + u64::from(first_write);
            assert!(new_count <= MAX_COUNT, "write-and-f-array count overflow");
            let new_min = if min_enc == 0 {
                venc
            } else {
                min_enc.min(venc)
            };
            let next = pack_root(new_count, new_min);
            match self
                .root
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return WafView {
                        count: new_count,
                        min: Some(if new_min == 0 {
                            unreachable!()
                        } else {
                            new_min - 1
                        }),
                    }
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Write `v` into a ticket-chosen cell (round-robin naming for
    /// callers without stable slot ids) and return the aggregate.
    pub fn write_and_f_auto(&self, v: Word) -> WafView {
        let slot = (self.ticket.fetch_add(1, Ordering::SeqCst) as usize) % self.slots.len();
        self.write_and_f(slot, v)
    }

    /// Read the current aggregate without writing.
    pub fn read_f(&self) -> WafView {
        let (count, min_enc) = unpack_root(self.root.load(Ordering::SeqCst));
        WafView {
            count,
            min: if min_enc == 0 {
                None
            } else {
                Some(min_enc - 1)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn aggregate_tracks_count_and_min() {
        let a = WriteAndFArray::new(4);
        assert_eq!(
            a.read_f(),
            WafView {
                count: 0,
                min: None
            }
        );
        assert_eq!(
            a.write_and_f(0, 7),
            WafView {
                count: 1,
                min: Some(7)
            }
        );
        assert_eq!(
            a.write_and_f(1, 3),
            WafView {
                count: 2,
                min: Some(3)
            }
        );
        assert_eq!(
            a.write_and_f(2, 9),
            WafView {
                count: 3,
                min: Some(3)
            }
        );
        assert_eq!(
            a.read_f(),
            WafView {
                count: 3,
                min: Some(3)
            }
        );
    }

    #[test]
    fn rewriting_a_slot_keeps_count_and_min_semantics() {
        let a = WriteAndFArray::new(2);
        a.write_and_f(0, 7);
        let v = a.write_and_f(0, 4);
        assert_eq!(
            v,
            WafView {
                count: 1,
                min: Some(4)
            },
            "same slot: count stays"
        );
        let v = a.write_and_f(0, 9);
        assert_eq!(v.min, Some(4), "slots are min-monotone");
    }

    #[test]
    fn auto_slots_rotate() {
        let a = WriteAndFArray::new(2);
        a.write_and_f_auto(5);
        a.write_and_f_auto(6);
        let v = a.read_f();
        assert_eq!(v.count, 2, "two tickets land in two distinct slots");
    }

    #[test]
    #[should_panic(expected = "cannot hold word")]
    fn junk_words_are_refused() {
        let a = WriteAndFArray::new(1);
        a.write_and_f(0, 0xDEAD_BEEF_0000_0001);
    }

    #[test]
    fn concurrent_writes_aggregate_exactly() {
        // n threads each write a distinct slot; the final aggregate
        // must count all n and hold the global min, and every returned
        // view must be consistent (count ≥ 1, min ≤ own value).
        for _ in 0..50 {
            let n = 8usize;
            let a = Arc::new(WriteAndFArray::new(n));
            let views: Vec<(u64, WafView)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let a = Arc::clone(&a);
                        s.spawn(move || {
                            let v = (i as u64) * 3 + 10;
                            (v, a.write_and_f(i, v))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let fin = a.read_f();
            assert_eq!(fin.count, n as u64);
            assert_eq!(fin.min, Some(10));
            for (own, view) in views {
                assert!(view.count >= 1 && view.count <= n as u64);
                assert!(view.min.unwrap() <= own, "aggregate min bounds own write");
            }
            // Views with the full count must report the global min: the
            // root merge is atomic, so the last merge sees everything.
            for (_, view) in views_with_full_count(&a, n) {
                assert_eq!(view.min, Some(10));
            }
        }
    }

    fn views_with_full_count(a: &WriteAndFArray, n: usize) -> Vec<((), WafView)> {
        let v = a.read_f();
        if v.count == n as u64 {
            vec![((), v)]
        } else {
            vec![]
        }
    }
}
