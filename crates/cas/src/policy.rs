//! Fault policies: when does a faulty object take a fault opportunity?
//!
//! Policies are consulted on every CAS invocation on an object in the
//! faulty set (before budget accounting). They are deterministic functions
//! of `(object, per-object operation index, seed)` — lock-free and
//! replayable, so a stress run is reproducible from its seed alone.

use ff_spec::ObjectId;

/// SplitMix64 — a tiny, high-quality mixing function. Used to derive
/// per-operation pseudo-random bits without shared RNG state.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Decides whether a given CAS invocation attempts a fault.
pub trait FaultPolicy: Send + Sync {
    /// Should the `op_index`-th operation on `obj` attempt a fault?
    /// (The attempt is still subject to budget and observability; an
    /// attempted override whose comparison happens to match is a correct
    /// execution and does not count.)
    fn should_fault(&self, obj: ObjectId, op_index: u64) -> bool;
}

/// Never attempt a fault.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverPolicy;

impl FaultPolicy for NeverPolicy {
    fn should_fault(&self, _obj: ObjectId, _op_index: u64) -> bool {
        false
    }
}

/// Attempt a fault on every operation (the budget then bounds how many
/// become actual faults).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysPolicy;

impl FaultPolicy for AlwaysPolicy {
    fn should_fault(&self, _obj: ObjectId, _op_index: u64) -> bool {
        true
    }
}

/// Attempt a fault with probability `p` per operation, derived
/// deterministically from a seed (counter-based: no shared RNG state).
#[derive(Clone, Copy, Debug)]
pub struct ProbabilisticPolicy {
    threshold: u64,
    seed: u64,
}

impl ProbabilisticPolicy {
    /// Fault each operation independently with probability `p ∈ [0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        ProbabilisticPolicy {
            threshold: (p * u64::MAX as f64) as u64,
            seed,
        }
    }
}

impl FaultPolicy for ProbabilisticPolicy {
    fn should_fault(&self, obj: ObjectId, op_index: u64) -> bool {
        let bits = splitmix64(self.seed ^ splitmix64(obj.0 as u64) ^ op_index.rotate_left(17));
        bits <= self.threshold
    }
}

/// Attempt a fault on every `k`-th operation (1-based: `k = 1` means
/// every operation).
#[derive(Clone, Copy, Debug)]
pub struct EveryNthPolicy {
    k: u64,
}

impl EveryNthPolicy {
    /// Fault operations with `op_index % k == k - 1`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        EveryNthPolicy { k }
    }
}

impl FaultPolicy for EveryNthPolicy {
    fn should_fault(&self, _obj: ObjectId, op_index: u64) -> bool {
        op_index % self.k == self.k - 1
    }
}

/// Attempt faults on the first `k` operations on each object — the
/// front-loaded adversary (and, combined with a budget of `t = k`, the
/// bounded-burst pattern the staged protocol of Figure 3 must ride out).
#[derive(Clone, Copy, Debug)]
pub struct FirstKPolicy {
    k: u64,
}

impl FirstKPolicy {
    /// Fault the first `k` operations per object.
    pub fn new(k: u64) -> Self {
        FirstKPolicy { k }
    }
}

impl FaultPolicy for FirstKPolicy {
    fn should_fault(&self, _obj: ObjectId, op_index: u64) -> bool {
        op_index < self.k
    }
}

/// Replays a fixed per-object fault pattern: operation `i` on object `o`
/// attempts a fault iff `patterns[o][i]` is `true` (out-of-range indices
/// are correct). Being a pure function of `(object, op_index)`, the
/// policy is exactly reproducible under any thread interleaving of
/// per-object operation orders.
#[derive(Clone, Debug)]
pub struct ScriptedPolicy {
    patterns: Vec<Vec<bool>>,
}

impl ScriptedPolicy {
    /// Policy from per-object patterns (index = object id).
    pub fn new(patterns: Vec<Vec<bool>>) -> Self {
        ScriptedPolicy { patterns }
    }

    /// Policy applying the same pattern to every object.
    pub fn uniform(pattern: Vec<bool>, objects: usize) -> Self {
        ScriptedPolicy {
            patterns: vec![pattern; objects],
        }
    }
}

impl FaultPolicy for ScriptedPolicy {
    fn should_fault(&self, obj: ObjectId, op_index: u64) -> bool {
        self.patterns
            .get(obj.0)
            .and_then(|p| p.get(op_index as usize))
            .copied()
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_and_always() {
        assert!(!NeverPolicy.should_fault(ObjectId(0), 0));
        assert!(AlwaysPolicy.should_fault(ObjectId(3), 99));
    }

    #[test]
    fn probabilistic_extremes() {
        let p0 = ProbabilisticPolicy::new(0.0, 42);
        let p1 = ProbabilisticPolicy::new(1.0, 42);
        for i in 0..200 {
            assert!(!p0.should_fault(ObjectId(0), i) || i == u64::MAX); // p = 0: (threshold 0 admits only bits == 0, astronomically unlikely; assert none seen)
            assert!(p1.should_fault(ObjectId(0), i));
        }
    }

    #[test]
    fn probabilistic_rate_is_roughly_p() {
        let p = ProbabilisticPolicy::new(0.3, 7);
        let hits = (0..10_000)
            .filter(|&i| p.should_fault(ObjectId(1), i))
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate} far from 0.3");
    }

    #[test]
    fn probabilistic_is_deterministic_in_seed() {
        let a = ProbabilisticPolicy::new(0.5, 9);
        let b = ProbabilisticPolicy::new(0.5, 9);
        let c = ProbabilisticPolicy::new(0.5, 10);
        let pattern = |p: &ProbabilisticPolicy| {
            (0..64)
                .map(|i| p.should_fault(ObjectId(0), i))
                .collect::<Vec<_>>()
        };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c), "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn probabilistic_rejects_bad_p() {
        ProbabilisticPolicy::new(1.5, 0);
    }

    #[test]
    fn every_nth() {
        let p = EveryNthPolicy::new(3);
        let hits: Vec<u64> = (0..9).filter(|&i| p.should_fault(ObjectId(0), i)).collect();
        assert_eq!(hits, vec![2, 5, 8]);
        let every = EveryNthPolicy::new(1);
        assert!((0..5).all(|i| every.should_fault(ObjectId(0), i)));
    }

    #[test]
    fn first_k() {
        let p = FirstKPolicy::new(2);
        assert!(p.should_fault(ObjectId(0), 0));
        assert!(p.should_fault(ObjectId(0), 1));
        assert!(!p.should_fault(ObjectId(0), 2));
    }

    #[test]
    fn scripted_policy_replays_patterns() {
        let p = ScriptedPolicy::new(vec![vec![true, false, true], vec![false, true]]);
        assert!(p.should_fault(ObjectId(0), 0));
        assert!(!p.should_fault(ObjectId(0), 1));
        assert!(p.should_fault(ObjectId(0), 2));
        assert!(!p.should_fault(ObjectId(0), 3), "past the script: correct");
        assert!(!p.should_fault(ObjectId(1), 0));
        assert!(p.should_fault(ObjectId(1), 1));
        assert!(!p.should_fault(ObjectId(2), 0), "unknown object: correct");
    }

    #[test]
    fn scripted_uniform_applies_everywhere() {
        let p = ScriptedPolicy::uniform(vec![true], 3);
        for o in 0..3 {
            assert!(p.should_fault(ObjectId(o), 0));
            assert!(!p.should_fault(ObjectId(o), 1));
        }
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs map to very different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones() as i32 - 32).abs() < 24);
    }
}
