//! Lock-free per-object operation and fault counters.

use ff_spec::ObjectId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one ensemble, indexed by object.
#[derive(Debug)]
pub struct EnsembleStats {
    ops: Vec<AtomicU64>,
    attempted: Vec<AtomicU64>,
    observable: Vec<AtomicU64>,
}

/// A point-in-time view of one object's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObjectStats {
    /// Total CAS invocations.
    pub ops: u64,
    /// Invocations on which the policy attempted a fault (budget granted).
    pub attempted_faults: u64,
    /// Attempts that produced an *observable* fault (a record violating
    /// the standard postconditions — what Definition 1 counts).
    pub observable_faults: u64,
}

impl EnsembleStats {
    /// Zeroed counters for `num_objects` objects.
    pub fn new(num_objects: usize) -> Self {
        let make = || (0..num_objects).map(|_| AtomicU64::new(0)).collect();
        EnsembleStats {
            ops: make(),
            attempted: make(),
            observable: make(),
        }
    }

    /// Number of objects these counters cover.
    pub fn num_objects(&self) -> usize {
        self.ops.len()
    }

    /// Count one operation on `obj` and return its 0-based per-object
    /// operation index (used by fault policies).
    pub fn record_op(&self, obj: ObjectId) -> u64 {
        self.ops[obj.0].fetch_add(1, Ordering::Relaxed)
    }

    /// Count a granted fault attempt.
    pub fn record_attempt(&self, obj: ObjectId) {
        self.attempted[obj.0].fetch_add(1, Ordering::Relaxed);
    }

    /// Count an observable fault.
    pub fn record_observable(&self, obj: ObjectId) {
        self.observable[obj.0].fetch_add(1, Ordering::Relaxed);
    }

    /// Undo a previously recorded attempt that turned out harmless.
    pub fn unrecord_attempt(&self, obj: ObjectId) {
        self.attempted[obj.0].fetch_sub(1, Ordering::Relaxed);
    }

    /// Snapshot one object's counters.
    pub fn object(&self, obj: ObjectId) -> ObjectStats {
        ObjectStats {
            ops: self.ops[obj.0].load(Ordering::Relaxed),
            attempted_faults: self.attempted[obj.0].load(Ordering::Relaxed),
            observable_faults: self.observable[obj.0].load(Ordering::Relaxed),
        }
    }

    /// Snapshot all objects.
    pub fn all(&self) -> Vec<ObjectStats> {
        (0..self.ops.len())
            .map(|i| self.object(ObjectId(i)))
            .collect()
    }

    /// Total observable faults across the ensemble.
    pub fn total_observable(&self) -> u64 {
        self.observable
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of objects with at least one observable fault — the
    /// Definition 2 faulty-object count for this execution.
    pub fn faulty_object_count(&self) -> u64 {
        self.observable
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_are_sequential_per_object() {
        let s = EnsembleStats::new(2);
        assert_eq!(s.record_op(ObjectId(0)), 0);
        assert_eq!(s.record_op(ObjectId(0)), 1);
        assert_eq!(s.record_op(ObjectId(1)), 0, "objects count independently");
    }

    #[test]
    fn fault_counters() {
        let s = EnsembleStats::new(1);
        s.record_op(ObjectId(0));
        s.record_attempt(ObjectId(0));
        s.record_observable(ObjectId(0));
        let o = s.object(ObjectId(0));
        assert_eq!(
            o,
            ObjectStats {
                ops: 1,
                attempted_faults: 1,
                observable_faults: 1
            }
        );
        assert_eq!(s.total_observable(), 1);
        assert_eq!(s.faulty_object_count(), 1);
    }

    #[test]
    fn unrecord_attempt_rolls_back() {
        let s = EnsembleStats::new(1);
        s.record_attempt(ObjectId(0));
        s.unrecord_attempt(ObjectId(0));
        assert_eq!(s.object(ObjectId(0)).attempted_faults, 0);
    }

    #[test]
    fn all_snapshots_every_object() {
        let s = EnsembleStats::new(3);
        s.record_op(ObjectId(2));
        let v = s.all();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].ops, 1);
        assert_eq!(v[0].ops, 0);
    }
}
