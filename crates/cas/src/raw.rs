//! The primitive surface the fault-injection layer needs from an
//! underlying object: CAS plus the `load`/`swap` the fault emulations
//! use at the linearization point.
//!
//! [`FaultyCasArray`](crate::FaultyCasArray) originally hardwired its
//! inner objects to [`AtomicCas`]. Making the inner surface a trait lets
//! the same injection machinery — policies, `(f, t)` budgets,
//! Definition-1 refunds — wrap *any* CAS implementation, in particular
//! the [`KwCas`](crate::KwCas) object built from consensus-number-1
//! primitives, so the paper's fault-tolerant constructions can be
//! composed over weaker substrates (hierarchy corollary, §5.2).
//!
//! Correct protocols never see this trait: they speak
//! [`CasCell`]/[`CasEnsemble`](crate::CasEnsemble), whose only operation
//! is `cas`. `load` and `swap` exist solely so the injector can realize
//! a fault's postcondition (a silent fault reports the old value without
//! writing; an overriding fault writes unconditionally).

use crate::cell::CasCell;
use ff_spec::Word;

/// One CAS object plus the two auxiliary effects fault injection needs.
///
/// `swap` need not be a hardware primitive of the implementation: an
/// object built from weaker primitives may emulate it with a bounded
/// retry loop (lock-free is enough — the injector is the only caller,
/// and a fault that takes a few internal steps to land still realizes
/// the same postcondition atomically at its final step).
pub trait RawCas: CasCell {
    /// Plain load of the current content (used to linearize silent
    /// faults, which touch nothing but must still report the old value).
    fn load(&self) -> Word;

    /// Unconditional exchange — the memory effect of an overriding
    /// fault (`R = val ∧ old = R'`).
    fn swap(&self, new: Word) -> Word;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicCas;
    use ff_spec::BOTTOM;
    use std::sync::Arc;

    #[test]
    fn atomic_cas_implements_raw_surface() {
        let cell: Arc<dyn RawCas> = Arc::new(AtomicCas::new());
        assert_eq!(cell.load(), BOTTOM);
        assert_eq!(cell.cas(BOTTOM, 5), BOTTOM);
        assert_eq!(cell.swap(9), 5);
        assert_eq!(cell.load(), 9);
    }
}
