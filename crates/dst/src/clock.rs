//! Simulated time: a logical nanosecond counter advanced only by the
//! event loop.
//!
//! Nothing in a simulation run reads the host clock. Latencies,
//! timeouts and fault windows are all expressed in simulated
//! nanoseconds, so a run that takes 2 simulated seconds completes in
//! however few host milliseconds the work itself needs — and two runs
//! of the same scenario and seed pass through exactly the same
//! timestamps.

/// The simulation clock. Only [`SimClock::advance_to`] moves it, and
/// only forward — the event loop calls it with each popped event's
/// timestamp.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    nanos: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.nanos
    }

    /// Advance to `nanos`. Panics on a backwards jump — the event heap
    /// guarantees nondecreasing pop order, so a violation here is a
    /// scheduler bug, not a recoverable condition.
    pub fn advance_to(&mut self, nanos: u64) {
        assert!(
            nanos >= self.nanos,
            "simulated time moved backwards: {} -> {nanos}",
            self.nanos
        );
        self.nanos = nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        c.advance_to(5);
        c.advance_to(5);
        c.advance_to(9);
        assert_eq!(c.now(), 9);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn refuses_backwards_jumps() {
        let mut c = SimClock::new();
        c.advance_to(5);
        c.advance_to(4);
    }
}
