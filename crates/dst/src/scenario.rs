//! The scenario corpus: seeded, replayable crash-and-partition
//! campaigns against the real stack.
//!
//! Every scenario runs twice-armed. The net scenarios pit the paper's
//! **robust** backend against the **naive** one under identical fault
//! schedules; kill-the-combiner pits the **lease**d combiner recovery
//! rule against running with the lease off. The contract is always the
//! same shape:
//!
//! * the robust/lease arm must end [`Store::verify`]-consistent with
//!   every workload process past its completion floor, and
//! * the naive/nolease arm must be *caught* — a verify failure, a
//!   divergence flag, a divergence error frame at a client, or a
//!   stalled worker — never silently wrong.
//!
//! Scenarios schedule faults and workloads as separate event streams on
//! one heap, so the same workload can be rerun under a different fault
//! plane (that is what replaying a minimized [`FaultScript`] does).

use ff_store::{Backend, FaultConfig, Store, StoreConfig};

use crate::net::{FaultRates, NetConfig, ScriptMode};
use crate::process::{ClientCfg, Proc};
use crate::runner::{EvKind, ProcSpec, RunReport, Sim};
use crate::trace::FaultScript;

/// One microsecond in simulated nanoseconds.
pub const US: u64 = 1_000;
/// One millisecond in simulated nanoseconds.
pub const MS: u64 = 1_000_000;

/// One corpus entry.
pub struct ScenarioDef {
    /// Registry name (`run_scenario` key).
    pub name: &'static str,
    /// Its arms, well-behaved first; `naive`/`nolease` arms must be
    /// caught.
    pub arms: &'static [&'static str],
    /// One-line description.
    pub about: &'static str,
}

/// The whole corpus.
pub const CORPUS: &[ScenarioDef] = &[
    ScenarioDef {
        name: "partition-ramp",
        arms: &["robust", "naive"],
        about: "bidirectional rack partition while the store fault rate ramps 0.1 -> 0.4",
    },
    ScenarioDef {
        name: "kill-checkpoint",
        arms: &["robust", "naive"],
        about: "kill and restart the server while checkpoint truncation is hot",
    },
    ScenarioDef {
        name: "restart-drain",
        arms: &["robust", "naive"],
        about: "kill a client with responses in flight on a slow, duplicating fabric",
    },
    ScenarioDef {
        name: "kill-combiner",
        arms: &["lease", "nolease"],
        about: "kill the combiner between claim and execute; lease must recover the parked ops",
    },
    ScenarioDef {
        name: "kill-recover",
        arms: &["robust", "torn", "naive"],
        about: "kill a durable server mid-serve; the respawn must recover its store from the \
                machine's surviving WAL bytes (torn: power loss tears the in-flight group commit; \
                naive: recovery replay diverges and must be refused)",
    },
];

/// Arms of `scenario`, well-behaved arm(s) first.
pub fn arms(scenario: &str) -> &'static [&'static str] {
    CORPUS
        .iter()
        .find(|d| d.name == scenario)
        .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"))
        .arms
}

/// Resolve a backend-named arm through the substrate registry: any
/// registered substrate is a valid arm. The fault rate follows the
/// substrate's declared expectation — substrates expected to survive
/// their faults run at a modest 0.05 so the scenario's own chaos stays
/// the protagonist; the broken witness runs hot at 0.3 so its
/// divergence is caught within the scenario's horizon.
fn backend_for(arm: &str) -> (Backend, f64) {
    let backend: Backend = arm
        .parse()
        .unwrap_or_else(|e| panic!("unknown backend arm: {e}"));
    let rate = if backend.expected_consistent() {
        0.05
    } else {
        0.3
    };
    (backend, rate)
}

/// Per-role completion floor (a stalled process is a violation even
/// when the data stays consistent — liveness is part of the contract).
struct Floor {
    role: &'static str,
    min: u64,
}

fn finish(sim: &Sim, scenario: &str, arm: &str, seed: u64, floors: &[Floor]) -> RunReport {
    // Every store in the world must verify: the shared one plus any
    // live durable server's recovered store.
    let mut verify_reports = vec![sim.store.verify(&mut [])];
    let mut recovered = (0u64, 0u64, 0u64);
    let mut wal_failed = false;
    for p in sim.all_procs() {
        if let Proc::DurableServer(d) = p {
            if let Some(store) = &d.store {
                verify_reports.push(store.verify(&mut []));
                wal_failed |= store.durability_error().is_some();
                recovered = (
                    d.recovery.checkpoints_loaded(),
                    d.recovery.records_replayed(),
                    d.recovery.torn_tails(),
                );
            }
        }
    }
    let consistent = verify_reports.iter().all(|r| r.all_consistent());
    let shard_flag = verify_reports
        .iter()
        .any(|r| r.per_shard.iter().any(|s| s.divergence_flag));
    let mut divergence_seen = 0u64;
    let mut completed = 0u64;
    for p in sim.all_procs() {
        match p {
            Proc::Client(c) => {
                divergence_seen += c.divergence_seen;
                completed += c.completed;
            }
            Proc::Worker(w) => {
                divergence_seen += w.divergence_seen;
                completed += w.completed;
            }
            Proc::Server(_) | Proc::DurableServer(_) | Proc::Combiner(_) => {}
        }
    }
    let flagged = !consistent
        || shard_flag
        || sim.flags.server_divergence > 0
        || divergence_seen > 0
        || sim.flags.recovery_refused > 0
        || wal_failed;
    let mut violations = Vec::new();
    if !consistent {
        let diverged: Vec<usize> = verify_reports
            .iter()
            .flat_map(|r| r.diverged_shards())
            .collect();
        violations.push(format!("verify-inconsistent shards={diverged:?}"));
    }
    if wal_failed {
        violations.push("write-ahead log failed mid-serve".to_string());
    }
    if sim.flags.recovery_refused > 0 {
        violations.push(format!(
            "recovery refused {} time(s): WAL replay diverged, role left down",
            sim.flags.recovery_refused
        ));
    }
    for floor in floors {
        let done = match sim.proc_by_role(floor.role) {
            Some(Proc::Client(c)) => c.completed,
            Some(Proc::Worker(w)) => w.completed,
            Some(_) => continue,
            None => {
                violations.push(format!("stall:{} dead at end of run", floor.role));
                continue;
            }
        };
        if done < floor.min {
            violations.push(format!(
                "stall:{} completed={done}/{}",
                floor.role, floor.min
            ));
        }
    }
    RunReport {
        scenario: scenario.to_string(),
        arm: arm.to_string(),
        seed,
        events: sim.events(),
        decisions: sim.net.decisions(),
        trace_hash: sim.trace.hash(),
        trace: sim.trace.lines().to_vec(),
        consistent,
        flagged,
        violations,
        completed,
        recovery_refused: sim.flags.recovery_refused,
        recovered_checkpoints: recovered.0,
        recovered_records: recovered.1,
        recovered_torn: recovered.2,
        script: match sim.net.recorded().is_empty() {
            true => FaultScript::new(),
            false => sim.net.recorded().clone(),
        },
    }
}

fn client_cfg() -> ClientCfg {
    ClientCfg {
        keyspace: 512,
        batch: 6,
        timeout: 20 * MS,
        think: 100 * US,
        target: u64::MAX, // run until the horizon; floors check liveness
    }
}

fn store_with(shards: usize, checkpoint: usize, arm: &str, seed: u64) -> Store {
    let (backend, rate) = backend_for(arm);
    // Rotated kinds matter here: the simulation is single-threaded, so
    // overriding faults on uncontended CASes are indistinguishable from
    // correct executions (Definition 1) — silent and arbitrary kinds
    // are what a lone proposer can observably suffer.
    Store::new(
        StoreConfig::builder()
            .shards(shards)
            .backend(backend)
            .fault(FaultConfig {
                rate,
                ..FaultConfig::default()
            })
            .rotate_kinds(true)
            .checkpoint_interval(checkpoint)
            .combining(true)
            .combiner_lease(true)
            .reclaim_after(8)
            .seed(seed)
            .build()
            .expect("scenario store config"),
    )
}

fn partition_ramp(arm: &str, seed: u64, mode: ScriptMode) -> RunReport {
    let store = store_with(4, 32, arm, seed);
    let mut sim = Sim::new(store, NetConfig::default(), seed, 300 * MS, mode);
    let rack_a = sim.topo.machine("rack-a");
    let rack_b = sim.topo.machine("rack-b");
    sim.spawn(ProcSpec::Server {
        machine: rack_a,
        role: "server".into(),
    });
    for (i, machine) in [rack_a, rack_a, rack_b, rack_b].into_iter().enumerate() {
        sim.spawn(ProcSpec::Client {
            machine,
            role: format!("client-{i}"),
            server_role: "server".into(),
            cfg: client_cfg(),
        });
    }
    sim.at(
        0,
        EvKind::SetNetRates(FaultRates {
            drop: 0.01,
            duplicate: 0.005,
            delay: 0.01,
            reorder: 0.005,
        }),
    );
    // The ramp: the store's own fault plane heats up underneath the
    // partition.
    sim.at(60 * MS, EvKind::SetStoreFaultRate(0.1));
    sim.at(120 * MS, EvKind::SetStoreFaultRate(0.2));
    sim.at(180 * MS, EvKind::SetStoreFaultRate(0.4));
    sim.at(
        100 * MS,
        EvKind::Partition {
            a: rack_a,
            b: rack_b,
            on: true,
        },
    );
    sim.at(
        160 * MS,
        EvKind::Partition {
            a: rack_a,
            b: rack_b,
            on: false,
        },
    );
    sim.run();
    finish(
        &sim,
        "partition-ramp",
        arm,
        seed,
        &[
            Floor {
                role: "client-0",
                min: 20,
            },
            Floor {
                role: "client-1",
                min: 20,
            },
            // rack-b spends 60 ms cut off; lower floor.
            Floor {
                role: "client-2",
                min: 10,
            },
            Floor {
                role: "client-3",
                min: 10,
            },
        ],
    )
}

fn kill_checkpoint(arm: &str, seed: u64, mode: ScriptMode) -> RunReport {
    let store = store_with(2, 16, arm, seed);
    let mut sim = Sim::new(store, NetConfig::default(), seed, 300 * MS, mode);
    let rack_a = sim.topo.machine("rack-a");
    let rack_b = sim.topo.machine("rack-b");
    sim.spawn(ProcSpec::Server {
        machine: rack_a,
        role: "server".into(),
    });
    for i in 0..3 {
        sim.spawn(ProcSpec::Client {
            machine: rack_b,
            role: format!("client-{i}"),
            server_role: "server".into(),
            cfg: client_cfg(),
        });
    }
    sim.at(
        0,
        EvKind::SetNetRates(FaultRates {
            drop: 0.005,
            duplicate: 0.005,
            delay: 0.0,
            reorder: 0.0,
        }),
    );
    // Aggressive checkpoint interval keeps truncation hot; the kill
    // lands with sessions open and a respawn reattaches to the same
    // durable store.
    sim.at(120 * MS, EvKind::Kill("server".into()));
    sim.at(
        140 * MS,
        EvKind::Spawn(ProcSpec::Server {
            machine: rack_a,
            role: "server".into(),
        }),
    );
    sim.run();
    finish(
        &sim,
        "kill-checkpoint",
        arm,
        seed,
        &[
            Floor {
                role: "client-0",
                min: 20,
            },
            Floor {
                role: "client-1",
                min: 20,
            },
            Floor {
                role: "client-2",
                min: 20,
            },
        ],
    )
}

fn restart_drain(arm: &str, seed: u64, mode: ScriptMode) -> RunReport {
    let store = store_with(4, 32, arm, seed);
    let mut sim = Sim::new(store, NetConfig::default(), seed, 300 * MS, mode);
    let rack_a = sim.topo.machine("rack-a");
    let rack_b = sim.topo.machine("rack-b");
    sim.spawn(ProcSpec::Server {
        machine: rack_a,
        role: "server".into(),
    });
    for i in 0..3 {
        sim.spawn(ProcSpec::Client {
            machine: rack_b,
            role: format!("client-{i}"),
            server_role: "server".into(),
            cfg: client_cfg(),
        });
    }
    // Slow, duplicating fabric: the kill lands while responses (and
    // duplicates of them) are still in flight toward the dead process.
    sim.at(
        0,
        EvKind::SetNetRates(FaultRates {
            drop: 0.01,
            duplicate: 0.02,
            delay: 0.05,
            reorder: 0.01,
        }),
    );
    sim.at(100 * MS, EvKind::Kill("client-0".into()));
    sim.at(
        120 * MS,
        EvKind::Spawn(ProcSpec::Client {
            machine: rack_b,
            role: "client-0".into(),
            server_role: "server".into(),
            cfg: client_cfg(),
        }),
    );
    sim.run();
    finish(
        &sim,
        "restart-drain",
        arm,
        seed,
        &[
            // The respawned incarnation only gets the back half.
            Floor {
                role: "client-0",
                min: 10,
            },
            Floor {
                role: "client-1",
                min: 20,
            },
            Floor {
                role: "client-2",
                min: 20,
            },
        ],
    )
}

fn kill_combiner(arm: &str, seed: u64, mode: ScriptMode) -> RunReport {
    let lease = match arm {
        "lease" => true,
        "nolease" => false,
        other => panic!("unknown lease arm {other:?}"),
    };
    let store = Store::new(
        StoreConfig::builder()
            .shards(1)
            .backend(Backend::reliable())
            .checkpoint_interval(64)
            .combining(true)
            .combiner_lease(lease)
            .reclaim_after(8)
            .seed(seed)
            .build()
            .expect("kill-combiner store config"),
    );
    // Store-level scenario: no network. 50 simulated ms is an eternity
    // at these cadences.
    let mut sim = Sim::new(store, NetConfig::default(), seed, 50 * MS, mode);
    let core = sim.topo.machine("core");
    sim.spawn(ProcSpec::Combiner {
        machine: core,
        role: "combiner".into(),
        interval: 100 * US,
    });
    for i in 0..3 {
        sim.spawn(ProcSpec::Worker {
            machine: core,
            role: format!("worker-{i}"),
            shard: 0,
            keys: (0..64).collect(), // one shard: every key routes there
            poll_interval: 50 * US,
            escalate_after: 16,
            target: 60,
        });
    }
    // The kill window: the combiner claims on one wake and executes on
    // the next, so a kill between two wakes can land on a held ticket.
    // At this seed it does — the claimed ops are parked mid-flight.
    sim.at(5 * MS + 160 * US, EvKind::Kill("combiner".into()));
    sim.at(
        6 * MS,
        EvKind::Spawn(ProcSpec::Combiner {
            machine: core,
            role: "combiner".into(),
            interval: 100 * US,
        }),
    );
    sim.run();
    finish(
        &sim,
        "kill-combiner",
        arm,
        seed,
        &[
            Floor {
                role: "worker-0",
                min: 60,
            },
            Floor {
                role: "worker-1",
                min: 60,
            },
            Floor {
                role: "worker-2",
                min: 60,
            },
        ],
    )
}

fn kill_recover(arm: &str, seed: u64, mode: ScriptMode) -> RunReport {
    // "torn" is the robust substrate under a power-loss kill; every
    // other arm resolves through the substrate registry (robust cells
    // re-decide logged history faithfully on replay; naive cells under
    // faults mutate re-ingested decisions, so recovery's digest
    // cross-check must refuse the respawn).
    let (backend, rate) = if arm == "torn" {
        (Backend::robust(), 0.05)
    } else {
        backend_for(arm)
    };
    // The durable server's own config: no data dir — the machine's
    // SimDisk is the medium. Small group commit keeps fsync boundaries
    // hot; rotate_cost 0 makes checkpoint rotation deterministic.
    // Three shards so the kind rotation reaches *arbitrary* faults:
    // overriding and silent cells cannot corrupt a single-proposer
    // replay (a fresh cell at BOTTOM just accepts the sole proposal),
    // so the naive arm's refused-recovery discriminator lives on the
    // arbitrary-kind shard, where junk swapped into the cell trips the
    // replay's double-decide read-back.
    let config = StoreConfig::builder()
        .shards(3)
        .backend(backend)
        .fault(FaultConfig {
            rate,
            ..FaultConfig::default()
        })
        .rotate_kinds(true)
        .checkpoint_interval(16)
        .combining(true)
        .combiner_lease(true)
        .reclaim_after(8)
        .seed(seed)
        .group_commit(4)
        .rotate_cost(0)
        .build()
        .expect("kill-recover store config");
    // The sim's shared store frames the world but carries no workload
    // here — every transaction flows through the durable server's own.
    let frame = Store::new(
        StoreConfig::builder()
            .shards(1)
            .backend(Backend::reliable())
            .seed(seed)
            .build()
            .expect("kill-recover frame store config"),
    );
    let mut sim = Sim::new(frame, NetConfig::default(), seed, 300 * MS, mode);
    let rack_a = sim.topo.machine("rack-a");
    let rack_b = sim.topo.machine("rack-b");
    sim.spawn(ProcSpec::DurableServer {
        machine: rack_a,
        role: "server".into(),
        config: config.clone(),
    });
    for i in 0..3 {
        sim.spawn(ProcSpec::Client {
            machine: rack_b,
            role: format!("client-{i}"),
            server_role: "server".into(),
            cfg: client_cfg(),
        });
    }
    sim.at(
        0,
        EvKind::SetNetRates(FaultRates {
            drop: 0.005,
            duplicate: 0.005,
            delay: 0.0,
            reorder: 0.0,
        }),
    );
    // The kill lands mid-serve with the WAL hot. The torn arm is a
    // power failure: the in-flight group commit survives only as a
    // torn prefix, which recovery must truncate — landing exactly on
    // the last completed fsync. The respawn recovers from the disk.
    let fault = if arm == "torn" {
        EvKind::PowerFail("server".into())
    } else {
        EvKind::Kill("server".into())
    };
    sim.at(120 * MS, fault);
    sim.at(
        140 * MS,
        EvKind::Spawn(ProcSpec::DurableServer {
            machine: rack_a,
            role: "server".into(),
            config,
        }),
    );
    sim.run();
    let mut report = finish(
        &sim,
        "kill-recover",
        arm,
        seed,
        &[
            Floor {
                role: "client-0",
                min: 20,
            },
            Floor {
                role: "client-1",
                min: 20,
            },
            Floor {
                role: "client-2",
                min: 20,
            },
        ],
    );
    // Arm contracts beyond the generic ones: the respawn must actually
    // have recovered state (an empty WAL at the kill would prove
    // nothing), and the torn arm's tear must have been detected.
    if matches!(arm, "robust" | "torn") {
        if report.recovered_checkpoints + report.recovered_records == 0 {
            report
                .violations
                .push("recovery replayed nothing (WAL empty at the kill)".to_string());
        }
        if arm == "torn" && report.recovered_torn == 0 {
            report
                .violations
                .push("torn tail not detected by recovery".to_string());
        }
    }
    report
}

/// Run one `(scenario, arm)` at `seed`. `mode` selects recording fresh
/// fault decisions or replaying a (possibly minimized) script.
pub fn run_scenario(name: &str, arm: &str, seed: u64, mode: ScriptMode) -> RunReport {
    match name {
        "partition-ramp" => partition_ramp(arm, seed, mode),
        "kill-checkpoint" => kill_checkpoint(arm, seed, mode),
        "restart-drain" => restart_drain(arm, seed, mode),
        "kill-combiner" => kill_combiner(arm, seed, mode),
        "kill-recover" => kill_recover(arm, seed, mode),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// Did this arm behave as its contract demands?
///
/// * The scenario-specific arms: `lease`/`torn` are well-behaved (no
///   violations, nothing flagged — for `torn` that includes the
///   kill-recover scenario's extra checks); `nolease`'s parked
///   operations must show up as a stall.
/// * Substrate arms resolve through the registry and inherit the
///   substrate's contract: consistency-promising substrates (`robust`,
///   `kw-robust`, …) must end clean, broken witnesses (`naive`) must
///   have divergence flagged somewhere — in kill-recover, the refused
///   recovery of the respawn.
pub fn arm_ok(report: &RunReport) -> bool {
    match report.arm.as_str() {
        "lease" | "torn" => report.violations.is_empty() && !report.flagged,
        "nolease" => report.violations.iter().any(|v| v.starts_with("stall:")),
        arm => match arm.parse::<Backend>() {
            Ok(backend) if backend.expected_consistent() => {
                report.violations.is_empty() && !report.flagged
            }
            Ok(_) => report.flagged,
            Err(_) => false,
        },
    }
}
