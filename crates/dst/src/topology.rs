//! The simulated datacenter: machines hosting processes.
//!
//! The hierarchy is deliberately thin — a machine is a failure and
//! partition domain, a process is a schedulable state machine — because
//! everything interesting (what a process *does*) lives in
//! [`process`](crate::process), and everything a machine *means* is
//! expressed by which faults can hit it: partitions cut machine pairs,
//! kills take down single processes.

/// One machine in the simulated datacenter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

/// One process, pinned to a machine for its whole life (restarts mint a
/// new [`ProcId`] on the same machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The datacenter layout: which process runs where, under what label.
#[derive(Default)]
pub struct Topology {
    machines: Vec<String>,
    processes: Vec<(MachineId, String)>,
}

impl Topology {
    /// An empty datacenter.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a machine.
    pub fn machine(&mut self, name: impl Into<String>) -> MachineId {
        self.machines.push(name.into());
        MachineId(self.machines.len() as u32 - 1)
    }

    /// Add a process on `machine`.
    pub fn process(&mut self, machine: MachineId, name: impl Into<String>) -> ProcId {
        assert!(
            (machine.0 as usize) < self.machines.len(),
            "no such machine"
        );
        self.processes.push((machine, name.into()));
        ProcId(self.processes.len() as u32 - 1)
    }

    /// The machine hosting `proc`.
    pub fn machine_of(&self, proc: ProcId) -> MachineId {
        self.processes[proc.0 as usize].0
    }

    /// Human label of `proc` (for traces).
    pub fn label(&self, proc: ProcId) -> &str {
        &self.processes[proc.0 as usize].1
    }

    /// Number of processes ever created (dead ones included).
    pub fn procs(&self) -> usize {
        self.processes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_know_their_machine() {
        let mut t = Topology::new();
        let a = t.machine("rack-a");
        let b = t.machine("rack-b");
        let p = t.process(a, "server");
        let q = t.process(b, "client-0");
        assert_eq!(t.machine_of(p), a);
        assert_eq!(t.machine_of(q), b);
        assert_eq!(t.label(q), "client-0");
        assert_eq!(t.procs(), 2);
    }
}
