//! # ff-dst — deterministic whole-system simulation
//!
//! A FoundationDB-style simulator that runs the **real** stack — the
//! [`ff_store::Store`] with combining on, and `ff-net`'s actual wire
//! codec and [`Session`](ff_net::Session) protocol state machine — on
//! top of a simulated datacenter, and then does its best to kill it:
//! process crashes, restarts, machine partitions, dropped / duplicated
//! / delayed / reordered network chunks, and live fault-rate ramps in
//! the store's own functional-fault plane.
//!
//! Everything is a pure function of `(scenario, seed, fault script)`:
//!
//! * time is a logical nanosecond counter ([`clock`]) advanced only by
//!   the event loop,
//! * every random decision comes from a seeded, labeled-fork PRNG
//!   ([`rng`]) — fault, jitter and workload streams are independent so
//!   one subsystem's extra draws never shift another's,
//! * the fabric ([`net`]) records every fault decision into a
//!   [`FaultScript`](trace::FaultScript) that replays bit-identically,
//!   and a failing script shrinks to a 1-minimal golden trace with
//!   [`trace::minimize`].
//!
//! | module | contents |
//! |---|---|
//! | [`clock`] | [`SimClock`]: advance-only logical time |
//! | [`rng`] | [`SimRng`]: splitmix64 PRNG with labeled forks |
//! | [`topology`] | machines and processes — failure and partition domains |
//! | [`disk`] | [`SimDisk`]: per-machine durable bytes that survive kills, with torn power-fail semantics |
//! | [`net`] | [`SimNet`]: the lossy fabric, fault decisions, record/replay |
//! | [`process`] | server / durable-server / client / worker / combiner state machines |
//! | [`runner`] | [`Sim`]: the event heap, kills, power-fails, respawns, the run loop |
//! | [`scenario`] | the seeded scenario corpus and per-arm contracts |
//! | [`trace`] | fault scripts, trace fingerprints, ddmin minimization, golden traces |
//!
//! The point, in the paper's terms: the store's fault-tolerant
//! constructions are exercised by *systemic* faults (crashed combiners,
//! dead servers, partitioned racks) layered on the *functional* faults
//! they were built for — and the simulator checks the contract that
//! robust arms stay consistent and live while naive arms are always
//! flagged, never silently wrong.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod disk;
pub mod net;
pub mod process;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod trace;

pub mod experiment;
pub mod topology;

pub use clock::SimClock;
pub use disk::SimDisk;
pub use experiment::{E19Dst, E20Recovery};
pub use net::{ConnId, FaultRates, NetConfig, Payload, ScriptMode, SimNet};
pub use process::{ClientCfg, Proc, RunFlags};
pub use rng::SimRng;
pub use runner::{EvKind, ProcSpec, RunReport, Sim};
pub use scenario::{arm_ok, arms, run_scenario, CORPUS};
pub use topology::{MachineId, ProcId, Topology};
pub use trace::{minimize, FaultAction, FaultScript, GoldenTrace, Trace};
