//! Traces, fault scripts, and the minimizer that turns a failing seed
//! into a small committed artifact.
//!
//! # Traces
//!
//! A [`Trace`] is the run's decision log: one line per scheduler-visible
//! event (fault firing, kill, partition, transaction completion,
//! violation). Determinism is *defined* over it — same scenario, same
//! seed, same [`FaultScript`] must produce a byte-identical trace (and
//! therefore the same [`Trace::hash`]), whatever host or thread count
//! ran it.
//!
//! # Fault scripts
//!
//! Every probabilistic network decision is numbered by a global decision
//! index. In **record** mode the RNG decides and every non-default
//! outcome (drop, duplicate, delay, reorder) is written down as
//! `(decision index, action)`. In **replay** mode the script *is* the
//! decision: listed indices perform their recorded action, all other
//! decisions deliver normally and consume no randomness — which is what
//! makes scripts shrinkable.
//!
//! # Minimization
//!
//! [`minimize`] is a ddmin-lite over the script's fault set: drop
//! complement halves while the violation still reproduces, then try
//! removing each survivor alone. The fixpoint is a 1-minimal fault set —
//! the committed "golden trace" a regression test replays forever after.

use ff_workload::JsonValue;

/// What the network does to one chunk, at one decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally (the default for unlisted decisions).
    Deliver,
    /// The chunk vanishes.
    Drop,
    /// The chunk arrives twice.
    Duplicate,
    /// The chunk arrives `arg` × base-latency late (FIFO order kept).
    Delay(u32),
    /// The chunk bypasses the FIFO clamp and may overtake earlier ones.
    Reorder,
}

impl FaultAction {
    /// Stable name for traces and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::Deliver => "deliver",
            FaultAction::Drop => "drop",
            FaultAction::Duplicate => "duplicate",
            FaultAction::Delay(_) => "delay",
            FaultAction::Reorder => "reorder",
        }
    }

    fn arg(&self) -> u32 {
        match self {
            FaultAction::Delay(n) => *n,
            _ => 0,
        }
    }

    fn from_parts(name: &str, arg: u32) -> Option<FaultAction> {
        Some(match name {
            "deliver" => FaultAction::Deliver,
            "drop" => FaultAction::Drop,
            "duplicate" => FaultAction::Duplicate,
            "delay" => FaultAction::Delay(arg),
            "reorder" => FaultAction::Reorder,
            _ => return None,
        })
    }
}

/// A recorded (or replayed) fault schedule: decision index → action.
/// Indices absent from the map deliver normally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultScript {
    entries: Vec<(u64, FaultAction)>,
}

impl FaultScript {
    /// An empty script (every decision delivers).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Record `action` at `decision`. Indices must arrive in increasing
    /// order (the decision counter is monotone).
    pub fn record(&mut self, decision: u64, action: FaultAction) {
        if action == FaultAction::Deliver {
            return;
        }
        debug_assert!(self.entries.last().is_none_or(|&(d, _)| d < decision));
        self.entries.push((decision, action));
    }

    /// The scripted action at `decision`.
    pub fn action_at(&self, decision: u64) -> FaultAction {
        match self.entries.binary_search_by_key(&decision, |&(d, _)| d) {
            Ok(i) => self.entries[i].1,
            Err(_) => FaultAction::Deliver,
        }
    }

    /// Number of scripted (non-deliver) faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No scripted faults at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scripted entries, in decision order.
    pub fn entries(&self) -> &[(u64, FaultAction)] {
        &self.entries
    }

    /// A script keeping only the entries at `keep` (indices into
    /// [`FaultScript::entries`]).
    fn subset(&self, keep: &[usize]) -> FaultScript {
        FaultScript {
            entries: keep.iter().map(|&i| self.entries[i]).collect(),
        }
    }

    /// Serialize for a golden-trace file.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(
            self.entries
                .iter()
                .map(|&(d, a)| {
                    JsonValue::Object(vec![
                        ("decision".into(), JsonValue::Number(d as f64)),
                        ("action".into(), JsonValue::String(a.name().into())),
                        ("arg".into(), JsonValue::Number(a.arg() as f64)),
                    ])
                })
                .collect(),
        )
    }

    /// Parse a script back from golden-trace JSON.
    pub fn from_json(v: &JsonValue) -> Option<FaultScript> {
        let JsonValue::Array(items) = v else {
            return None;
        };
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            let JsonValue::Object(fields) = item else {
                return None;
            };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            let decision = match get("decision")? {
                JsonValue::Number(n) => *n as u64,
                _ => return None,
            };
            let arg = match get("arg") {
                Some(JsonValue::Number(n)) => *n as u32,
                _ => 0,
            };
            let action = match get("action")? {
                JsonValue::String(s) => FaultAction::from_parts(s, arg)?,
                _ => return None,
            };
            entries.push((decision, action));
        }
        entries.sort_by_key(|&(d, _)| d);
        Some(FaultScript { entries })
    }
}

/// The run's decision log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    lines: Vec<String>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append one event line, stamped with simulated time.
    pub fn log(&mut self, now: u64, line: impl AsRef<str>) {
        self.lines.push(format!("t={now} {}", line.as_ref()));
    }

    /// All lines, in order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// FNV-1a over every line — the determinism fingerprint.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &self.lines {
            for &b in line.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= b'\n' as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Shrink `script` to a 1-minimal fault set: `reproduces` must return
/// whether replaying the candidate script still triggers the violation
/// (it is always called with strictly smaller scripts than its last
/// accepted one, so minimization terminates). Returns the smallest
/// accepted script.
pub fn minimize(
    script: &FaultScript,
    mut reproduces: impl FnMut(&FaultScript) -> bool,
) -> FaultScript {
    let mut keep: Vec<usize> = (0..script.len()).collect();
    // Phase 1: ddmin-style complement reduction — try dropping half the
    // survivors at a time, refining granularity when stuck.
    let mut chunk = keep.len().div_ceil(2).max(1);
    while keep.len() > 1 && chunk >= 1 {
        let mut reduced = false;
        let mut start = 0;
        while start < keep.len() {
            let end = (start + chunk).min(keep.len());
            let candidate: Vec<usize> = keep[..start]
                .iter()
                .chain(keep[end..].iter())
                .copied()
                .collect();
            if (!candidate.is_empty() || script.is_empty())
                && reproduces(&script.subset(&candidate))
            {
                keep = candidate;
                reduced = true;
                continue; // same start, next window shifted already
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            chunk = chunk.div_ceil(2).min(keep.len().saturating_sub(1).max(1));
            if chunk == 0 {
                break;
            }
        } else {
            chunk = chunk.min(keep.len().div_ceil(2).max(1));
        }
    }
    // Phase 2: 1-minimality — no single survivor is removable.
    let mut i = 0;
    while keep.len() > 1 && i < keep.len() {
        let mut candidate = keep.clone();
        candidate.remove(i);
        if reproduces(&script.subset(&candidate)) {
            keep = candidate;
        } else {
            i += 1;
        }
    }
    // An empty script that still reproduces means the violation is not
    // fault-driven at all.
    if keep.len() == 1 && reproduces(&script.subset(&[])) {
        keep.clear();
    }
    script.subset(&keep)
}

/// One committed golden trace: the minimized script plus everything a
/// regression test needs to replay it.
#[derive(Clone, Debug, PartialEq)]
pub struct GoldenTrace {
    /// Scenario name ([`crate::scenario`] registry).
    pub scenario: String,
    /// Arm the violation manifests on (e.g. `naive`, `nolease`).
    pub arm: String,
    /// Root seed of the recorded run.
    pub seed: u64,
    /// Violation the replay must reproduce (a [`crate::runner::RunReport`]
    /// violation string prefix).
    pub violation: String,
    /// The minimized fault schedule.
    pub script: FaultScript,
    /// Trace hash of the minimized failing run (fingerprint only — the
    /// replay asserts the violation, not the hash, so unrelated trace
    /// format changes don't invalidate golden files).
    pub trace_hash: String,
}

impl GoldenTrace {
    /// Render the golden-trace file.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("scenario".into(), JsonValue::String(self.scenario.clone())),
            ("arm".into(), JsonValue::String(self.arm.clone())),
            ("seed".into(), JsonValue::Number(self.seed as f64)),
            (
                "violation".into(),
                JsonValue::String(self.violation.clone()),
            ),
            ("faults".into(), self.script.to_json()),
            (
                "trace_hash".into(),
                JsonValue::String(self.trace_hash.clone()),
            ),
        ])
        .render()
    }

    /// Parse a committed golden-trace file.
    pub fn from_json(s: &str) -> Option<GoldenTrace> {
        let JsonValue::Object(fields) = JsonValue::parse(s).ok()? else {
            return None;
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let string = |k: &str| match get(k) {
            Some(JsonValue::String(s)) => Some(s.clone()),
            _ => None,
        };
        Some(GoldenTrace {
            scenario: string("scenario")?,
            arm: string("arm")?,
            seed: match get("seed")? {
                JsonValue::Number(n) => *n as u64,
                _ => return None,
            },
            violation: string("violation")?,
            script: FaultScript::from_json(get("faults")?)?,
            trace_hash: string("trace_hash")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_round_trips_through_json() {
        let mut s = FaultScript::new();
        s.record(3, FaultAction::Drop);
        s.record(9, FaultAction::Delay(5));
        s.record(20, FaultAction::Reorder);
        let back = FaultScript::from_json(&s.to_json()).expect("parses");
        assert_eq!(s, back);
        assert_eq!(back.action_at(9), FaultAction::Delay(5));
        assert_eq!(back.action_at(10), FaultAction::Deliver);
    }

    #[test]
    fn minimize_finds_the_single_culprit() {
        let mut s = FaultScript::new();
        for d in 0..32 {
            s.record(d, FaultAction::Drop);
        }
        // Only decision 17 matters.
        let min = minimize(&s, |cand| cand.action_at(17) == FaultAction::Drop);
        assert_eq!(min.len(), 1);
        assert_eq!(min.entries()[0].0, 17);
    }

    #[test]
    fn minimize_keeps_a_conjunction() {
        let mut s = FaultScript::new();
        for d in 0..16 {
            s.record(d, FaultAction::Drop);
        }
        // Decisions 2 AND 11 are jointly necessary.
        let min = minimize(&s, |cand| {
            cand.action_at(2) == FaultAction::Drop && cand.action_at(11) == FaultAction::Drop
        });
        assert_eq!(min.len(), 2);
        let kept: Vec<u64> = min.entries().iter().map(|&(d, _)| d).collect();
        assert_eq!(kept, vec![2, 11]);
    }

    #[test]
    fn minimize_empties_a_fault_free_violation() {
        let mut s = FaultScript::new();
        for d in 0..8 {
            s.record(d, FaultAction::Drop);
        }
        let min = minimize(&s, |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn trace_hash_is_order_and_content_sensitive() {
        let mut a = Trace::new();
        a.log(1, "x");
        a.log(2, "y");
        let mut b = Trace::new();
        b.log(2, "y");
        b.log(1, "x");
        assert_ne!(a.hash(), b.hash());
        let mut c = Trace::new();
        c.log(1, "x");
        c.log(2, "y");
        assert_eq!(a.hash(), c.hash());
    }

    #[test]
    fn golden_trace_round_trips() {
        let mut script = FaultScript::new();
        script.record(4, FaultAction::Duplicate);
        let g = GoldenTrace {
            scenario: "partition-ramp".into(),
            arm: "naive".into(),
            seed: 0xDEAD,
            violation: "flagged".into(),
            script,
            trace_hash: "abc123".into(),
        };
        let back = GoldenTrace::from_json(&g.to_json()).expect("parses");
        assert_eq!(g, back);
    }
}
