//! The deterministic event loop: one heap, one clock, zero host
//! nondeterminism.
//!
//! A [`Sim`] owns the whole world — the real [`Store`], the simulated
//! fabric, every process — and executes a single totally-ordered event
//! sequence. Events are ordered by `(time, insertion seq)`: two events
//! at the same simulated instant run in the order they were scheduled,
//! which is itself deterministic, so the entire run is a pure function
//! of (scenario, seed, fault script).
//!
//! Faults and workloads are *different event kinds on the same heap*:
//! [`EvKind::Kill`], [`EvKind::Partition`], [`EvKind::SetNetRates`] and
//! [`EvKind::SetStoreFaultRate`] are the fault plane; process wakes and
//! deliveries are the workload plane. A scenario is just an initial
//! population of both.
//!
//! Kills are role-based: killing `"server"` takes down whichever
//! incarnation currently holds that role, closes every connection it
//! touched (peers see [`Payload::Closed`]), and parks the corpse in a
//! graveyard — its [`StoreClient`] (and any claimed-but-unfinished
//! [`CombineTicket`](ff_store::CombineTicket)) stays allocated but
//! forever idle, which is exactly the crashed-process model of the
//! paper: the shared object survives, the operation parks mid-flight.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use ff_store::{Store, StoreConfig};

use crate::clock::SimClock;
use crate::disk::SimDisk;
use crate::net::{ConnId, FaultRates, NetConfig, Payload, ScriptMode, SimNet};
use crate::process::{
    ClientCfg, ClientProc, CombinerProc, DurableServerProc, Outbox, Proc, RunFlags, ServerProc,
    WorkerProc, HANDLE_DELAY,
};
use crate::rng::{splitmix64, SimRng};
use crate::topology::{MachineId, ProcId, Topology};
use crate::trace::{FaultScript, Trace};

/// How to create a process — also the respawn recipe after a kill.
#[derive(Clone, Debug)]
pub enum ProcSpec {
    /// A store server (network face of the shared [`Store`]).
    Server {
        /// Host machine.
        machine: MachineId,
        /// Role name clients connect to.
        role: String,
    },
    /// A server owning its own durable store, recovered from the host
    /// machine's [`SimDisk`] at every (re)spawn. Killing it drops the
    /// store; the machine's disk bytes survive for the next
    /// incarnation. If recovery is refused (replay divergence under a
    /// faulty backend), the respawn stays down and the refusal is
    /// flagged — never served as data.
    DurableServer {
        /// Host machine — also names the surviving disk.
        machine: MachineId,
        /// Role name clients connect to.
        role: String,
        /// The store configuration every incarnation recovers under
        /// (durability knobs apply to the simulated disk; no data dir
        /// is needed).
        config: StoreConfig,
    },
    /// A wire-protocol transaction generator.
    Client {
        /// Host machine.
        machine: MachineId,
        /// Own role name.
        role: String,
        /// Role of the server to talk to.
        server_role: String,
        /// Workload knobs.
        cfg: ClientCfg,
    },
    /// A split-phase combining publisher.
    Worker {
        /// Host machine.
        machine: MachineId,
        /// Own role name.
        role: String,
        /// Shard it publishes to.
        shard: usize,
        /// Keys routing to that shard.
        keys: Vec<u32>,
        /// Wake cadence (ns).
        poll_interval: u64,
        /// Forced-combine escalation threshold (polls).
        escalate_after: u32,
        /// Units to deliver.
        target: u64,
    },
    /// A dedicated combiner.
    Combiner {
        /// Host machine.
        machine: MachineId,
        /// Own role name.
        role: String,
        /// Wake cadence (ns).
        interval: u64,
    },
}

impl ProcSpec {
    fn role(&self) -> &str {
        match self {
            ProcSpec::Server { role, .. }
            | ProcSpec::DurableServer { role, .. }
            | ProcSpec::Client { role, .. }
            | ProcSpec::Worker { role, .. }
            | ProcSpec::Combiner { role, .. } => role,
        }
    }
}

/// One scheduled event.
#[derive(Debug)]
pub enum EvKind {
    /// Run a process's wake handler.
    Wake(ProcId),
    /// A network arrival.
    Deliver {
        /// Connection it arrived on.
        conn: ConnId,
        /// Receiving process.
        to: ProcId,
        /// Bytes or close notification.
        payload: Payload,
    },
    /// Kill whichever process currently holds `role`.
    Kill(String),
    /// Power-fail the machine hosting `role`: kill the process *and*
    /// apply [`SimDisk::crash`] semantics to the machine's disk — the
    /// group-commit batch whose fsync was in flight survives only as a
    /// seeded torn prefix.
    PowerFail(String),
    /// (Re)spawn a process.
    Spawn(ProcSpec),
    /// Change the fabric's fault probabilities.
    SetNetRates(FaultRates),
    /// Change every shard's store-level fault rate.
    SetStoreFaultRate(f64),
    /// Open (`on`) or heal a machine-pair partition.
    Partition {
        /// One side.
        a: MachineId,
        /// Other side.
        b: MachineId,
        /// Open when true, heal when false.
        on: bool,
    },
}

struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a finished run reports.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Arm name (`robust` / `naive` / `lease` / `nolease`).
    pub arm: String,
    /// Root seed.
    pub seed: u64,
    /// Events executed.
    pub events: u64,
    /// Network fault decisions made.
    pub decisions: u64,
    /// FNV fingerprint of the trace — the determinism check.
    pub trace_hash: u64,
    /// Every trace line (for golden files and debugging).
    pub trace: Vec<String>,
    /// Did `Store::verify` end consistent?
    pub consistent: bool,
    /// Was any divergence *flagged* (verify failure, server error, or a
    /// divergence error frame at a client)? A faulty backend must land
    /// here — never at "inconsistent but unflagged".
    pub flagged: bool,
    /// Contract breaches for this arm (empty = the arm behaved).
    pub violations: Vec<String>,
    /// Total transactions/units completed across all workload procs.
    pub completed: u64,
    /// Durable-server respawns whose WAL recovery was refused (replay
    /// divergence under a faulty backend) — always flagged.
    pub recovery_refused: u64,
    /// Checkpoint snapshots loaded at the live durable server's boot.
    pub recovered_checkpoints: u64,
    /// Slot records replayed at the live durable server's boot.
    pub recovered_records: u64,
    /// Shards whose WAL ended in a torn/corrupt tail at that boot.
    pub recovered_torn: u64,
    /// The fault script (recorded, or the one replayed).
    pub script: FaultScript,
}

/// The whole simulated world plus its event loop.
pub struct Sim {
    /// Simulated clock (advance-only).
    pub clock: SimClock,
    /// Machines and process labels.
    pub topo: Topology,
    /// The lossy fabric.
    pub net: SimNet,
    /// The decision log.
    pub trace: Trace,
    /// The real store under test, shared by every server and worker.
    pub store: Store,
    /// Cross-cutting observations.
    pub flags: RunFlags,
    /// Per-machine durable bytes — they survive kills by construction
    /// (the map belongs to the world, not to any process).
    disks: BTreeMap<MachineId, Arc<SimDisk>>,
    procs: Vec<Option<Proc>>,
    graveyard: Vec<Proc>,
    roles: BTreeMap<String, ProcId>,
    incarnations: BTreeMap<String, u64>,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    events: u64,
    event_cap: u64,
    horizon: u64,
    workload_rng: SimRng,
    /// Seeds the torn-write cut on a power-fail (own fork: crash draws
    /// never shift fault, jitter or workload streams).
    crash_rng: SimRng,
}

impl Sim {
    /// A fresh world around `store`. The root seed is forked into
    /// independent fault, jitter and workload streams, so a scenario
    /// that adds workload draws does not shift fault decisions (and
    /// vice versa).
    pub fn new(
        store: Store,
        net_cfg: NetConfig,
        seed: u64,
        horizon: u64,
        mode: ScriptMode,
    ) -> Self {
        let mut root = SimRng::new(seed);
        let fault = root.fork(1);
        let jitter = root.fork(2);
        let workload = root.fork(3);
        let crash = root.fork(4);
        Sim {
            clock: SimClock::new(),
            topo: Topology::new(),
            net: SimNet::new(net_cfg, fault, jitter, mode),
            trace: Trace::new(),
            store,
            flags: RunFlags::default(),
            disks: BTreeMap::new(),
            procs: Vec::new(),
            graveyard: Vec::new(),
            roles: BTreeMap::new(),
            incarnations: BTreeMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            events: 0,
            event_cap: 4_000_000,
            horizon,
            workload_rng: workload,
            crash_rng: crash,
        }
    }

    /// The durable disk of `machine`, created empty on first use. The
    /// disk outlives every process on the machine.
    pub fn disk(&mut self, machine: MachineId) -> Arc<SimDisk> {
        Arc::clone(self.disks.entry(machine).or_default())
    }

    /// Schedule `kind` at absolute simulated time `at`.
    pub fn at(&mut self, at: u64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    /// Events executed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The process currently holding `role`, if alive.
    pub fn proc_by_role(&self, role: &str) -> Option<&Proc> {
        let pid = *self.roles.get(role)?;
        self.procs[pid.0 as usize].as_ref()
    }

    /// Every process that ever lived — live ones first, then the
    /// graveyard — for end-of-run accounting.
    pub fn all_procs(&self) -> impl Iterator<Item = &Proc> {
        self.procs.iter().flatten().chain(self.graveyard.iter())
    }

    /// Create a process now, register its role, and schedule its first
    /// wake. Respawns reuse the role name and get a fresh [`ProcId`]
    /// and a fresh (but deterministic) workload stream keyed on
    /// `(role, incarnation)`.
    pub fn spawn(&mut self, spec: ProcSpec) -> ProcId {
        let now = self.clock.now();
        let role = spec.role().to_string();
        let inc = self.incarnations.entry(role.clone()).or_insert(0);
        *inc += 1;
        let label = format!("{role}#{inc}");
        let rng_label = splitmix64(fnv(&role)).wrapping_add(*inc);
        let rng = self.workload_rng.fork(rng_label);
        if let ProcSpec::DurableServer {
            machine,
            role: _,
            mut config,
        } = spec
        {
            // A restarted process does not re-experience the previous
            // incarnation's fault randomness: key the store's fault
            // streams on (role, incarnation). This is what gives the
            // recovery digest cross-check teeth — a naive backend's
            // replay diverges instead of faithfully re-corrupting.
            config.seed = splitmix64(config.seed ^ rng_label);
            return self.spawn_durable(now, machine, role, label, config);
        }
        let (machine, proc_ctor): (MachineId, Box<dyn FnOnce(ProcId, SimRng) -> Proc>) = match spec
        {
            ProcSpec::Server { machine, role: _ } => {
                let client = self.store.client();
                let shards = self.store.shards() as u32;
                (
                    machine,
                    Box::new(move |id, _| {
                        Proc::Server(ServerProc {
                            id,
                            client,
                            sessions: BTreeMap::new(),
                            shards,
                        })
                    }),
                )
            }
            ProcSpec::Client {
                machine,
                role: _,
                server_role,
                cfg,
            } => (
                machine,
                Box::new(move |id, rng| Proc::Client(ClientProc::new(id, server_role, cfg, rng))),
            ),
            ProcSpec::Worker {
                machine,
                role: _,
                shard,
                keys,
                poll_interval,
                escalate_after,
                target,
            } => {
                let client = self.store.client();
                (
                    machine,
                    Box::new(move |id, rng| {
                        Proc::Worker(WorkerProc::new(
                            id,
                            client,
                            shard,
                            keys,
                            rng,
                            poll_interval,
                            escalate_after,
                            target,
                        ))
                    }),
                )
            }
            ProcSpec::Combiner {
                machine,
                role: _,
                interval,
            } => {
                let client = self.store.client();
                let shards = self.store.shards();
                (
                    machine,
                    Box::new(move |id, _| {
                        Proc::Combiner(CombinerProc::new(id, client, shards, interval))
                    }),
                )
            }
            ProcSpec::DurableServer { .. } => unreachable!("handled above"),
        };
        let pid = self.topo.process(machine, label.clone());
        debug_assert_eq!(pid.0 as usize, self.procs.len());
        self.procs.push(Some(proc_ctor(pid, rng)));
        self.roles.insert(role, pid);
        self.trace.log(now, format!("spawn {label} as {pid}"));
        self.at(now + HANDLE_DELAY, EvKind::Wake(pid));
        pid
    }

    /// (Re)boot a durable server: recover its store from the machine's
    /// surviving disk bytes. First boot over an empty disk recovers to
    /// a fresh store (zero report). A refused recovery — replay
    /// divergence under a faulty backend, the discriminator the
    /// kill-recover scenario pins — leaves the role down and is
    /// counted in [`RunFlags::recovery_refused`]: the store never
    /// serves state it cannot vouch for.
    fn spawn_durable(
        &mut self,
        now: u64,
        machine: MachineId,
        role: String,
        label: String,
        config: StoreConfig,
    ) -> ProcId {
        let disk = self.disk(machine);
        match Store::recover_with_media(config, disk) {
            Ok((store, recovery)) => {
                self.trace.log(
                    now,
                    format!(
                        "recover {label}: {} checkpoint(s), {} record(s) replayed, {} torn tail(s)",
                        recovery.checkpoints_loaded(),
                        recovery.records_replayed(),
                        recovery.torn_tails()
                    ),
                );
                let store = Arc::new(store);
                let client = store.client();
                let shards = store.shards() as u32;
                let pid = self.topo.process(machine, label.clone());
                debug_assert_eq!(pid.0 as usize, self.procs.len());
                self.procs.push(Some(Proc::DurableServer(DurableServerProc {
                    id: pid,
                    server: Some(ServerProc {
                        id: pid,
                        client,
                        sessions: BTreeMap::new(),
                        shards,
                    }),
                    store: Some(store),
                    recovery,
                })));
                self.roles.insert(role, pid);
                self.trace.log(now, format!("spawn {label} as {pid}"));
                self.at(now + HANDLE_DELAY, EvKind::Wake(pid));
                pid
            }
            Err(e) => {
                self.flags.recovery_refused += 1;
                self.trace.log(now, format!("recover {label} REFUSED: {e}"));
                // The pid stays registered (dense ids) but the slot is
                // empty and the role vacant: clients keep retrying.
                let pid = self.topo.process(machine, label);
                debug_assert_eq!(pid.0 as usize, self.procs.len());
                self.procs.push(None);
                pid
            }
        }
    }

    fn kill(&mut self, role: &str) {
        let now = self.clock.now();
        let Some(pid) = self.roles.remove(role) else {
            self.trace
                .log(now, format!("kill {role}: no such role (already dead)"));
            return;
        };
        let mut corpse = self.procs[pid.0 as usize]
            .take()
            .expect("role table pointed at an empty slot");
        // Volatile state dies with the process — for a durable server
        // that drops its store (and the WAL's unsynced group-commit
        // buffer with it); the machine's disk bytes survive in
        // `self.disks`.
        corpse.crashed();
        self.trace.log(
            now,
            format!("kill {role} ({pid} on {})", self.topo.machine_of(pid)),
        );
        for conn in self.net.conns_of(pid) {
            if let Some(d) = self.net.close(now, conn, pid) {
                self.at(
                    d.at,
                    EvKind::Deliver {
                        conn: d.conn,
                        to: d.to,
                        payload: d.payload,
                    },
                );
            }
        }
        self.graveyard.push(corpse);
    }

    /// Power-fail the machine hosting `role`: the kill plus
    /// [`SimDisk::crash`] on its disk — the last in-flight group
    /// commit survives only as a seeded torn prefix.
    fn power_fail(&mut self, role: &str) {
        let machine = self.roles.get(role).map(|&pid| self.topo.machine_of(pid));
        self.kill(role);
        let now = self.clock.now();
        let Some(disk) = machine.and_then(|m| self.disks.get(&m)).map(Arc::clone) else {
            return; // no durable state on that machine: plain kill
        };
        for torn in disk.crash(&mut self.crash_rng) {
            self.trace.log(
                now,
                format!(
                    "power-fail {role}: {} torn ({} of {} in-flight bytes survive)",
                    torn.name, torn.kept, torn.in_flight
                ),
            );
        }
    }

    fn drain(&mut self, outbox: Outbox) {
        for d in outbox.deliveries {
            self.at(
                d.at,
                EvKind::Deliver {
                    conn: d.conn,
                    to: d.to,
                    payload: d.payload,
                },
            );
        }
        for (at, who) in outbox.wakes {
            self.at(at, EvKind::Wake(who));
        }
    }

    fn dispatch_wake(&mut self, pid: ProcId) {
        let Some(mut proc) = self.procs[pid.0 as usize].take() else {
            return; // woke a corpse — stale timer, drop it
        };
        let now = self.clock.now();
        let mut outbox = Outbox::default();
        match &mut proc {
            Proc::Server(p) => p.wake(
                now,
                &mut self.net,
                &self.topo,
                &mut self.trace,
                &mut self.flags,
                &mut outbox,
            ),
            Proc::DurableServer(p) => p.wake(
                now,
                &mut self.net,
                &self.topo,
                &mut self.trace,
                &mut self.flags,
                &mut outbox,
            ),
            Proc::Client(p) => p.wake(
                now,
                &mut self.net,
                &self.topo,
                &mut self.trace,
                &self.roles,
                &mut outbox,
            ),
            Proc::Worker(p) => p.wake(now, &mut self.trace, &mut outbox),
            Proc::Combiner(p) => p.wake(now, &mut self.trace, &mut outbox),
        }
        self.procs[pid.0 as usize] = Some(proc);
        self.drain(outbox);
    }

    fn dispatch_deliver(&mut self, conn: ConnId, to: ProcId, payload: Payload) {
        let Some(mut proc) = self.procs[to.0 as usize].take() else {
            self.trace
                .log(self.clock.now(), format!("deliver to dead {to} dropped"));
            return;
        };
        let now = self.clock.now();
        let mut outbox = Outbox::default();
        match &mut proc {
            Proc::Server(p) => p.on_deliver(now, conn, payload, &mut outbox),
            Proc::DurableServer(p) => p.on_deliver(now, conn, payload, &mut outbox),
            Proc::Client(p) => p.on_deliver(
                now,
                conn,
                payload,
                &mut self.net,
                &mut self.trace,
                &mut self.flags,
                &mut outbox,
            ),
            // Store-level procs have no network face.
            Proc::Worker(_) | Proc::Combiner(_) => {}
        }
        self.procs[to.0 as usize] = Some(proc);
        self.drain(outbox);
    }

    /// Run to the horizon (or heap exhaustion). Panics past the event
    /// cap — a runaway schedule is a scenario bug, not a result.
    pub fn run(&mut self) {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if ev.at > self.horizon {
                break;
            }
            self.events += 1;
            assert!(
                self.events <= self.event_cap,
                "event cap exceeded: runaway scenario"
            );
            self.clock.advance_to(ev.at);
            match ev.kind {
                EvKind::Wake(pid) => self.dispatch_wake(pid),
                EvKind::Deliver { conn, to, payload } => self.dispatch_deliver(conn, to, payload),
                EvKind::Kill(role) => self.kill(&role),
                EvKind::PowerFail(role) => self.power_fail(&role),
                EvKind::Spawn(spec) => {
                    self.spawn(spec);
                }
                EvKind::SetNetRates(rates) => {
                    self.trace.log(
                        self.clock.now(),
                        format!(
                            "net rates drop={} dup={} delay={} reorder={}",
                            rates.drop, rates.duplicate, rates.delay, rates.reorder
                        ),
                    );
                    self.net.set_rates(rates);
                }
                EvKind::SetStoreFaultRate(rate) => {
                    self.trace
                        .log(self.clock.now(), format!("store fault rate -> {rate}"));
                    for s in 0..self.store.shards() {
                        self.store.fault_knob(s).set_rate(rate);
                    }
                }
                EvKind::Partition { a, b, on } => {
                    self.trace.log(
                        self.clock.now(),
                        format!("partition {a}<->{b} {}", if on { "open" } else { "healed" }),
                    );
                    self.net.set_partition(a, b, on);
                }
            }
        }
    }
}
