//! The simulated network: byte chunks between processes, with seeded
//! probabilistic faults at every send and scripted replay.
//!
//! A connection is a bidirectional byte stream between two processes —
//! what a TCP connection is to the real reactor. Each send hands the
//! network one **chunk** (the simulator sends one encoded frame per
//! chunk, but nothing here assumes framing); the network decides, at a
//! numbered **decision point**, what happens to it:
//!
//! * **deliver** — arrive after base latency + jitter, FIFO-clamped
//!   behind every earlier chunk of the same direction (the TCP-like
//!   default);
//! * **drop** — vanish (the peer's timeout machinery must recover);
//! * **duplicate** — arrive twice (stale frames the peer must ignore);
//! * **delay** — arrive k× late, FIFO order preserved;
//! * **reorder** — skip the FIFO clamp, possibly overtaking earlier
//!   chunks (mid-frame overtaking corrupts the stream — exactly the
//!   input the frame decoder must survive by flagging `Malformed`,
//!   never by panicking).
//!
//! Partitions are separate from chunk faults: a partitioned machine
//! pair drops every crossing chunk deterministically, consuming **no**
//! decision index and no randomness — so a scenario's partition window
//! never shifts the probabilistic fault stream.
//!
//! # Record / replay
//!
//! In **record** mode the fault RNG samples every decision (always the
//! same number of draws per decision, so rate changes never shift later
//! decisions) and non-deliver outcomes are written to a
//! [`FaultScript`]. In **replay** mode the script is consulted instead
//! and the fault RNG is never touched; latency jitter draws from its
//! own forked stream either way. Replaying a run's full recorded script
//! therefore reproduces it exactly — which is what makes
//! [`minimize`](crate::trace::minimize)'s subset replays meaningful.

use std::collections::BTreeMap;

use crate::rng::SimRng;
use crate::topology::{MachineId, ProcId, Topology};
use crate::trace::{FaultAction, FaultScript, Trace};

/// One simulated connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u32);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What arrives at a process.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A chunk of stream bytes.
    Bytes(Vec<u8>),
    /// The peer closed (or died); no more bytes will arrive.
    Closed,
}

/// One scheduled arrival, for the event loop to enqueue.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Simulated arrival time.
    pub at: u64,
    /// Connection the payload belongs to.
    pub conn: ConnId,
    /// Receiving process.
    pub to: ProcId,
    /// What arrives.
    pub payload: Payload,
}

/// Probabilities and latencies of the simulated fabric.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Base one-way latency (nanoseconds).
    pub base_latency: u64,
    /// Uniform extra latency in `0..=jitter` nanoseconds.
    pub jitter: u64,
    /// Latency multiplier applied by [`FaultAction::Delay`].
    pub delay_factor: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_latency: 500_000, // 0.5 ms
            jitter: 100_000,
            delay_factor: 20,
        }
    }
}

/// Per-chunk fault probabilities (the scenario's IO-fault dials,
/// separate from its workload of kills and transactions).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultRates {
    /// P(chunk vanishes).
    pub drop: f64,
    /// P(chunk arrives twice).
    pub duplicate: f64,
    /// P(chunk arrives `delay_factor`× late).
    pub delay: f64,
    /// P(chunk bypasses FIFO clamping).
    pub reorder: f64,
}

/// Record faults as sampled, or replay a fixed script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptMode {
    /// Sample from the fault RNG; write outcomes to the script.
    Record,
    /// The script decides; the fault RNG is untouched.
    Replay(FaultScript),
}

struct Conn {
    a: ProcId,
    b: ProcId,
    alive: bool,
}

/// The simulated fabric.
pub struct SimNet {
    cfg: NetConfig,
    rates: FaultRates,
    mode: ScriptMode,
    recorded: FaultScript,
    decision: u64,
    fault_rng: SimRng,
    jitter_rng: SimRng,
    conns: Vec<Conn>,
    /// FIFO tail per (conn, direction): earliest time the next in-order
    /// chunk may arrive.
    fifo: BTreeMap<(u32, bool), u64>,
    /// Active partitions as normalized machine pairs.
    partitions: Vec<(MachineId, MachineId)>,
}

impl SimNet {
    /// A fabric seeded from two independent streams of the run's root
    /// RNG.
    pub fn new(cfg: NetConfig, fault_rng: SimRng, jitter_rng: SimRng, mode: ScriptMode) -> Self {
        SimNet {
            cfg,
            rates: FaultRates::default(),
            mode,
            recorded: FaultScript::new(),
            decision: 0,
            fault_rng,
            jitter_rng,
            conns: Vec::new(),
            fifo: BTreeMap::new(),
            partitions: Vec::new(),
        }
    }

    /// Change the live fault probabilities (a scenario dial; decisions
    /// already made are unaffected, and the per-decision draw count is
    /// rate-independent so later decisions don't shift).
    pub fn set_rates(&mut self, rates: FaultRates) {
        self.rates = rates;
    }

    /// The script recorded so far (record mode) — hand this to
    /// [`crate::trace::minimize`] after a failing run.
    pub fn recorded(&self) -> &FaultScript {
        &self.recorded
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decision
    }

    /// Open a connection between two processes.
    pub fn connect(&mut self, a: ProcId, b: ProcId) -> ConnId {
        self.conns.push(Conn { a, b, alive: true });
        ConnId(self.conns.len() as u32 - 1)
    }

    /// Both endpoints of `conn`.
    pub fn endpoints(&self, conn: ConnId) -> (ProcId, ProcId) {
        let c = &self.conns[conn.0 as usize];
        (c.a, c.b)
    }

    /// Is the connection still open?
    pub fn alive(&self, conn: ConnId) -> bool {
        self.conns[conn.0 as usize].alive
    }

    /// Every live connection touching `p` — the kill handler closes
    /// them all when `p` dies.
    pub fn conns_of(&self, p: ProcId) -> Vec<ConnId> {
        self.conns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive && (c.a == p || c.b == p))
            .map(|(i, _)| ConnId(i as u32))
            .collect()
    }

    /// Close `conn` from `by`'s side: the peer gets a [`Payload::Closed`]
    /// notification after base latency (close notifications are control
    /// state, not chunks — no fault decision applies).
    pub fn close(&mut self, now: u64, conn: ConnId, by: ProcId) -> Option<Delivery> {
        let c = &mut self.conns[conn.0 as usize];
        if !c.alive {
            return None;
        }
        c.alive = false;
        let to = if by == c.a { c.b } else { c.a };
        Some(Delivery {
            at: now + self.cfg.base_latency,
            conn,
            to,
            payload: Payload::Closed,
        })
    }

    /// Open or heal a bidirectional partition between two machines.
    pub fn set_partition(&mut self, a: MachineId, b: MachineId, on: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if on {
            if !self.partitions.contains(&key) {
                self.partitions.push(key);
            }
        } else {
            self.partitions.retain(|&p| p != key);
        }
    }

    fn partitioned(&self, a: MachineId, b: MachineId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.partitions.contains(&key)
    }

    /// Send one chunk from `from` over `conn`. Returns the scheduled
    /// arrivals (empty when dropped, partitioned, or the connection is
    /// closed).
    pub fn send(
        &mut self,
        now: u64,
        conn: ConnId,
        from: ProcId,
        bytes: Vec<u8>,
        topo: &Topology,
        trace: &mut Trace,
    ) -> Vec<Delivery> {
        let c = &self.conns[conn.0 as usize];
        if !c.alive {
            return Vec::new();
        }
        let to = if from == c.a { c.b } else { c.a };
        let a_to_b = from == c.a;
        if self.partitioned(topo.machine_of(from), topo.machine_of(to)) {
            trace.log(now, format!("net {conn} partition-drop {}B", bytes.len()));
            return Vec::new();
        }
        let d = self.decision;
        self.decision += 1;
        let action = match &self.mode {
            ScriptMode::Replay(script) => script.action_at(d),
            ScriptMode::Record => {
                // Always exactly four draws per decision, so changing a
                // rate (or an earlier outcome) never shifts the stream
                // under later decisions.
                let drop = self.fault_rng.chance(self.rates.drop);
                let dup = self.fault_rng.chance(self.rates.duplicate);
                let delay = self.fault_rng.chance(self.rates.delay);
                let reorder = self.fault_rng.chance(self.rates.reorder);
                if drop {
                    FaultAction::Drop
                } else if dup {
                    FaultAction::Duplicate
                } else if delay {
                    FaultAction::Delay(self.cfg.delay_factor)
                } else if reorder {
                    FaultAction::Reorder
                } else {
                    FaultAction::Deliver
                }
            }
        };
        if self.mode == ScriptMode::Record {
            self.recorded.record(d, action);
        }
        if action != FaultAction::Deliver {
            trace.log(
                now,
                format!("net {conn} d={d} {} {}B", action.name(), bytes.len()),
            );
        }
        let latency = self.cfg.base_latency
            + if self.cfg.jitter > 0 {
                self.jitter_rng.next_range(self.cfg.jitter + 1)
            } else {
                0
            };
        let fifo_key = (conn.0, a_to_b);
        let clamp = |net: &mut SimNet, earliest: u64| {
            let tail = net.fifo.entry(fifo_key).or_insert(0);
            let at = earliest.max(*tail);
            // Strictly increasing per direction: equal timestamps would
            // leave arrival order to heap tie-breaking.
            *tail = at + 1;
            at
        };
        let mut out = Vec::new();
        let mut deliver = |at: u64, bytes: Vec<u8>| {
            out.push(Delivery {
                at,
                conn,
                to,
                payload: Payload::Bytes(bytes),
            });
        };
        match action {
            FaultAction::Drop => {}
            FaultAction::Deliver => {
                let at = clamp(self, now + latency);
                deliver(at, bytes);
            }
            FaultAction::Duplicate => {
                let at = clamp(self, now + latency);
                let again = clamp(self, at + latency);
                deliver(at, bytes.clone());
                deliver(again, bytes);
            }
            FaultAction::Delay(k) => {
                let at = clamp(self, now + latency.saturating_mul(k as u64).max(latency));
                deliver(at, bytes);
            }
            FaultAction::Reorder => {
                // Half latency and no clamp: this chunk may land before
                // chunks sent earlier on the same direction.
                deliver(now + latency / 2, bytes);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn fabric(mode: ScriptMode) -> (SimNet, Topology, ProcId, ProcId, ConnId) {
        let mut topo = Topology::new();
        let ma = topo.machine("a");
        let mb = topo.machine("b");
        let pa = topo.process(ma, "pa");
        let pb = topo.process(mb, "pb");
        let mut root = SimRng::new(1);
        let net = SimNet::new(NetConfig::default(), root.fork(1), root.fork(2), mode);
        let mut net = net;
        let conn = net.connect(pa, pb);
        (net, topo, pa, pb, conn)
    }

    #[test]
    fn faults_off_delivery_is_fifo_and_lossless() {
        let (mut net, topo, pa, _pb, conn) = fabric(ScriptMode::Record);
        let mut trace = Trace::new();
        let mut arrivals = Vec::new();
        for i in 0..20u8 {
            for d in net.send(i as u64 * 10, conn, pa, vec![i], &topo, &mut trace) {
                arrivals.push(d);
            }
        }
        assert_eq!(arrivals.len(), 20);
        // Arrival times strictly increase and payloads stay in order.
        for w in arrivals.windows(2) {
            assert!(w[0].at < w[1].at);
        }
        let bytes: Vec<u8> = arrivals
            .iter()
            .map(|d| match &d.payload {
                Payload::Bytes(b) => b[0],
                Payload::Closed => unreachable!(),
            })
            .collect();
        assert_eq!(bytes, (0..20).collect::<Vec<u8>>());
        assert!(net.recorded().is_empty());
    }

    #[test]
    fn partitions_drop_without_consuming_decisions() {
        let (mut net, topo, pa, _pb, conn) = fabric(ScriptMode::Record);
        let mut trace = Trace::new();
        net.set_partition(MachineId(0), MachineId(1), true);
        assert!(net.send(0, conn, pa, vec![1], &topo, &mut trace).is_empty());
        assert_eq!(net.decisions(), 0);
        net.set_partition(MachineId(0), MachineId(1), false);
        assert_eq!(net.send(1, conn, pa, vec![2], &topo, &mut trace).len(), 1);
        assert_eq!(net.decisions(), 1);
    }

    #[test]
    fn scripted_faults_replay_without_randomness() {
        let mut script = FaultScript::new();
        script.record(0, FaultAction::Drop);
        script.record(2, FaultAction::Duplicate);
        let (mut net, topo, pa, _pb, conn) = fabric(ScriptMode::Replay(script));
        let mut trace = Trace::new();
        assert!(net.send(0, conn, pa, vec![0], &topo, &mut trace).is_empty());
        assert_eq!(net.send(1, conn, pa, vec![1], &topo, &mut trace).len(), 1);
        assert_eq!(net.send(2, conn, pa, vec![2], &topo, &mut trace).len(), 2);
    }

    #[test]
    fn reorder_can_overtake_earlier_chunks() {
        let mut script = FaultScript::new();
        script.record(1, FaultAction::Reorder);
        let (mut net, topo, pa, _pb, conn) = fabric(ScriptMode::Replay(script));
        let mut trace = Trace::new();
        let first = net.send(0, conn, pa, vec![0], &topo, &mut trace);
        let second = net.send(0, conn, pa, vec![1], &topo, &mut trace);
        assert!(
            second[0].at < first[0].at,
            "reordered chunk should overtake"
        );
    }

    #[test]
    fn closed_connections_swallow_sends_and_notify_the_peer() {
        let (mut net, topo, pa, pb, conn) = fabric(ScriptMode::Record);
        let mut trace = Trace::new();
        let note = net.close(5, conn, pa).expect("first close notifies");
        assert_eq!(note.to, pb);
        assert!(matches!(note.payload, Payload::Closed));
        assert!(net.close(6, conn, pa).is_none());
        assert!(net.send(7, conn, pa, vec![1], &topo, &mut trace).is_empty());
    }
}
