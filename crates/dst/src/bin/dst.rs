//! `dst` — drive the deterministic simulator from the command line.
//!
//! ```text
//! dst run --scenario partition-ramp --arm naive --seed 0xDD570001
//! dst corpus [--seed N]
//! dst minimize --scenario partition-ramp --arm naive --seed N --out golden.json
//! dst replay --golden crates/dst/golden/partition-ramp-naive.json
//! ```
//!
//! `run` executes one `(scenario, arm, seed)` and prints the report;
//! exit status reflects the arm's contract. `corpus` runs every pair.
//! `minimize` records a failing run, shrinks its fault script to a
//! 1-minimal set with ddmin, and writes a golden-trace file. `replay`
//! re-executes a golden file and checks the violation still reproduces.
//!
//! `--threads N` is accepted everywhere and deliberately ignored: the
//! simulation is single-threaded by construction, and the flag exists
//! so harnesses can prove the trace hash is identical whatever value
//! they pass.

use ff_dst::net::ScriptMode;
use ff_dst::scenario::{arm_ok, arms, run_scenario, CORPUS};
use ff_dst::trace::{minimize, GoldenTrace};
use ff_dst::RunReport;
use ff_store::Backend;

fn usage() -> ! {
    eprintln!(
        "usage: dst <command> [options]\n\
         \x20 run      --scenario S --arm A [--seed N] [--threads N] [--trace]\n\
         \x20 corpus   [--seed N] [--threads N]\n\
         \x20 minimize --scenario S --arm A [--seed N] --out PATH\n\
         \x20 replay   --golden PATH [--threads N]\n\
         scenarios: partition-ramp kill-checkpoint restart-drain kill-combiner kill-recover"
    );
    std::process::exit(2);
}

#[derive(Default)]
struct Opts {
    scenario: Option<String>,
    arm: Option<String>,
    seed: u64,
    out: Option<String>,
    golden: Option<String>,
    show_trace: bool,
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse(args: &[String]) -> Opts {
    let mut opts = Opts {
        seed: ff_dst::experiment::E19_SEED,
        ..Opts::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--scenario" => opts.scenario = Some(value("--scenario")),
            "--arm" => opts.arm = Some(value("--arm")),
            "--seed" => {
                opts.seed = parse_seed(&value("--seed")).unwrap_or_else(|| usage());
            }
            "--out" => opts.out = Some(value("--out")),
            "--golden" => opts.golden = Some(value("--golden")),
            "--trace" => opts.show_trace = true,
            // Accepted and ignored: determinism must not depend on it.
            "--threads" => {
                value("--threads");
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    opts
}

fn print_report(r: &RunReport, show_trace: bool) {
    println!(
        "dst: {}/{} seed={:#x} events={} net-decisions={} completed={} \
         consistent={} flagged={} trace-hash={:016x}",
        r.scenario,
        r.arm,
        r.seed,
        r.events,
        r.decisions,
        r.completed,
        r.consistent,
        r.flagged,
        r.trace_hash
    );
    for v in &r.violations {
        println!("dst:   violation: {v}");
    }
    if show_trace {
        for line in &r.trace {
            println!("{line}");
        }
    }
}

fn cmd_run(opts: Opts) -> i32 {
    let scenario = opts.scenario.unwrap_or_else(|| usage());
    let arm = opts.arm.unwrap_or_else(|| usage());
    let r = run_scenario(&scenario, &arm, opts.seed, ScriptMode::Record);
    print_report(&r, opts.show_trace);
    let ok = arm_ok(&r);
    println!(
        "dst: contract {}",
        if ok {
            "ok"
        } else {
            "BROKEN (this is the replayable failure)"
        }
    );
    i32::from(!ok)
}

fn cmd_corpus(opts: Opts) -> i32 {
    let mut failures = 0;
    for def in CORPUS {
        for arm in def.arms {
            let r = run_scenario(def.name, arm, opts.seed, ScriptMode::Record);
            let ok = arm_ok(&r);
            print_report(&r, false);
            println!("dst: contract {}", if ok { "ok" } else { "BROKEN" });
            failures += i32::from(!ok);
        }
    }
    println!(
        "dst: corpus {} at seed {:#x}",
        if failures == 0 { "clean" } else { "BROKEN" },
        opts.seed
    );
    failures.min(1)
}

/// The reproduction predicate a golden trace pins down: for catch-me
/// arms (`naive`, `nolease`) the interesting event IS the flag/stall
/// (for a durable naive arm, specifically the refused recovery), so
/// that is what minimization preserves; for well-behaved arms it is
/// any contract violation.
fn violation_of(r: &RunReport) -> Option<&'static str> {
    match r.arm.as_str() {
        "naive" if r.recovery_refused > 0 => Some("recovery-refused"),
        "naive" => r.flagged.then_some("flagged"),
        "nolease" => r
            .violations
            .iter()
            .any(|v| v.starts_with("stall:"))
            .then_some("stall"),
        _ => (!arm_ok(r)).then_some("contract"),
    }
}

fn reproduces(r: &RunReport, violation: &str) -> bool {
    match violation {
        "flagged" => r.flagged,
        "recovery-refused" => r.recovery_refused > 0,
        "stall" => r.violations.iter().any(|v| v.starts_with("stall:")),
        _ => !arm_ok(r),
    }
}

fn cmd_minimize(opts: Opts) -> i32 {
    let scenario = opts.scenario.unwrap_or_else(|| usage());
    let arm = opts.arm.unwrap_or_else(|| usage());
    let out = opts.out.unwrap_or_else(|| usage());
    let recorded = run_scenario(&scenario, &arm, opts.seed, ScriptMode::Record);
    let Some(violation) = violation_of(&recorded) else {
        eprintln!(
            "dst: {scenario}/{arm} seed={:#x} does not fail; nothing to minimize",
            opts.seed
        );
        return 1;
    };
    println!(
        "dst: recorded failing run, {} scripted fault(s) over {} decisions; minimizing …",
        recorded.script.len(),
        recorded.decisions
    );
    let mut replays = 0u32;
    let minimal = minimize(&recorded.script, |candidate| {
        replays += 1;
        let r = run_scenario(
            &scenario,
            &arm,
            opts.seed,
            ScriptMode::Replay(candidate.clone()),
        );
        reproduces(&r, violation)
    });
    let confirm = run_scenario(
        &scenario,
        &arm,
        opts.seed,
        ScriptMode::Replay(minimal.clone()),
    );
    assert!(
        reproduces(&confirm, violation),
        "minimized script no longer reproduces"
    );
    let golden = GoldenTrace {
        scenario,
        arm,
        seed: opts.seed,
        violation: violation.to_string(),
        script: minimal,
        trace_hash: format!("{:016x}", confirm.trace_hash),
    };
    std::fs::write(&out, golden.to_json()).unwrap_or_else(|e| {
        eprintln!("dst: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "dst: minimized {} -> {} scripted fault(s) in {replays} replays; wrote {out}",
        recorded.script.len(),
        golden.script.len()
    );
    if golden.script.is_empty() {
        println!("dst: note: empty script — the violation needs no network faults at this seed");
    }
    0
}

fn cmd_replay(opts: Opts) -> i32 {
    let path = opts.golden.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("dst: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let golden = GoldenTrace::from_json(&text).unwrap_or_else(|| {
        eprintln!("dst: {path} is not a golden-trace file");
        std::process::exit(1);
    });
    let r = run_scenario(
        &golden.scenario,
        &golden.arm,
        golden.seed,
        ScriptMode::Replay(golden.script.clone()),
    );
    print_report(&r, opts.show_trace);
    if reproduces(&r, &golden.violation) {
        println!(
            "dst: golden {} reproduced ({} on {}/{})",
            path, golden.violation, golden.scenario, golden.arm
        );
        0
    } else {
        println!("dst: golden {path} DID NOT reproduce — regression in the failure itself");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let opts = parse(rest);
    if let Some(s) = &opts.scenario {
        // Fail fast on typos (also validates the arm when present).
        // Scenarios whose declared arms are substrate names accept
        // *any* registered substrate — `--arm kw-robust` on
        // partition-ramp resolves through the registry exactly like
        // `--backend` on the soak CLIs. Arms like `lease`/`nolease`
        // stay closed: those scenarios don't vary the backend.
        let known = arms(s);
        let takes_substrates = known.iter().any(|k| k.parse::<Backend>().is_ok());
        if let Some(a) = &opts.arm {
            let ok =
                known.contains(&a.as_str()) || (takes_substrates && a.parse::<Backend>().is_ok());
            if !ok {
                if takes_substrates {
                    eprintln!(
                        "dst: scenario {s} has arms {known:?} (or any registered \
                         substrate: {}), not {a:?}",
                        ff_store::substrate_names().join(", ")
                    );
                } else {
                    eprintln!("dst: scenario {s} has arms {known:?}, not {a:?}");
                }
                std::process::exit(2);
            }
        }
    }
    let code = match cmd.as_str() {
        "run" => cmd_run(opts),
        "corpus" => cmd_corpus(opts),
        "minimize" => cmd_minimize(opts),
        "replay" => cmd_replay(opts),
        _ => usage(),
    };
    std::process::exit(code);
}
