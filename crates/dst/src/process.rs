//! The simulated processes: what actually runs on the datacenter's
//! machines.
//!
//! Four process kinds cover the stack the simulator kills:
//!
//! * [`ServerProc`] — the network face of the real [`Store`]: one
//!   socket-free [`Session`] (the *same* state machine the production
//!   reactor drives) per simulated connection, staged into one merged
//!   run and executed through a real [`StoreClient`]. Killing it models
//!   a server crash: sessions and buffered responses vanish, the store
//!   itself survives (its logs are the durable shared object, like
//!   shared memory survives a thread crash in the paper's model).
//! * [`ClientProc`] — a transaction generator speaking the real wire
//!   protocol: encodes `BATCH` frames with [`encode_request`], decodes
//!   responses with [`decode_response`], and recovers from timeouts,
//!   closed connections and corrupted streams by reconnecting and
//!   resending — at-least-once, like any real client.
//! * [`WorkerProc`] — a store-level client driving the split-phase
//!   combining API (`publish_to_shard` / `poll_published`), escalating
//!   to a forced combine pass when its unit sits unclaimed too long.
//! * [`CombinerProc`] — a dedicated combiner running `combine_begin`
//!   on one wake and `combine_finish` on the next. Killing it **between
//!   the two** drops the ticket — the real crashed-combiner window the
//!   lease/epoch rule in `ff-store` exists to recover from.
//!
//! Handlers never touch the event heap directly: they push follow-up
//! wakes and network deliveries into an [`Outbox`] the runner drains,
//! which keeps every process a pure state machine over (time, input).

use std::collections::BTreeMap;

use ff_net::session::Session;
use ff_net::wire::{
    decode_response, encode_request, Decoded, ErrorCode, Request, Response, StatsReply,
};
use ff_store::{CombineTicket, Kv, KvOp, PendingCombined, StoreClient, StoreError};

use crate::net::{ConnId, Delivery, Payload, SimNet};
use crate::rng::SimRng;
use crate::topology::{ProcId, Topology};
use crate::trace::Trace;

/// Small fixed handling latency between a delivery and the wake that
/// serves it (keeps wakes strictly after their triggering arrival).
pub const HANDLE_DELAY: u64 = 10_000; // 10 µs

/// Follow-up work a handler schedules.
#[derive(Default)]
pub struct Outbox {
    /// Network arrivals to enqueue.
    pub deliveries: Vec<Delivery>,
    /// `(at, who)` wake-ups to enqueue.
    pub wakes: Vec<(u64, ProcId)>,
}

impl Outbox {
    /// Queue a wake for `who` at `at`.
    pub fn wake(&mut self, at: u64, who: ProcId) {
        self.wakes.push((at, who));
    }
}

/// Cross-cutting observations the report aggregates.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunFlags {
    /// Merged runs the server answered with a divergence error.
    pub server_divergence: u64,
    /// Response streams a client abandoned as undecodable.
    pub client_stream_resets: u64,
    /// Sessions the server closed after a malformed request stream.
    pub malformed_closes: u64,
    /// Durable-server respawns whose WAL recovery was refused (replay
    /// divergence or I/O failure) — the respawn stays down.
    pub recovery_refused: u64,
}

/// Any simulated process.
pub enum Proc {
    /// The store's network front-end.
    Server(ServerProc),
    /// A server owning its *own* durable store over a machine's
    /// [`SimDisk`](crate::disk::SimDisk) — killing it drops the store,
    /// and the respawn recovers from the surviving bytes.
    DurableServer(DurableServerProc),
    /// A wire-protocol transaction generator.
    Client(ClientProc),
    /// A split-phase combining publisher.
    Worker(WorkerProc),
    /// A dedicated two-wake combiner.
    Combiner(CombinerProc),
}

impl Proc {
    /// The process's own id.
    pub fn id(&self) -> ProcId {
        match self {
            Proc::Server(p) => p.id,
            Proc::DurableServer(p) => p.id,
            Proc::Client(p) => p.id,
            Proc::Worker(p) => p.id,
            Proc::Combiner(p) => p.id,
        }
    }

    /// The process just got killed: release anything that must not
    /// survive a crash. For a durable server that is its whole store —
    /// sessions, the combining layer, and crucially the WAL's in-memory
    /// group-commit buffer all vanish; only the [`SimDisk`]'s bytes
    /// remain for the respawn to recover from.
    ///
    /// [`SimDisk`]: crate::disk::SimDisk
    pub fn crashed(&mut self) {
        if let Proc::DurableServer(p) = self {
            p.server = None;
            p.store = None;
        }
    }
}

// ---------------------------------------------------------------- server

/// The network-facing store server (see module docs).
pub struct ServerProc {
    /// Own process id.
    pub id: ProcId,
    /// Executes every merged run (combining client: self-combines).
    pub client: StoreClient,
    /// One protocol state machine per live connection — the exact
    /// `Session` the production reactor drives over TCP.
    pub sessions: BTreeMap<u32, Session>,
    /// Shard count, echoed in any STATS answer.
    pub shards: u32,
}

impl ServerProc {
    /// Bytes or a close arrived on `conn`.
    pub fn on_deliver(&mut self, now: u64, conn: ConnId, payload: Payload, outbox: &mut Outbox) {
        match payload {
            Payload::Bytes(bytes) => {
                self.sessions.entry(conn.0).or_default().ingest(&bytes);
                outbox.wake(now + HANDLE_DELAY, self.id);
            }
            Payload::Closed => {
                self.sessions.remove(&conn.0);
            }
        }
    }

    /// One serve pass: stage every session into a merged run, execute
    /// it on the real store, resolve, and ship each session's output.
    #[allow(clippy::too_many_arguments)]
    pub fn wake(
        &mut self,
        now: u64,
        net: &mut SimNet,
        topo: &Topology,
        trace: &mut Trace,
        flags: &mut RunFlags,
        outbox: &mut Outbox,
    ) {
        let mut run: Vec<KvOp> = Vec::new();
        for session in self.sessions.values_mut() {
            session.stage(&mut run);
        }
        let outcome = if run.is_empty() {
            None
        } else {
            let result = self.client.batch(&run);
            if let Err(e) = &result {
                if matches!(e, StoreError::Divergence { .. }) {
                    flags.server_divergence += 1;
                }
                trace.log(now, format!("server run-error {e}"));
            }
            Some(result)
        };
        let stats = StatsReply {
            shards: self.shards,
            diverged: flags.server_divergence > 0,
            ..Default::default()
        };
        let mut closed = Vec::new();
        for (&cid, session) in self.sessions.iter_mut() {
            if session.pending_slots() > 0 {
                session.resolve(outcome.as_ref(), &stats);
            }
            let out = session.take_output();
            if !out.is_empty() {
                let sends = net.send(now, ConnId(cid), self.id, out, topo, trace);
                outbox.deliveries.extend(sends);
            }
            if session.closing() {
                // Framing lost: answer shipped, connection done.
                flags.malformed_closes += 1;
                trace.log(now, format!("server close c{cid} (malformed stream)"));
                closed.push(cid);
            }
        }
        for cid in closed {
            self.sessions.remove(&cid);
            if let Some(d) = net.close(now, ConnId(cid), self.id) {
                outbox.deliveries.push(d);
            }
        }
    }
}

// ------------------------------------------------------- durable server

/// A server that owns its own durable [`Store`] recovered from a
/// machine's [`SimDisk`](crate::disk::SimDisk). The protocol face is a
/// plain [`ServerProc`] (same sessions, same merged-run execution); the
/// difference is ownership — the store dies with the process, and the
/// next incarnation rebuilds it from the disk via
/// [`Store::recover_with_media`](ff_store::Store::recover_with_media).
pub struct DurableServerProc {
    /// Own process id.
    pub id: ProcId,
    /// The protocol face; `None` after a crash (the corpse never acts).
    pub server: Option<ServerProc>,
    /// The recovered store this incarnation owns; `None` after a crash.
    pub store: Option<std::sync::Arc<ff_store::Store>>,
    /// What recovery found when this incarnation booted (zeros on the
    /// first boot over an empty disk).
    pub recovery: ff_store::RecoveryReport,
}

impl DurableServerProc {
    /// Delegate to the inner protocol face (no-op on a corpse).
    pub fn on_deliver(&mut self, now: u64, conn: ConnId, payload: Payload, outbox: &mut Outbox) {
        if let Some(s) = &mut self.server {
            s.on_deliver(now, conn, payload, outbox);
        }
    }

    /// Delegate to the inner protocol face (no-op on a corpse).
    #[allow(clippy::too_many_arguments)]
    pub fn wake(
        &mut self,
        now: u64,
        net: &mut SimNet,
        topo: &Topology,
        trace: &mut Trace,
        flags: &mut RunFlags,
        outbox: &mut Outbox,
    ) {
        if let Some(s) = &mut self.server {
            s.wake(now, net, topo, trace, flags, outbox);
        }
    }
}

// ---------------------------------------------------------------- client

/// Workload knobs of one transaction generator.
#[derive(Clone, Copy, Debug)]
pub struct ClientCfg {
    /// Keys drawn uniformly from `0..keyspace`.
    pub keyspace: u32,
    /// Operations per `BATCH` transaction.
    pub batch: usize,
    /// Resend after this long without a response (nanoseconds).
    pub timeout: u64,
    /// Pause between transactions (nanoseconds).
    pub think: u64,
    /// Stop after this many completed transactions.
    pub target: u64,
}

/// One in-flight transaction.
struct InFlight {
    id: u32,
    ops: Vec<KvOp>,
    sent_at: u64,
}

/// A wire-protocol transaction generator (see module docs).
pub struct ClientProc {
    /// Own process id.
    pub id: ProcId,
    /// Role of the server it talks to (stable across server restarts).
    pub server_role: String,
    /// Workload knobs.
    pub cfg: ClientCfg,
    /// Private workload stream.
    pub rng: SimRng,
    conn: Option<ConnId>,
    rx: Vec<u8>,
    next_id: u32,
    inflight: Option<InFlight>,
    /// Transactions resolved (answered or definitively errored).
    pub completed: u64,
    /// Divergence error frames received — the flag the naive backend
    /// must raise instead of answering wrong.
    pub divergence_seen: u64,
    /// Non-divergence error frames received.
    pub errors_seen: u64,
    /// Timeout/close/corruption resends.
    pub retries: u64,
}

impl ClientProc {
    /// A fresh client; the runner schedules its first wake.
    pub fn new(id: ProcId, server_role: String, cfg: ClientCfg, rng: SimRng) -> Self {
        ClientProc {
            id,
            server_role,
            cfg,
            rng,
            conn: None,
            rx: Vec::new(),
            next_id: 1,
            inflight: None,
            completed: 0,
            divergence_seen: 0,
            errors_seen: 0,
            retries: 0,
        }
    }

    fn build_txn(&mut self) -> Vec<KvOp> {
        (0..self.cfg.batch)
            .map(|_| {
                let key = self.rng.next_range(self.cfg.keyspace as u64) as u32;
                match self.rng.next_range(10) {
                    0..=4 => KvOp::Put(key, self.rng.next_range(1 << 16) as u32),
                    5..=8 => KvOp::Get(key),
                    _ => KvOp::Del(key),
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn send_current(
        &mut self,
        now: u64,
        net: &mut SimNet,
        topo: &Topology,
        trace: &mut Trace,
        roles: &BTreeMap<String, ProcId>,
        outbox: &mut Outbox,
    ) {
        let Some(inflight) = &mut self.inflight else {
            return;
        };
        let conn = match self.conn {
            Some(c) if net.alive(c) => c,
            _ => {
                let Some(&server) = roles.get(&self.server_role) else {
                    // Server down and not yet restarted; the timeout
                    // wake retries.
                    trace.log(
                        now,
                        format!("{} no server for role {}", self.id, self.server_role),
                    );
                    outbox.wake(now + self.cfg.timeout, self.id);
                    inflight.sent_at = now;
                    return;
                };
                self.rx.clear();
                let c = net.connect(self.id, server);
                self.conn = Some(c);
                c
            }
        };
        let mut wire = Vec::new();
        encode_request(
            &mut wire,
            inflight.id,
            &Request::Batch(inflight.ops.clone()),
        );
        inflight.sent_at = now;
        let sends = net.send(now, conn, self.id, wire, topo, trace);
        outbox.deliveries.extend(sends);
        outbox.wake(now + self.cfg.timeout, self.id);
    }

    /// Start the next transaction, or resend the current one after a
    /// timeout or lost connection.
    #[allow(clippy::too_many_arguments)]
    pub fn wake(
        &mut self,
        now: u64,
        net: &mut SimNet,
        topo: &Topology,
        trace: &mut Trace,
        roles: &BTreeMap<String, ProcId>,
        outbox: &mut Outbox,
    ) {
        if let Some(inflight) = &self.inflight {
            let lost = self.conn.is_none_or(|c| !net.alive(c));
            if lost || now >= inflight.sent_at + self.cfg.timeout {
                self.retries += 1;
                trace.log(
                    now,
                    format!(
                        "{} retry txn={} (retry #{}, {})",
                        self.id,
                        inflight.id,
                        self.retries,
                        if lost { "conn lost" } else { "timeout" }
                    ),
                );
                if let Some(c) = self.conn.take() {
                    if let Some(d) = net.close(now, c, self.id) {
                        outbox.deliveries.push(d);
                    }
                }
                self.send_current(now, net, topo, trace, roles, outbox);
            }
            // Else: a stale wake (the response already arrived, or a
            // newer send reset the timer); the live timer wake handles
            // the rest.
            return;
        }
        if self.completed >= self.cfg.target {
            return;
        }
        let ops = self.build_txn();
        let id = self.next_id;
        self.next_id += 1;
        self.inflight = Some(InFlight {
            id,
            ops,
            sent_at: now,
        });
        self.send_current(now, net, topo, trace, roles, outbox);
    }

    /// Response bytes or a close arrived.
    #[allow(clippy::too_many_arguments)]
    pub fn on_deliver(
        &mut self,
        now: u64,
        conn: ConnId,
        payload: Payload,
        net: &mut SimNet,
        trace: &mut Trace,
        flags: &mut RunFlags,
        outbox: &mut Outbox,
    ) {
        if self.conn != Some(conn) {
            return; // stale connection's leftovers
        }
        match payload {
            Payload::Closed => {
                self.conn = None;
                self.rx.clear();
                if self.inflight.is_some() {
                    outbox.wake(now + HANDLE_DELAY, self.id);
                }
            }
            Payload::Bytes(bytes) => {
                self.rx.extend_from_slice(&bytes);
                let mut at = 0;
                loop {
                    match decode_response(&self.rx[at..]) {
                        Ok(Decoded::NeedMoreData) => break,
                        Ok(Decoded::Frame { frame, consumed }) => {
                            at += consumed;
                            self.on_response(now, frame.id, frame.resp, trace, outbox);
                        }
                        Err(e) => {
                            // The lossy fabric corrupted the stream
                            // (dropped/reordered chunk mid-frame):
                            // abandon the connection, the resend path
                            // recovers.
                            flags.client_stream_resets += 1;
                            trace.log(now, format!("{} response stream corrupt: {e}", self.id));
                            self.rx.clear();
                            if let Some(c) = self.conn.take() {
                                if let Some(d) = net.close(now, c, self.id) {
                                    outbox.deliveries.push(d);
                                }
                            }
                            outbox.wake(now + HANDLE_DELAY, self.id);
                            return;
                        }
                    }
                }
                self.rx.drain(..at);
            }
        }
    }

    fn on_response(
        &mut self,
        now: u64,
        id: u32,
        resp: Response,
        trace: &mut Trace,
        outbox: &mut Outbox,
    ) {
        let current = self.inflight.as_ref().map(|f| f.id);
        if current != Some(id) {
            // A duplicate of an already-answered frame, or the id-0
            // malformed notice that precedes a server-side close.
            if let Response::Error { .. } = resp {
                self.errors_seen += 1;
            }
            return;
        }
        match resp {
            Response::Batch(_) => {
                self.completed += 1;
                self.inflight = None;
                outbox.wake(now + self.cfg.think, self.id);
            }
            Response::Error {
                code: ErrorCode::Divergence,
                ..
            } => {
                // The store refused to answer from diverged state: the
                // flag, not a wrong value. The transaction is resolved.
                self.divergence_seen += 1;
                self.completed += 1;
                self.inflight = None;
                trace.log(now, format!("{} divergence error on txn={id}", self.id));
                outbox.wake(now + self.cfg.think, self.id);
            }
            Response::Error { .. } => {
                self.errors_seen += 1;
                self.completed += 1;
                self.inflight = None;
                outbox.wake(now + self.cfg.think, self.id);
            }
            // A BATCH is never answered with these.
            Response::Value(_) | Response::Stats(_) | Response::Pong => {}
        }
    }
}

// ---------------------------------------------------------------- worker

/// A split-phase combining publisher (see module docs).
pub struct WorkerProc {
    /// Own process id.
    pub id: ProcId,
    /// Split-phase combining client.
    pub client: StoreClient,
    /// The single shard this worker publishes to.
    pub shard: usize,
    /// Keys routing to that shard.
    pub keys: Vec<u32>,
    /// Private workload stream.
    pub rng: SimRng,
    /// Wake cadence (nanoseconds).
    pub poll_interval: u64,
    /// After this many fruitless polls, force a combine pass.
    pub escalate_after: u32,
    /// Stop after this many delivered units.
    pub target: u64,
    pending: Option<PendingCombined>,
    polls: u32,
    /// Units delivered.
    pub completed: u64,
    /// Divergence results observed.
    pub divergence_seen: u64,
}

impl WorkerProc {
    /// A fresh worker; the runner schedules its first wake.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: ProcId,
        client: StoreClient,
        shard: usize,
        keys: Vec<u32>,
        rng: SimRng,
        poll_interval: u64,
        escalate_after: u32,
        target: u64,
    ) -> Self {
        assert!(!keys.is_empty(), "worker needs keys routing to its shard");
        WorkerProc {
            id,
            client,
            shard,
            keys,
            rng,
            poll_interval,
            escalate_after,
            target,
            pending: None,
            polls: 0,
            completed: 0,
            divergence_seen: 0,
        }
    }

    /// Publish, poll, or escalate.
    pub fn wake(&mut self, now: u64, trace: &mut Trace, outbox: &mut Outbox) {
        match &mut self.pending {
            None => {
                if self.completed >= self.target {
                    return; // done; no rewake
                }
                let key = self.keys[self.rng.next_range(self.keys.len() as u64) as usize];
                let value = self.rng.next_range(1 << 16) as u32;
                match self
                    .client
                    .publish_to_shard(self.shard, &[KvOp::Put(key, value)])
                {
                    Ok(p) => self.pending = Some(p),
                    Err(e) => trace.log(now, format!("{} publish refused: {e}", self.id)),
                }
            }
            Some(pending) => match self.client.poll_published(pending) {
                Ok(Some(_)) => {
                    self.completed += 1;
                    self.pending = None;
                    self.polls = 0;
                }
                Ok(None) => {
                    self.polls += 1;
                    if self.polls.is_multiple_of(self.escalate_after) {
                        // Nobody is combining (or the combiner died):
                        // take over, force past the advisory flag.
                        if let Some(ticket) = self.client.combine_begin(self.shard, true) {
                            self.client.combine_finish(ticket);
                            trace.log(now, format!("{} escalated combine", self.id));
                        }
                    }
                }
                Err(e) => {
                    self.divergence_seen += 1;
                    self.pending = None;
                    self.polls = 0;
                    trace.log(now, format!("{} poll error: {e}", self.id));
                }
            },
        }
        outbox.wake(now + self.poll_interval, self.id);
    }
}

// -------------------------------------------------------------- combiner

/// A dedicated combiner whose claim and execute phases are separate
/// wakes — the crash window the kill-the-combiner scenario aims at.
pub struct CombinerProc {
    /// Own process id.
    pub id: ProcId,
    /// Combining client used only for begin/finish.
    pub client: StoreClient,
    /// Shards to round-robin over.
    pub shards: usize,
    /// Wake cadence (nanoseconds).
    pub interval: u64,
    held: Option<CombineTicket>,
    rr: usize,
    /// Passes finished.
    pub passes: u64,
}

impl CombinerProc {
    /// A fresh combiner; the runner schedules its first wake.
    pub fn new(id: ProcId, client: StoreClient, shards: usize, interval: u64) -> Self {
        CombinerProc {
            id,
            client,
            shards,
            interval,
            held: None,
            rr: 0,
            passes: 0,
        }
    }

    /// Is a claimed-but-unfinished pass in hand (the kill window)?
    pub fn holding(&self) -> bool {
        self.held.is_some()
    }

    /// Claim on one wake, execute on the next.
    pub fn wake(&mut self, now: u64, trace: &mut Trace, outbox: &mut Outbox) {
        match self.held.take() {
            Some(ticket) => {
                self.client.combine_finish(ticket);
                self.passes += 1;
            }
            None => {
                let shard = self.rr % self.shards;
                self.rr += 1;
                if let Some(ticket) = self.client.combine_begin(shard, false) {
                    trace.log(now, format!("{} combine begin shard={shard}", self.id));
                    self.held = Some(ticket);
                }
            }
        }
        outbox.wake(now + self.interval, self.id);
    }
}
