//! The simulated durable medium: bytes that survive a kill.
//!
//! A [`SimDisk`] implements [`WalMedia`] over plain in-memory byte
//! vectors, one per file name, and belongs to a *machine*, not a
//! process — killing the process that writes to it leaves the bytes in
//! place, which is exactly what makes `Store::recover_with_media` on
//! the respawned incarnation meaningful.
//!
//! Two watermarks per file model the storage stack honestly:
//!
//! * `synced` — everything at or below it has had its fsync *complete*;
//! * `prev_synced` — the watermark before the most recent sync, i.e.
//!   the start of the batch whose fsync finished last.
//!
//! A plain process kill (SIGKILL) loses nothing here: appended bytes
//! live in the kernel's page cache, which outlives the process. What a
//! kill *does* lose is the store's own in-memory group-commit buffer —
//! and that happens for free when the killed server's `Store` is
//! dropped. Power loss is the interesting case: [`SimDisk::crash`]
//! models the machine dying *while the last group commit's fsync was in
//! flight* — the batch between `prev_synced` and the end of the file
//! survives only as a seeded torn prefix, shorter than one WAL frame
//! header, so recovery must detect the tear and land exactly on the
//! previous fsynced prefix.

use std::collections::BTreeMap;
use std::sync::Mutex;

use ff_store::{WalIoError, WalMedia};

use crate::rng::SimRng;

/// One simulated file.
#[derive(Default)]
struct FileState {
    bytes: Vec<u8>,
    /// Bytes whose fsync has completed.
    synced: usize,
    /// The `synced` watermark before the most recent sync — the start
    /// of the last fsync batch, where a mid-fsync power loss tears.
    prev_synced: usize,
}

/// What a [`SimDisk::crash`] did to one file.
#[derive(Clone, Debug)]
pub struct TornFile {
    /// File name.
    pub name: String,
    /// Bytes of the in-flight batch that survived (a torn prefix).
    pub kept: usize,
    /// Size of the batch whose fsync was in flight.
    pub in_flight: usize,
}

/// A machine's durable bytes (see module docs).
#[derive(Default)]
pub struct SimDisk {
    files: Mutex<BTreeMap<String, FileState>>,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Simulate power loss mid-fsync: for every file, the batch between
    /// the previous sync watermark and the end of the file survives
    /// only as a seeded torn prefix of at most 12 bytes — strictly
    /// shorter than a WAL frame header, so no complete frame can
    /// survive the tear and recovery must truncate back to the last
    /// completed fsync. Files with no batch in flight are untouched.
    pub fn crash(&self, rng: &mut SimRng) -> Vec<TornFile> {
        let mut files = self.files.lock().expect("disk lock");
        let mut torn = Vec::new();
        for (name, file) in files.iter_mut() {
            let in_flight = file.bytes.len() - file.prev_synced;
            if in_flight == 0 {
                continue;
            }
            // A strict partial: at least 1 byte short of the batch and
            // shorter than the 12-byte frame header.
            let kept = if in_flight >= 2 {
                1 + rng.next_range((in_flight - 1).min(11) as u64) as usize
            } else {
                0
            };
            file.bytes.truncate(file.prev_synced + kept);
            file.synced = file.prev_synced;
            torn.push(TornFile {
                name: name.clone(),
                kept,
                in_flight,
            });
        }
        torn
    }

    /// `(total, synced)` byte counts of `name`, if it exists.
    pub fn len_of(&self, name: &str) -> Option<(usize, usize)> {
        let files = self.files.lock().expect("disk lock");
        files.get(name).map(|f| (f.bytes.len(), f.synced))
    }
}

impl WalMedia for SimDisk {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, WalIoError> {
        let files = self.files.lock().expect("disk lock");
        Ok(files.get(name).map(|f| f.bytes.clone()))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalIoError> {
        let mut files = self.files.lock().expect("disk lock");
        files
            .entry(name.to_string())
            .or_default()
            .bytes
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<(), WalIoError> {
        let mut files = self.files.lock().expect("disk lock");
        let file = files.entry(name.to_string()).or_default();
        file.prev_synced = file.synced;
        file.synced = file.bytes.len();
        Ok(())
    }

    fn replace(&self, name: &str, contents: &[u8]) -> Result<(), WalIoError> {
        // Atomic by contract (tmp + rename + dir fsync): after a crash,
        // old or new, never a mix — so both watermarks land at the end.
        let mut files = self.files.lock().expect("disk lock");
        let file = files.entry(name.to_string()).or_default();
        file.bytes = contents.to_vec();
        file.synced = contents.len();
        file.prev_synced = contents.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_sync_moves_both_watermarks() {
        let disk = SimDisk::new();
        disk.append("f", &[1, 2, 3]).unwrap();
        assert_eq!(disk.len_of("f"), Some((3, 0)));
        disk.sync("f").unwrap();
        assert_eq!(disk.len_of("f"), Some((3, 3)));
        disk.append("f", &[4, 5]).unwrap();
        disk.sync("f").unwrap();
        assert_eq!(disk.read("f").unwrap().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn crash_tears_only_the_last_fsync_batch() {
        let disk = SimDisk::new();
        disk.append("f", &[0u8; 100]).unwrap();
        disk.sync("f").unwrap();
        disk.append("f", &[1u8; 40]).unwrap();
        disk.sync("f").unwrap();
        let mut rng = SimRng::new(7);
        let torn = disk.crash(&mut rng);
        assert_eq!(torn.len(), 1);
        assert_eq!(torn[0].in_flight, 40);
        assert!(torn[0].kept >= 1 && torn[0].kept <= 12);
        // The first batch's 100 bytes are fsync-complete and intact.
        let (len, synced) = disk.len_of("f").unwrap();
        assert_eq!(synced, 100);
        assert_eq!(len, 100 + torn[0].kept);
    }

    #[test]
    fn crash_with_nothing_in_flight_is_a_no_op() {
        let disk = SimDisk::new();
        disk.replace("f", &[9u8; 64]).unwrap();
        let mut rng = SimRng::new(7);
        assert!(disk.crash(&mut rng).is_empty());
        assert_eq!(disk.len_of("f"), Some((64, 64)));
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let build = || {
            let d = SimDisk::new();
            d.append("f", &[0u8; 50]).unwrap();
            d.sync("f").unwrap();
            d.append("f", &[1u8; 30]).unwrap();
            d.sync("f").unwrap();
            d
        };
        let (a, b) = (build(), build());
        let ka: Vec<usize> = a
            .crash(&mut SimRng::new(3))
            .iter()
            .map(|t| t.kept)
            .collect();
        let kb: Vec<usize> = b
            .crash(&mut SimRng::new(3))
            .iter()
            .map(|t| t.kept)
            .collect();
        assert_eq!(ka, kb);
    }
}
