//! E19/E20: the DST corpus and the durability story as registered
//! experiments.
//!
//! E19 runs every `(scenario, arm)` pair at a pinned seed, checks each
//! arm's contract ([`crate::scenario::arm_ok`]), and re-runs two
//! scenarios to prove bit-identical trace fingerprints — the
//! determinism claim, enforced in CI.
//!
//! E20 zooms into the `kill-recover` scenario: the robust/torn/naive
//! matrix with per-arm recovery counters at the pinned seed, plus
//! measured wall-clock recovery times over a real on-disk WAL.

use ff_workload::{Experiment, ExperimentResult, Table};

use crate::net::ScriptMode;
use crate::scenario::{arm_ok, arms, run_scenario, CORPUS};

/// Pinned seed for the CI corpus run (any seed works; this one is
/// fixed so the run is a regression test, not a lottery).
pub const E19_SEED: u64 = 0xDD57_0001;

/// The DST experiment: see module docs.
pub struct E19Dst;

impl Experiment for E19Dst {
    fn id(&self) -> &'static str {
        "e19"
    }

    fn title(&self) -> &'static str {
        "deterministic whole-system simulation: kills, partitions, replayable seeds"
    }

    fn run(&self) -> ExperimentResult {
        let mut table = Table::new(
            "scenario corpus @ pinned seed",
            &[
                "scenario",
                "arm",
                "events",
                "net decisions",
                "completed",
                "consistent",
                "flagged",
                "violations",
                "contract",
            ],
        );
        let mut pass = true;
        let mut notes = Vec::new();
        for def in CORPUS {
            for arm in def.arms {
                let r = run_scenario(def.name, arm, E19_SEED, ScriptMode::Record);
                let ok = arm_ok(&r);
                pass &= ok;
                if !ok {
                    notes.push(format!(
                        "{}/{arm} broke its contract: flagged={} violations={:?}",
                        def.name, r.flagged, r.violations
                    ));
                }
                table.row(&[
                    def.name.to_string(),
                    arm.to_string(),
                    r.events.to_string(),
                    r.decisions.to_string(),
                    r.completed.to_string(),
                    r.consistent.to_string(),
                    r.flagged.to_string(),
                    if r.violations.is_empty() {
                        "-".to_string()
                    } else {
                        r.violations.join("; ")
                    },
                    if ok { "ok" } else { "BROKEN" }.to_string(),
                ]);
            }
        }

        // Determinism: same scenario + seed => bit-identical trace.
        let mut det = Table::new(
            "determinism (two in-process runs)",
            &["scenario", "arm", "hash run 1", "hash run 2", "equal"],
        );
        for (scenario, arm) in [
            ("partition-ramp", "robust"),
            ("kill-combiner", "lease"),
            // The durable path: same seed must mean the same recovery.
            ("kill-recover", "torn"),
        ] {
            let a = run_scenario(scenario, arm, E19_SEED, ScriptMode::Record);
            let b = run_scenario(scenario, arm, E19_SEED, ScriptMode::Record);
            let equal = a.trace_hash == b.trace_hash && a.trace == b.trace;
            pass &= equal;
            if !equal {
                notes.push(format!("{scenario}/{arm} is nondeterministic"));
            }
            det.row(&[
                scenario.to_string(),
                arm.to_string(),
                format!("{:016x}", a.trace_hash),
                format!("{:016x}", b.trace_hash),
                equal.to_string(),
            ]);
        }

        notes.push(
            "robust/lease/torn arms must end verify-consistent and live; naive must be flagged; \
             nolease must stall on the parked ops"
                .to_string(),
        );
        ExperimentResult {
            id: self.id().to_string(),
            title: self.title().to_string(),
            paper_ref: "whole-system validation of §4-§6 constructions under systemic faults"
                .to_string(),
            tables: vec![table, det],
            notes,
            pass,
        }
    }
}

/// The E20 durability experiment: see module docs.
pub struct E20Recovery;

impl Experiment for E20Recovery {
    fn id(&self) -> &'static str {
        "e20"
    }

    fn title(&self) -> &'static str {
        "durable kill-recover: WAL replay after kills, torn power-fail tails, refused naive replay"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut notes = Vec::new();

        // The kill-recover matrix at the pinned seed: a durable server
        // killed mid-serve (torn arm: power-failed), its respawn
        // recovering from the machine's surviving WAL bytes.
        let mut matrix = Table::new(
            "kill-recover matrix @ pinned seed",
            &[
                "arm",
                "completed",
                "ckpts loaded",
                "records replayed",
                "torn tails",
                "recovery refused",
                "consistent",
                "flagged",
                "contract",
            ],
        );
        for arm in arms("kill-recover") {
            let r = run_scenario("kill-recover", arm, E19_SEED, ScriptMode::Record);
            let ok = arm_ok(&r);
            pass &= ok;
            if !ok {
                notes.push(format!(
                    "kill-recover/{arm} broke its contract: flagged={} violations={:?}",
                    r.flagged, r.violations
                ));
            }
            matrix.row(&[
                arm.to_string(),
                r.completed.to_string(),
                r.recovered_checkpoints.to_string(),
                r.recovered_records.to_string(),
                r.recovered_torn.to_string(),
                r.recovery_refused.to_string(),
                r.consistent.to_string(),
                r.flagged.to_string(),
                if ok { "ok" } else { "BROKEN" }.to_string(),
            ]);
        }

        // Recovery wall time over a real on-disk WAL: write n ops
        // through a durable store, drop it cold (the kill model — the
        // unsynced group-commit tail is lost), then time
        // `Store::recover` on the same dir.
        let mut timing = Table::new(
            "measured recovery time (FsMedia, robust backend, 2 shards)",
            &[
                "ops written",
                "ckpts loaded",
                "records replayed",
                "recover wall ms",
                "verify",
            ],
        );
        for &n in &[2_000u32, 20_000] {
            match timed_recovery(n) {
                Ok(row) => {
                    pass &= row.4;
                    timing.row(&[
                        n.to_string(),
                        row.0.to_string(),
                        row.1.to_string(),
                        format!("{:.1}", row.3),
                        row.4.to_string(),
                    ]);
                }
                Err(e) => {
                    pass = false;
                    notes.push(format!("timed recovery at n={n} failed: {e}"));
                }
            }
        }

        notes.push(
            "robust arm: kill drops the store, replay restores it verify-consistent; torn arm: \
             power loss tears the in-flight group commit and recovery lands on the last \
             completed fsync; naive arm: replay through faulty naive cells diverges from the \
             recorded digests and the respawn is refused — never served"
                .to_string(),
        );
        ExperimentResult {
            id: self.id().to_string(),
            title: self.title().to_string(),
            paper_ref: "crash-prone processes over surviving shared state (Golab; \
                        Lundström/Raynal/Schiller) layered on the paper's functional faults"
                .to_string(),
            tables: vec![matrix, timing],
            notes,
            pass,
        }
    }
}

/// Write `n` ops through a durable store on a real temp dir, drop it
/// cold, and time `Store::recover`. Returns
/// `(ckpts, records, skipped, wall_ms, verify_ok)`.
#[allow(clippy::type_complexity)]
fn timed_recovery(n: u32) -> Result<(u64, u64, u64, f64, bool), String> {
    use ff_store::{Backend, FaultConfig, Kv, KvOp, Store, StoreConfig};

    let dir = std::env::temp_dir().join(format!("ff-e20-{}-{n}", std::process::id(),));
    let config = StoreConfig::builder()
        .shards(2)
        .backend(Backend::robust())
        .fault(FaultConfig {
            rate: 0.05,
            ..FaultConfig::default()
        })
        .rotate_kinds(true)
        .checkpoint_interval(64)
        .seed(0xE20)
        .data_dir(&dir)
        .group_commit(64)
        .build()
        .map_err(|e| e.to_string())?;
    {
        let store = Store::new(config.clone());
        let mut client = store.client();
        for i in 0..n {
            let ops = [KvOp::Put(i % 512, i)];
            client.batch(&ops).map_err(|e| e.to_string())?;
        }
        // Dropped cold: no flush — the kill model.
    }
    let start = std::time::Instant::now();
    let (store, report) = Store::recover(config).map_err(|e| e.to_string())?;
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let ok = store.verify(&mut []).all_consistent();
    let out = (
        report.checkpoints_loaded(),
        report.records_replayed(),
        report.torn_tails(),
        wall_ms,
        ok,
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}
