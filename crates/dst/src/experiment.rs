//! E19: the DST corpus as a registered experiment.
//!
//! Runs every `(scenario, arm)` pair at a pinned seed, checks each
//! arm's contract ([`crate::scenario::arm_ok`]), and re-runs two
//! scenarios to prove bit-identical trace fingerprints — the
//! determinism claim, enforced in CI.

use ff_workload::{Experiment, ExperimentResult, Table};

use crate::net::ScriptMode;
use crate::scenario::{arm_ok, run_scenario, CORPUS};

/// Pinned seed for the CI corpus run (any seed works; this one is
/// fixed so the run is a regression test, not a lottery).
pub const E19_SEED: u64 = 0xDD57_0001;

/// The DST experiment: see module docs.
pub struct E19Dst;

impl Experiment for E19Dst {
    fn id(&self) -> &'static str {
        "e19"
    }

    fn title(&self) -> &'static str {
        "deterministic whole-system simulation: kills, partitions, replayable seeds"
    }

    fn run(&self) -> ExperimentResult {
        let mut table = Table::new(
            "scenario corpus @ pinned seed",
            &[
                "scenario",
                "arm",
                "events",
                "net decisions",
                "completed",
                "consistent",
                "flagged",
                "violations",
                "contract",
            ],
        );
        let mut pass = true;
        let mut notes = Vec::new();
        for def in CORPUS {
            for arm in def.arms {
                let r = run_scenario(def.name, arm, E19_SEED, ScriptMode::Record);
                let ok = arm_ok(&r);
                pass &= ok;
                if !ok {
                    notes.push(format!(
                        "{}/{arm} broke its contract: flagged={} violations={:?}",
                        def.name, r.flagged, r.violations
                    ));
                }
                table.row(&[
                    def.name.to_string(),
                    arm.to_string(),
                    r.events.to_string(),
                    r.decisions.to_string(),
                    r.completed.to_string(),
                    r.consistent.to_string(),
                    r.flagged.to_string(),
                    if r.violations.is_empty() {
                        "-".to_string()
                    } else {
                        r.violations.join("; ")
                    },
                    if ok { "ok" } else { "BROKEN" }.to_string(),
                ]);
            }
        }

        // Determinism: same scenario + seed => bit-identical trace.
        let mut det = Table::new(
            "determinism (two in-process runs)",
            &["scenario", "arm", "hash run 1", "hash run 2", "equal"],
        );
        for (scenario, arm) in [("partition-ramp", "robust"), ("kill-combiner", "lease")] {
            let a = run_scenario(scenario, arm, E19_SEED, ScriptMode::Record);
            let b = run_scenario(scenario, arm, E19_SEED, ScriptMode::Record);
            let equal = a.trace_hash == b.trace_hash && a.trace == b.trace;
            pass &= equal;
            if !equal {
                notes.push(format!("{scenario}/{arm} is nondeterministic"));
            }
            det.row(&[
                scenario.to_string(),
                arm.to_string(),
                format!("{:016x}", a.trace_hash),
                format!("{:016x}", b.trace_hash),
                equal.to_string(),
            ]);
        }

        notes.push(
            "robust/lease arms must end verify-consistent and live; naive must be flagged; \
             nolease must stall on the parked ops"
                .to_string(),
        );
        ExperimentResult {
            id: self.id().to_string(),
            title: self.title().to_string(),
            paper_ref: "whole-system validation of §4-§6 constructions under systemic faults"
                .to_string(),
            tables: vec![table, det],
            notes,
            pass,
        }
    }
}
