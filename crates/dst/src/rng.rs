//! The simulation's only randomness source: a seeded splitmix64 stream
//! with deterministic forking.
//!
//! Every decision the simulator makes — fault sampling, workload op
//! generation, latency jitter — draws from a [`SimRng`] that was forked
//! from the run's root seed along a labeled path. Forking (rather than
//! sharing one stream) keeps subsystems decoupled: adding a draw to the
//! network's stream cannot shift the workload generator's, so traces
//! stay comparable across small code changes and every component can be
//! replayed in isolation.

/// One splitmix64 stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

/// The splitmix64 output function (also used by the store for shard
/// routing — one shared definition of "mix this word").
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// A stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: splitmix64(seed),
        }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // The moduli here are tiny (keyspaces, jitter windows) relative
        // to 2^64, so modulo bias is far below anything a scenario can
        // observe.
        self.next_u64() % n
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so fault-rate changes don't shift
            // every later decision index.
            self.next_u64();
            return false;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// An independent child stream. Forks with distinct labels (or from
    /// distinct parent states) never correlate.
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng {
            state: splitmix64(self.next_u64() ^ splitmix64(label)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decoupled_from_later_parent_draws() {
        let mut parent = SimRng::new(3);
        let mut fork = parent.fork(1);
        let first: Vec<u64> = (0..8).map(|_| fork.next_u64()).collect();
        // Replaying the parent up to the same fork point reproduces the
        // child stream regardless of what the parent does afterwards.
        let mut parent2 = SimRng::new(3);
        let mut fork2 = parent2.fork(1);
        parent2.next_u64();
        let second: Vec<u64> = (0..8).map(|_| fork2.next_u64()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
