//! The simulator's headline guarantees, enforced:
//!
//! * same `(scenario, arm, seed)` → bit-identical trace, twice in one
//!   process (and across `--threads` trivially: the sim never spawns
//!   threads);
//! * a recorded run replayed under its own full fault script is
//!   bit-identical to the recording run — the record/replay seam loses
//!   nothing;
//! * the pinned-seed combiner-crash regression: kill-the-combiner
//!   stalls without the lease/epoch reclaim rule and completes with it.

use ff_dst::experiment::E19_SEED;
use ff_dst::net::ScriptMode;
use ff_dst::scenario::{arm_ok, run_scenario, CORPUS};

#[test]
fn same_seed_same_trace_for_every_scenario_and_arm() {
    for def in CORPUS {
        for arm in def.arms {
            let a = run_scenario(def.name, arm, E19_SEED, ScriptMode::Record);
            let b = run_scenario(def.name, arm, E19_SEED, ScriptMode::Record);
            assert_eq!(
                a.trace_hash, b.trace_hash,
                "{}/{arm}: trace hash differs between identical runs",
                def.name
            );
            assert_eq!(a.trace, b.trace, "{}/{arm}: trace lines differ", def.name);
            assert_eq!(a.events, b.events);
            assert_eq!(a.completed, b.completed);
        }
    }
}

#[test]
fn replaying_the_full_recorded_script_is_bit_identical() {
    // Record mode draws the fault RNG; replay mode never touches it.
    // Because fault and jitter streams are independent forks, the run
    // must come out identical anyway.
    for (scenario, arm) in [("partition-ramp", "naive"), ("restart-drain", "robust")] {
        let recorded = run_scenario(scenario, arm, E19_SEED, ScriptMode::Record);
        assert!(recorded.decisions > 0, "{scenario} made no net decisions");
        let replayed = run_scenario(
            scenario,
            arm,
            E19_SEED,
            ScriptMode::Replay(recorded.script.clone()),
        );
        assert_eq!(
            recorded.trace_hash, replayed.trace_hash,
            "{scenario}/{arm}: replay of the recorded script diverged from the recording"
        );
        assert_eq!(recorded.trace, replayed.trace);
    }
}

#[test]
fn distinct_seeds_explore_distinct_schedules() {
    let a = run_scenario("partition-ramp", "robust", E19_SEED, ScriptMode::Record);
    let b = run_scenario("partition-ramp", "robust", E19_SEED + 1, ScriptMode::Record);
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "different seeds should not collapse onto one schedule"
    );
}

#[test]
fn pinned_seed_combiner_crash_needs_the_lease() {
    // Without the lease/epoch reclaim rule the ops claimed by the
    // killed combiner stay parked forever: the workers stall. With it,
    // every worker reclaims, republishes, and finishes.
    let nolease = run_scenario("kill-combiner", "nolease", E19_SEED, ScriptMode::Record);
    assert!(
        nolease.violations.iter().any(|v| v.starts_with("stall:")),
        "nolease run did not stall at the pinned seed: {:?}",
        nolease.violations
    );
    assert!(arm_ok(&nolease), "the stall is this arm's expected outcome");

    let lease = run_scenario("kill-combiner", "lease", E19_SEED, ScriptMode::Record);
    assert!(
        lease.violations.is_empty() && !lease.flagged,
        "lease run must recover cleanly, got {:?}",
        lease.violations
    );
    assert!(lease.consistent);
    assert!(
        lease.completed > nolease.completed,
        "recovery must beat the stall on delivered units"
    );
}

#[test]
fn every_arm_meets_its_contract_at_the_pinned_seed() {
    for def in CORPUS {
        for arm in def.arms {
            let r = run_scenario(def.name, arm, E19_SEED, ScriptMode::Record);
            assert!(
                arm_ok(&r),
                "{}/{arm} broke its contract: flagged={} violations={:?}",
                def.name,
                r.flagged,
                r.violations
            );
        }
    }
}
