//! Replay every committed golden trace and check the minimized fault
//! script still reproduces its violation. A failure here means the
//! failure itself regressed — the bug the golden pins got harder (or
//! impossible) to hit, which is exactly what a golden trace exists to
//! notice.

use ff_dst::net::ScriptMode;
use ff_dst::scenario::run_scenario;
use ff_dst::trace::GoldenTrace;

fn reproduces(r: &ff_dst::RunReport, violation: &str) -> bool {
    match violation {
        "flagged" => r.flagged,
        "recovery-refused" => r.recovery_refused > 0,
        "stall" => r.violations.iter().any(|v| v.starts_with("stall:")),
        other => panic!("unknown golden violation kind {other:?}"),
    }
}

#[test]
fn committed_golden_traces_reproduce() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("crates/dst/golden exists and is committed")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable golden file");
        let golden = GoldenTrace::from_json(&text)
            .unwrap_or_else(|| panic!("{} is not a golden-trace file", path.display()));
        let r = run_scenario(
            &golden.scenario,
            &golden.arm,
            golden.seed,
            ScriptMode::Replay(golden.script.clone()),
        );
        assert!(
            reproduces(&r, &golden.violation),
            "{}: {} on {}/{} seed={:#x} no longer reproduces",
            path.display(),
            golden.violation,
            golden.scenario,
            golden.arm,
            golden.seed
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected at least two committed goldens, found {checked}"
    );
}
