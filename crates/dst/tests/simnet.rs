//! SimNet ↔ Session integration properties.
//!
//! The fabric is allowed to do terrible things to a byte stream —
//! drop, duplicate, delay and reorder whole chunks — and the protocol
//! state machine on the receiving end must never panic: it either
//! stages ops or degrades to the malformed-stream close path. With
//! faults off, the fabric must be invisible: per-connection delivery is
//! FIFO and byte-identical to the sender's encoding.

use ff_dst::net::{FaultRates, NetConfig, Payload, ScriptMode, SimNet};
use ff_dst::rng::SimRng;
use ff_dst::topology::Topology;
use ff_dst::trace::{FaultAction, FaultScript, Trace};
use ff_net::session::Session;
use ff_net::wire::encode_request;
use ff_net::Request;
use ff_store::KvOp;
use proptest::prelude::*;

fn world() -> (Topology, SimNet, ff_dst::net::ConnId) {
    let mut topo = Topology::new();
    let ma = topo.machine("a");
    let mb = topo.machine("b");
    let pa = topo.process(ma, "sender");
    let pb = topo.process(mb, "receiver");
    let mut root = SimRng::new(7);
    let mut net = SimNet::new(
        NetConfig::default(),
        root.fork(1),
        root.fork(2),
        ScriptMode::Record,
    );
    let conn = net.connect(pa, pb);
    (topo, net, conn)
}

fn sender(topo: &Topology) -> ff_dst::topology::ProcId {
    // world() created the sender as the first process.
    let _ = topo;
    ff_dst::topology::ProcId(0)
}

fn encode_stream(seed: &mut u64, frames: usize) -> (Vec<u8>, usize) {
    let mix = |s: &mut u64| {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut out = Vec::new();
    let mut ops = 0usize;
    for id in 0..frames {
        let n = (mix(seed) % 5 + 1) as usize;
        ops += n;
        let batch: Vec<KvOp> = (0..n)
            .map(|_| match mix(seed) % 3 {
                0 => KvOp::Get(mix(seed) as u32 & 0xFFFF),
                1 => KvOp::Put(mix(seed) as u32 & 0xFFFF, mix(seed) as u32 & 0xFFFF),
                _ => KvOp::Del(mix(seed) as u32 & 0xFFFF),
            })
            .collect();
        encode_request(&mut out, id as u32 + 1, &Request::Batch(batch));
    }
    (out, ops)
}

fn chunked(stream: &[u8], seed: &mut u64) -> Vec<Vec<u8>> {
    let mix = |s: &mut u64| {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    let mut chunks = Vec::new();
    let mut at = 0;
    while at < stream.len() {
        let take = (mix(seed) as usize % 40 + 1).min(stream.len() - at);
        chunks.push(stream[at..at + take].to_vec());
        at += take;
    }
    chunks
}

/// Deliveries in arrival order (the event heap's order: time, then
/// scheduling sequence).
fn in_arrival_order(mut deliveries: Vec<(usize, ff_dst::net::Delivery)>) -> Vec<Vec<u8>> {
    deliveries.sort_by_key(|(seq, d)| (d.at, *seq));
    deliveries
        .into_iter()
        .map(|(_, d)| match d.payload {
            Payload::Bytes(b) => b,
            Payload::Closed => Vec::new(),
        })
        .collect()
}

#[test]
fn faults_off_is_fifo_and_byte_identical() {
    let (topo, mut net, conn) = world();
    let from = sender(&topo);
    let mut trace = Trace::new();
    let mut seed = 0x5EED_0001u64;
    let (stream, ops) = encode_stream(&mut seed, 40);
    let mut deliveries = Vec::new();
    let mut seq = 0usize;
    for (i, chunk) in chunked(&stream, &mut seed).into_iter().enumerate() {
        for d in net.send(i as u64 * 1_000, conn, from, chunk, &topo, &mut trace) {
            deliveries.push((seq, d));
            seq += 1;
        }
    }
    let arrived: Vec<u8> = in_arrival_order(deliveries).concat();
    assert_eq!(arrived, stream, "faults-off fabric must be a pipe");

    // And the Session stages exactly the sender's ops from it.
    let mut session = Session::new();
    session.ingest(&arrived);
    let mut run = Vec::new();
    while session.has_pending_frame() {
        session.stage(&mut run);
    }
    assert_eq!(run.len(), ops);
    assert!(!session.closing());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Whatever the fabric does — arbitrary drop/duplicate/delay/reorder
    // schedules over arbitrary chunkings — the Session's decoder must
    // not panic. It stages what still parses and flips to the
    // malformed-close path when framing is lost; both are fine, a
    // panic is not.
    #[test]
    fn arbitrary_fault_schedules_never_panic_the_decoder(
        seed in any::<u64>(),
        frames in 1usize..20,
        script_seed in any::<u64>(),
    ) {
        let mut topo = Topology::new();
        let ma = topo.machine("a");
        let mb = topo.machine("b");
        let pa = topo.process(ma, "sender");
        let pb = topo.process(mb, "receiver");
        let _ = pb;
        let mut s = script_seed;
        let mix = |s: &mut u64| {
            *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        // A scripted schedule hitting ~half of all decisions.
        let mut script = FaultScript::new();
        for d in 0..256u64 {
            let roll = mix(&mut s) % 8;
            let action = match roll {
                0 => FaultAction::Drop,
                1 => FaultAction::Duplicate,
                2 => FaultAction::Delay(1 + (mix(&mut s) % 30) as u32),
                3 => FaultAction::Reorder,
                _ => continue,
            };
            script.record(d, action);
        }
        let mut root = SimRng::new(seed);
        let mut net = SimNet::new(
            NetConfig::default(),
            root.fork(1),
            root.fork(2),
            ScriptMode::Replay(script),
        );
        net.set_rates(FaultRates::default());
        let conn = net.connect(pa, pb);
        let mut trace = Trace::new();
        let mut data_seed = seed ^ 0xABCD;
        let (stream, _) = encode_stream(&mut data_seed, frames);
        let mut deliveries = Vec::new();
        let mut seq = 0usize;
        for (i, chunk) in chunked(&stream, &mut data_seed).into_iter().enumerate() {
            for d in net.send(i as u64 * 700, conn, pa, chunk, &topo, &mut trace) {
                deliveries.push((seq, d));
                seq += 1;
            }
        }
        let mut session = Session::new();
        let mut run = Vec::new();
        for bytes in in_arrival_order(deliveries) {
            session.ingest(&bytes);
            // Stage everything decodable so far; must never panic.
            while session.has_pending_frame() && !session.closing() {
                let before = run.len();
                session.stage(&mut run);
                if run.len() == before && session.pending_slots() == 0 {
                    break;
                }
            }
            if session.closing() {
                break;
            }
        }
        // Staged ops can only come from the sender's value domain.
        for op in &run {
            prop_assert!(op.key() <= 0xFFFF);
        }
    }
}
