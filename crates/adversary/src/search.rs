//! Safety probing across `(f, t, n)` configurations — the machinery
//! behind the consensus-hierarchy experiment (Section 5.2 / E6).
//!
//! Combining Theorems 6 and 19, a set of `f` CAS objects with a bounded
//! number of overriding faults each has consensus number exactly `f + 1`:
//! safe for `n ≤ f + 1` (verified exhaustively or by stress) and violated
//! for `n ≥ f + 2` (exhibited by the covering attack). This populates
//! every level of Herlihy's hierarchy with a faulty object.

use crate::covering::covering_attack;
use ff_consensus::staged_machines;
use ff_sim::{
    explore_parallel, ExplorerConfig, FaultPlan, GreedyFault, Heap, RunConfig, SeededRandom,
};
use ff_spec::{check_consensus, Bound, Input};

/// The verdict of probing one configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SafetyVerdict {
    /// Exhaustively explored: no violation, no cycle.
    VerifiedExhaustive,
    /// Stress-tested across seeds: no violation found (not a proof).
    NoViolationFound {
        /// Number of randomized trials executed.
        trials: u64,
    },
    /// A violating execution was found/constructed.
    Violated,
    /// Exploration hit its resource caps without a verdict.
    Inconclusive,
}

impl SafetyVerdict {
    /// `true` for the two "safe" verdicts.
    pub fn safe(&self) -> bool {
        matches!(
            self,
            SafetyVerdict::VerifiedExhaustive | SafetyVerdict::NoViolationFound { .. }
        )
    }
}

/// Probe the staged protocol (Figure 3) with `f` objects — all faulty
/// with at most `t` overriding faults each — and `n` processes.
///
/// * `n ≤ f + 1`: exhaustive exploration when the state space fits under
///   `config`, randomized stress otherwise.
/// * `n ≥ f + 2`: the covering attack constructs the violation directly.
pub fn probe_staged(f: u64, t: u64, n: usize, config: ExplorerConfig) -> SafetyVerdict {
    let inputs: Vec<Input> = (0..n as u32).map(|i| Input(100 + i)).collect();
    if n as u64 >= f + 2 {
        let report = covering_attack(staged_machines(&inputs, f, t), f as usize);
        return if report.violated() {
            SafetyVerdict::Violated
        } else {
            SafetyVerdict::Inconclusive
        };
    }

    let plan = FaultPlan::overriding(f as usize, Bound::Finite(t));
    let state = ff_sim::SimState::new(
        staged_machines(&inputs, f, t),
        Heap::new(f as usize, 0),
        plan.clone(),
    );
    let report = explore_parallel(state, config);
    if report.violation.is_some() {
        return SafetyVerdict::Violated;
    }
    if report.verified() {
        return SafetyVerdict::VerifiedExhaustive;
    }

    // Too big to enumerate: fall back to randomized stress.
    let trials = 200u64;
    for seed in 0..trials {
        let mut oracle = GreedyFault::new(plan.clone());
        let run = ff_sim::run(
            staged_machines(&inputs, f, t),
            Heap::new(f as usize, 0),
            &plan,
            &mut SeededRandom::new(seed),
            &mut oracle,
            RunConfig {
                step_limit: 1_000_000,
                record_trace: false,
            },
        );
        if !check_consensus(&run.outcomes, None).ok() {
            return SafetyVerdict::Violated;
        }
    }
    SafetyVerdict::NoViolationFound { trials }
}

/// Probe `n = 2 ..= n_max` for fixed `(f, t)`, returning the measured
/// safety boundary — the empirical consensus number is the largest safe
/// `n`.
pub fn consensus_number_scan(
    f: u64,
    t: u64,
    n_max: usize,
    config: ExplorerConfig,
) -> Vec<(usize, SafetyVerdict)> {
    (2..=n_max)
        .map(|n| (n, probe_staged(f, t, n, config)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExplorerConfig {
        ExplorerConfig {
            max_states: 300_000,
            max_depth: 10_000,
            stop_at_first_violation: true,
            threads: 1,
        }
    }

    #[test]
    fn hierarchy_level_f1() {
        // f = 1, t = 1: consensus number 2.
        let scan = consensus_number_scan(1, 1, 3, small_config());
        assert_eq!(scan.len(), 2);
        assert!(scan[0].1.safe(), "n = 2 must be safe: {scan:?}");
        assert_eq!(scan[1].1, SafetyVerdict::Violated, "n = 3 must break");
    }

    #[test]
    fn hierarchy_level_f2() {
        // f = 2, t = 1: consensus number 3.
        let scan = consensus_number_scan(2, 1, 4, small_config());
        assert!(scan[0].1.safe(), "n = 2: {scan:?}");
        assert!(scan[1].1.safe(), "n = 3: {scan:?}");
        assert_eq!(scan[2].1, SafetyVerdict::Violated, "n = 4 must break");
    }

    #[test]
    fn exhaustive_at_smallest_size() {
        assert_eq!(
            probe_staged(1, 1, 2, small_config()),
            SafetyVerdict::VerifiedExhaustive
        );
    }
}
