//! A register-augmented consensus attempt, matching Theorem 18's full
//! statement: the impossibility holds for protocols using `f` CAS objects
//! **and an unbounded number of read/write registers**.
//!
//! The machine implements the natural "announce then race" protocol:
//! each process first *writes its input to its own register* (announce),
//! then *reads* every other announcement, then runs the one-shot CAS
//! race on `O_0`, adopting the winner. Registers are reliable here — the
//! theorem says they do not help: with the CAS object faulty and
//! unboundedly overriding, the explorer still finds a violation for
//! `n > 2`, while `n = 2` remains safe (Theorem 4 carries over).

use ff_sim::{Op, OpResult, Process, RegId, Status};
use ff_spec::{Input, ObjectId, BOTTOM};

/// Phases of the announce-then-race protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Write own input to register `self.id`.
    Announce,
    /// Read register `i` (sweeping all `n` registers).
    Gather { i: usize },
    /// CAS the input into `O_0`.
    Race,
}

/// The announce-then-race machine for process `id` of `n`.
#[derive(Clone, Debug)]
pub struct AnnounceRaceMachine {
    id: usize,
    n: usize,
    input: Input,
    phase: Phase,
    /// Announcements observed (0 where not yet written).
    seen: Vec<u64>,
    status: Status,
}

impl AnnounceRaceMachine {
    /// Machine for process `id` (of `n`) with the given input.
    pub fn new(id: usize, n: usize, input: Input) -> Self {
        assert!(id < n);
        AnnounceRaceMachine {
            id,
            n,
            input,
            phase: Phase::Announce,
            seen: vec![0; n],
            status: Status::Running,
        }
    }

    /// Build the full set of `n` machines (process `i` gets `inputs[i]`).
    pub fn all(inputs: &[Input]) -> Vec<Box<dyn Process>> {
        let n = inputs.len();
        inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| Box::new(AnnounceRaceMachine::new(i, n, v)) as Box<dyn Process>)
            .collect()
    }
}

impl Process for AnnounceRaceMachine {
    fn next_op(&self) -> Op {
        match self.phase {
            Phase::Announce => Op::Write(RegId(self.id), self.input.to_word()),
            Phase::Gather { i } => Op::Read(RegId(i)),
            Phase::Race => Op::Cas {
                obj: ObjectId(0),
                exp: BOTTOM,
                new: self.input.to_word(),
            },
        }
    }

    fn apply(&mut self, result: OpResult) -> Status {
        match self.phase {
            Phase::Announce => {
                debug_assert_eq!(result, OpResult::Write);
                self.phase = Phase::Gather { i: 0 };
            }
            Phase::Gather { i } => {
                if let OpResult::Read(v) = result {
                    self.seen[i] = v;
                }
                if i + 1 < self.n {
                    self.phase = Phase::Gather { i: i + 1 };
                } else {
                    self.phase = Phase::Race;
                }
            }
            Phase::Race => {
                let old = result.cas_old();
                let decided = Input::from_word(old).unwrap_or(self.input);
                self.status = Status::Decided(decided);
            }
        }
        self.status
    }

    fn status(&self) -> Status {
        self.status
    }

    fn input(&self) -> Input {
        self.input
    }

    fn snapshot(&self) -> Vec<u64> {
        let mut v = vec![
            self.id as u64,
            self.input.0 as u64,
            match self.phase {
                Phase::Announce => 0,
                Phase::Gather { i } => 1 + i as u64,
                Phase::Race => 1 + self.n as u64,
            },
            self.status.word(),
        ];
        v.extend_from_slice(&self.seen);
        v
    }

    fn box_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::{explore, ExplorerConfig, FaultPlan, Heap, SimState};
    use ff_spec::Bound;

    fn inputs(n: usize) -> Vec<Input> {
        (0..n as u32).map(|i| Input(10 * (i + 1))).collect()
    }

    #[test]
    fn fault_free_register_protocol_is_correct() {
        let n = 3;
        let state = SimState::new(
            AnnounceRaceMachine::all(&inputs(n)),
            Heap::new(1, n),
            FaultPlan::none(),
        );
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn registers_do_not_evade_theorem18() {
        // One faulty CAS object + reliable registers, n = 3: still broken.
        let n = 3;
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(AnnounceRaceMachine::all(&inputs(n)), Heap::new(1, n), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.violation.is_some(), "{report:?}");
    }

    #[test]
    fn registers_keep_theorem4_for_two_processes() {
        let n = 2;
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let state = SimState::new(AnnounceRaceMachine::all(&inputs(n)), Heap::new(1, n), plan);
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn machine_gathers_announcements() {
        let mut m = AnnounceRaceMachine::new(0, 2, Input(5));
        assert_eq!(m.next_op(), Op::Write(RegId(0), 5));
        m.apply(OpResult::Write);
        assert_eq!(m.next_op(), Op::Read(RegId(0)));
        m.apply(OpResult::Read(5));
        assert_eq!(m.next_op(), Op::Read(RegId(1)));
        m.apply(OpResult::Read(7));
        assert_eq!(m.seen, vec![5, 7]);
        assert!(matches!(m.next_op(), Op::Cas { .. }));
        assert_eq!(
            m.apply(OpResult::Cas { old: BOTTOM }),
            Status::Decided(Input(5))
        );
    }
}
