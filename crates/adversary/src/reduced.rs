//! The reduced model of Theorem 18 and explorer-based violation search
//! for the unbounded-faults lower bound.
//!
//! Theorem 18: for `n > 2`, no `(f, ∞, n)`-tolerant consensus exists from
//! `f` CAS objects (plus any number of read/write registers). The proof
//! works in a *reduced model* where one designated process's CAS
//! executions are always faulty. Mechanically, we go further: the
//! exhaustive explorer searches **all** fault patterns within the
//! unbounded budget, so for any concrete protocol using only faulty
//! objects it either finds a violating execution (the theorem's
//! prediction) or proves the configuration safe.

use ff_sim::{
    explore, run, ExploreReport, ExplorerConfig, FaultPlan, GreedyFault, Heap, Process,
    ProcessBoundFault, RunConfig, RunReport, SeededRandom,
};
use ff_spec::{Bound, ProcessId};

/// Exhaustively search for a consensus violation of `processes` over
/// `objects` CAS cells, **all** of which may fault unboundedly (the
/// Theorem 18 environment).
pub fn find_violation_unbounded(
    processes: Vec<Box<dyn Process>>,
    objects: usize,
    config: ExplorerConfig,
) -> ExploreReport {
    let plan = FaultPlan::overriding(objects, Bound::Unbounded);
    let state = ff_sim::SimState::new(processes, Heap::new(objects, 0), plan);
    explore(state, config)
}

/// Run one execution in the literal reduced model: `culprit`'s CAS
/// executions always fault (the objects being unboundedly faulty), all
/// other processes' CASes are correct, under a seeded random schedule.
pub fn reduced_model_run(
    processes: Vec<Box<dyn Process>>,
    objects: usize,
    culprit: ProcessId,
    seed: u64,
) -> RunReport {
    let plan = FaultPlan::overriding(objects, Bound::Unbounded);
    let mut oracle = ProcessBoundFault::new(plan.clone(), culprit);
    run(
        processes,
        Heap::new(objects, 0),
        &plan,
        &mut SeededRandom::new(seed),
        &mut oracle,
        RunConfig::default(),
    )
}

/// Randomized violation search: greedy faults under many seeded random
/// schedules. Returns the first violating run, for configurations too
/// large to explore exhaustively.
pub fn find_violation_randomized(
    mut make_processes: impl FnMut() -> Vec<Box<dyn Process>>,
    objects: usize,
    plan: &FaultPlan,
    seeds: std::ops::Range<u64>,
) -> Option<(u64, RunReport)> {
    for seed in seeds {
        let mut oracle = GreedyFault::new(plan.clone());
        let report = run(
            make_processes(),
            Heap::new(objects, 0),
            plan,
            &mut SeededRandom::new(seed),
            &mut oracle,
            RunConfig {
                step_limit: 1_000_000,
                record_trace: true,
            },
        );
        let verdict = ff_spec::check_consensus(&report.outcomes, None);
        if !verdict.ok() {
            return Some((seed, report));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_consensus::{cascades, one_shots};
    use ff_spec::{check_consensus, Input};

    #[test]
    fn theorem18_f1_n3_violation_exists() {
        // One object, all faulty (unbounded), three one-shot processes:
        // the explorer finds the violating execution Theorem 18 predicts.
        let report = find_violation_unbounded(
            one_shots(&[Input(10), Input(20), Input(30)]),
            1,
            ExplorerConfig::default(),
        );
        assert!(report.violation.is_some(), "{report:?}");
    }

    #[test]
    fn theorem18_cascade_with_f_objects_only() {
        // Figure 2's protocol run with f objects instead of f + 1 (so no
        // reliable object remains): CascadeMachine with parameter f - 1
        // sweeps exactly f objects. f = 2, n = 3: violation exists.
        let report = find_violation_unbounded(
            cascades(&[Input(10), Input(20), Input(30)], 1),
            2,
            ExplorerConfig::default(),
        );
        assert!(report.violation.is_some(), "{report:?}");
    }

    #[test]
    fn theorem4_boundary_two_processes_safe() {
        // The same environment with n = 2 is SAFE (Theorem 4): the lower
        // bound genuinely needs n > 2.
        let report = find_violation_unbounded(
            one_shots(&[Input(10), Input(20)]),
            1,
            ExplorerConfig::default(),
        );
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn reduced_model_run_is_replayable() {
        let a = reduced_model_run(
            one_shots(&[Input(1), Input(2), Input(3)]),
            1,
            ProcessId(0),
            7,
        );
        let b = reduced_model_run(
            one_shots(&[Input(1), Input(2), Input(3)]),
            1,
            ProcessId(0),
            7,
        );
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn randomized_search_finds_oneshot_break() {
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let hit = find_violation_randomized(
            || one_shots(&[Input(1), Input(2), Input(3)]),
            1,
            &plan,
            0..200,
        );
        let (seed, report) = hit.expect("some seed must break the one-shot");
        let verdict = check_consensus(&report.outcomes, None);
        assert!(!verdict.ok(), "seed {seed} reported a non-violation");
    }

    #[test]
    fn randomized_search_respects_safe_configs() {
        // Figure 2 with its full f + 1 objects: no seed breaks it.
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let hit = find_violation_randomized(
            || cascades(&[Input(1), Input(2), Input(3)], 1),
            2,
            &plan,
            0..100,
        );
        assert!(hit.is_none());
    }
}
