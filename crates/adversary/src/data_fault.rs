//! The data-fault adversary (Section 3.1 / Afek et al.) and the
//! functional-vs-data model separation (experiment E7).
//!
//! A *data* fault corrupts a memory cell at an arbitrary time,
//! independently of any operation. Afek et al.'s impossibility implies
//! that consensus from **faulty-only** objects is unattainable in that
//! model; the paper's Theorem 6 shows it *is* attainable under bounded
//! **functional** (overriding) faults. The separating attack is tiny:
//! let `p_0` run solo to a decision, corrupt every cell back to `⊥` (one
//! data fault per object — the same `(f, t = 1)` budget Figure 3
//! tolerates), and let `p_1` run solo: the memory looks fresh, so `p_1`
//! decides its own input. Overriding faults can never manufacture this
//! execution because they only ever write values some process supplied.

use ff_sim::{FaultDecision, FaultPlan, Heap, Process, SimState, Status, StepDecision};
use ff_spec::{Input, ObjectId, ProcessId, BOTTOM};

/// Step budget per solo segment.
const SEGMENT_STEP_LIMIT: u64 = 1_000_000;

/// What the wipe attack produced.
#[derive(Clone, Debug)]
pub struct DataFaultReport {
    /// `p_0`'s decision.
    pub first_decision: Option<Input>,
    /// `p_1`'s decision after the wipe.
    pub second_decision: Option<Input>,
    /// Number of data faults injected (= number of objects corrupted).
    pub corruptions: u64,
    /// Maximum corruptions on any single object (always ≤ 1 here).
    pub corruptions_per_object: u64,
}

impl DataFaultReport {
    /// `true` iff the two solo runs disagreed — the data-fault model's
    /// inevitable violation.
    pub fn violated(&self) -> bool {
        match (self.first_decision, self.second_decision) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// Execute the wipe attack: `processes[0]` solo to decision, one
/// corruption (to `⊥`) per object, `processes[1]` solo to decision.
///
/// All process CAS executions are *functionally correct* — the only
/// misbehavior is the data corruption between the segments.
pub fn wipe_attack(processes: Vec<Box<dyn Process>>, objects: usize) -> DataFaultReport {
    assert!(processes.len() >= 2, "needs two processes");
    let mut state = SimState::new(processes, Heap::new(objects, 0), FaultPlan::none());

    let solo = |state: &mut SimState, i: usize| {
        let mut guard = 0u64;
        while state.processes[i].status() == Status::Running {
            guard += 1;
            assert!(guard < SEGMENT_STEP_LIMIT, "solo run exceeded step limit");
            state.step(ff_sim::Choice {
                pid: ProcessId(i),
                decision: StepDecision::Apply(FaultDecision::Correct),
                had_opportunity: false,
            });
        }
        state.processes[i].status().decision()
    };

    let first_decision = solo(&mut state, 0);

    // The data faults: wipe every cell back to ⊥ — one corruption per
    // object, at a moment when no operation is executing.
    let mut corruptions = 0;
    for obj in 0..objects {
        state.heap.corrupt_cas(ObjectId(obj), BOTTOM);
        corruptions += 1;
    }

    let second_decision = solo(&mut state, 1);

    DataFaultReport {
        first_decision,
        second_decision,
        corruptions,
        corruptions_per_object: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_consensus::{cascades, staged_machines};
    use ff_sim::{explore, ExplorerConfig};
    use ff_spec::Bound;

    #[test]
    fn data_faults_break_staged_protocol() {
        // Figure 3's protocol, f = 2 objects, budget one fault per object
        // — fatal in the DATA fault model.
        let report = wipe_attack(staged_machines(&[Input(10), Input(20)], 2, 1), 2);
        assert!(report.violated(), "{report:?}");
        assert_eq!(report.first_decision, Some(Input(10)));
        assert_eq!(report.second_decision, Some(Input(20)));
        assert_eq!(report.corruptions, 2);
        assert_eq!(report.corruptions_per_object, 1);
    }

    #[test]
    fn functional_faults_with_same_budget_are_survivable() {
        // The same protocol and the same (f = 1, t = 1) budget in the
        // FUNCTIONAL model: exhaustively safe (Theorem 6). This pair of
        // tests is the model separation.
        let plan = FaultPlan::overriding(1, Bound::Finite(1));
        let state = SimState::new(
            staged_machines(&[Input(10), Input(20)], 1, 1),
            Heap::new(1, 0),
            plan,
        );
        let report = explore(state, ExplorerConfig::default());
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn data_faults_break_the_cascade_too() {
        // Even Figure 2 (f + 1 objects) falls if EVERY object may suffer
        // one data fault — Afek et al. require a majority of reliable
        // objects; with all objects wiped nothing survives.
        let report = wipe_attack(cascades(&[Input(1), Input(2)], 1), 2);
        assert!(report.violated(), "{report:?}");
    }

    #[test]
    fn wipe_without_corruption_is_harmless() {
        // Degenerate check: zero objects wiped (objects = 0 not meaningful
        // for protocols; use a protocol then wipe nothing by corrupting
        // cells to their current values). Here: run the attack but with
        // the second process reading the intact memory — i.e. corrupt 0
        // cells by calling with objects covering all, then manually
        // verifying the no-wipe baseline.
        let mut state = SimState::new(
            staged_machines(&[Input(10), Input(20)], 2, 1),
            Heap::new(2, 0),
            FaultPlan::none(),
        );
        // p0 solo:
        while state.processes[0].status() == Status::Running {
            state.step(ff_sim::Choice {
                pid: ProcessId(0),
                decision: StepDecision::Apply(FaultDecision::Correct),
                had_opportunity: false,
            });
        }
        // no wipe; p1 solo:
        while state.processes[1].status() == Status::Running {
            state.step(ff_sim::Choice {
                pid: ProcessId(1),
                decision: StepDecision::Apply(FaultDecision::Correct),
                had_opportunity: false,
            });
        }
        assert_eq!(
            state.processes[0].status().decision(),
            state.processes[1].status().decision(),
            "without corruption the solo runs agree"
        );
    }
}
