//! The covering adversary of Theorem 19 — a protocol-agnostic attack.
//!
//! Theorem 19: for any `f, t ∈ ℕ⁺`, no `(f, t, f+2)`-tolerant consensus
//! exists from `f` CAS objects (already with `t = 1`). The proof builds
//! one execution against an *arbitrary* protocol:
//!
//! 1. `p_0` runs alone until it decides (its own input `v_0`, by validity).
//! 2. For `i = 1 … f`: `p_i` runs alone until its first CAS on an object
//!    not yet *covered* (written faultily) by `p_1 … p_{i-1}`; that CAS
//!    suffers an overriding fault — burying whatever `p_0` (or anyone)
//!    left there — and `p_i` is halted on the spot.
//! 3. After `f` coverings, every object has been overridden; `p_{f+1}`
//!    runs alone and — unable to distinguish this execution from one in
//!    which `p_0` never ran — decides a value in `{v_1, …, v_{f+1}}`.
//!
//! With distinct inputs, `p_0` and `p_{f+1}` disagree: consistency is
//! violated while each object faulted at most once. This module executes
//! that schedule against any set of [`Process`] machines.

use ff_sim::{Choice, FaultDecision, FaultPlan, Heap, Op, Process, SimState, Status, StepDecision};
use ff_spec::{Bound, Input, ObjectId, ProcessId};

/// Per-segment step budget: within tolerance, wait-free protocols decide
/// in far fewer steps; tripping this means the protocol (or the attack's
/// premise) is broken.
const SEGMENT_STEP_LIMIT: u64 = 1_000_000;

/// What the covering attack observed.
#[derive(Clone, Debug)]
pub struct CoveringReport {
    /// `p_0`'s decision from its solo run.
    pub first_decision: Option<Input>,
    /// `p_{f+1}`'s decision from its final solo run.
    pub last_decision: Option<Input>,
    /// The objects covered, in covering order (one per `p_1 … p_f`).
    pub covered: Vec<ObjectId>,
    /// Processes the adversary halted right after their covering write.
    pub halted: Vec<ProcessId>,
    /// Processes among `p_1 … p_f` that decided *before* reaching an
    /// uncovered object (possible only if the attack's premise fails —
    /// e.g. the protocol is not correct solo, or `f` was overstated).
    pub early_deciders: Vec<(ProcessId, Input)>,
    /// Total steps executed across all segments.
    pub steps: u64,
    /// The choice log (replayable through [`SimState`]).
    pub choices: Vec<Choice>,
}

impl CoveringReport {
    /// `true` iff the attack produced the predicted consistency violation
    /// between `p_0` and `p_{f+1}`.
    pub fn violated(&self) -> bool {
        match (self.first_decision, self.last_decision) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// Execute the covering attack.
///
/// `processes` must contain `f + 2` machines (with distinct inputs for a
/// conclusive verdict) of an arbitrary consensus protocol that uses the
/// `objects` CAS cells of a fresh heap; `objects` plays the role of `f`.
pub fn covering_attack(processes: Vec<Box<dyn Process>>, objects: usize) -> CoveringReport {
    let n = processes.len();
    assert!(
        n >= objects + 2,
        "the covering argument needs f + 2 = {} processes, got {n}",
        objects + 2
    );
    // Each object suffers at most one overriding fault: t = 1.
    let plan = FaultPlan::overriding(objects, Bound::Finite(1));
    let mut state = SimState::new(processes, Heap::new(objects, 0), plan);

    let mut report = CoveringReport {
        first_decision: None,
        last_decision: None,
        covered: Vec::new(),
        halted: Vec::new(),
        early_deciders: Vec::new(),
        steps: 0,
        choices: Vec::new(),
    };
    let mut covered = vec![false; objects];

    let step = |state: &mut SimState, report: &mut CoveringReport, choice: Choice| {
        state.step(choice);
        report.steps += 1;
        report.choices.push(choice);
    };

    // Segment 0: p_0 solo until it decides.
    let p0 = ProcessId(0);
    let mut guard = 0u64;
    while state.processes[0].status() == Status::Running {
        guard += 1;
        assert!(
            guard < SEGMENT_STEP_LIMIT,
            "p0 solo run exceeded step limit"
        );
        step(
            &mut state,
            &mut report,
            Choice {
                pid: p0,
                decision: StepDecision::Apply(FaultDecision::Correct),
                had_opportunity: false,
            },
        );
    }
    report.first_decision = state.processes[0].status().decision();

    // Segments 1..=f: cover one fresh object per process, halting it.
    for i in 1..=objects {
        let pid = ProcessId(i);
        let mut guard = 0u64;
        loop {
            guard += 1;
            assert!(
                guard < SEGMENT_STEP_LIMIT,
                "{pid} solo run exceeded step limit"
            );
            match state.processes[i].status() {
                Status::Decided(v) => {
                    // The premise failed for this process; record and move on.
                    report.early_deciders.push((pid, v));
                    break;
                }
                Status::Running => {}
            }
            let op = state.processes[i].next_op();
            let fresh_target = match op {
                Op::Cas { obj, .. } if !covered[obj.0] => Some(obj),
                _ => None,
            };
            match fresh_target {
                Some(obj) => {
                    // The covering write: an overriding fault (which, when
                    // the comparison happens to match, degrades to a
                    // correct write with the same memory effect — still
                    // indistinguishable to p_i from its solo run).
                    step(
                        &mut state,
                        &mut report,
                        Choice {
                            pid,
                            decision: StepDecision::Apply(FaultDecision::Override),
                            had_opportunity: true,
                        },
                    );
                    covered[obj.0] = true;
                    report.covered.push(obj);
                    report.halted.push(pid);
                    break; // p_i is halted by the adversary.
                }
                None => {
                    step(
                        &mut state,
                        &mut report,
                        Choice {
                            pid,
                            decision: StepDecision::Apply(FaultDecision::Correct),
                            had_opportunity: false,
                        },
                    );
                }
            }
        }
    }

    // Final segment: p_{f+1} solo until it decides.
    let last = objects + 1;
    let pid = ProcessId(last);
    let mut guard = 0u64;
    while state.processes[last].status() == Status::Running {
        guard += 1;
        assert!(
            guard < SEGMENT_STEP_LIMIT,
            "{pid} solo run exceeded step limit"
        );
        step(
            &mut state,
            &mut report,
            Choice {
                pid,
                decision: StepDecision::Apply(FaultDecision::Correct),
                had_opportunity: false,
            },
        );
    }
    report.last_decision = state.processes[last].status().decision();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_consensus::{one_shots, staged_machines};

    fn inputs(n: usize) -> Vec<Input> {
        (0..n as u32).map(|i| Input(10 * (i + 1))).collect()
    }

    #[test]
    fn covering_breaks_staged_with_f_plus_2_processes() {
        // Theorem 19 against Figure 3 itself: f objects, f + 2 staged
        // machines, t = 1. The attack must produce disagreement.
        for f in 1..=3u64 {
            let procs = staged_machines(&inputs(f as usize + 2), f, 1);
            let report = covering_attack(procs, f as usize);
            assert!(
                report.violated(),
                "f = {f}: covering attack failed: {report:?}"
            );
            assert_eq!(report.covered.len(), f as usize);
            assert_eq!(
                report.first_decision,
                Some(Input(10)),
                "p0 decides its own input"
            );
            assert!(report.early_deciders.is_empty());
        }
    }

    #[test]
    fn covering_breaks_one_shot_with_one_object() {
        // f = 1: the one-shot protocol over one object, 3 processes.
        let report = covering_attack(one_shots(&inputs(3)), 1);
        assert!(report.violated(), "{report:?}");
        assert_eq!(report.covered, vec![ObjectId(0)]);
        assert_eq!(report.halted, vec![ProcessId(1)]);
    }

    #[test]
    fn covering_does_not_break_within_tolerance() {
        // Sanity: with only f + 1 processes the covering argument runs
        // out of processes — the attack as stated needs f + 2 machines.
        let procs = staged_machines(&inputs(3), 2, 1);
        // f = 2 objects, but only 3 processes: constructing the attack is
        // rejected up front.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| covering_attack(procs, 2)));
        assert!(result.is_err(), "attack must demand f + 2 processes");
    }

    #[test]
    fn covering_each_object_faults_at_most_once() {
        // The attack stays within t = 1 per object: covered objects are
        // distinct.
        let f = 3;
        let report = covering_attack(staged_machines(&inputs(f + 2), f as u64, 1), f);
        let mut seen = report.covered.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), f, "covered objects must be distinct");
    }
}
