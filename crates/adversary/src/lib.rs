//! # ff-adversary — lower-bound adversaries and model separation
//!
//! The impossibility side of the *Functional Faults* reproduction
//! (Sheffi & Petrank, SPAA 2020):
//!
//! * [`reduced`] — Theorem 18's environment (unbounded overriding faults,
//!   all objects faulty) with exhaustive and randomized violation search,
//!   plus the literal *reduced model* (one process's CASes always fault).
//! * [`covering`] — Theorem 19's covering adversary: a protocol-agnostic
//!   constructive attack that breaks **any** consensus protocol using `f`
//!   CAS objects once `f + 2` processes participate, with at most one
//!   fault per object.
//! * [`data_fault`] — the Afek-style data-fault adversary whose trivial
//!   "wipe" attack breaks what bounded overriding faults cannot: the
//!   functional-vs-data model separation of Section 4.
//! * [`search`] — `(f, t, n)` safety probing and the consensus-number
//!   scan placing bounded-fault CAS sets at level `f + 1` of Herlihy's
//!   hierarchy (Section 5.2).
//! * [`witness`] — human-readable rendering of violating executions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod covering;
pub mod data_fault;
pub mod reduced;
pub mod register_protocol;
pub mod search;
pub mod witness;

pub use covering::{covering_attack, CoveringReport};
pub use data_fault::{wipe_attack, DataFaultReport};
pub use reduced::{find_violation_randomized, find_violation_unbounded, reduced_model_run};
pub use register_protocol::AnnounceRaceMachine;
pub use search::{consensus_number_scan, probe_staged, SafetyVerdict};
pub use witness::{render_witness, summarize_violations};
