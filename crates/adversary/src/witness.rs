//! Human-readable rendering of violation witnesses.

use ff_sim::{FaultPlan, Heap, Process, Witness};
use ff_spec::ConsensusViolation;

/// Render a witness as a report: the violated properties, the outcomes,
//  and the full replayed step trace.
pub fn render_witness(
    witness: &Witness,
    processes: Vec<Box<dyn Process>>,
    heap: Heap,
    plan: &FaultPlan,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "violated properties:");
    for v in &witness.violations {
        let _ = writeln!(out, "  - {v}");
    }
    let _ = writeln!(out, "outcomes:");
    for o in &witness.outcomes {
        match o.decision {
            Some(d) => {
                let _ = writeln!(out, "  {} input {} → decided {}", o.process, o.input, d);
            }
            None => {
                let _ = writeln!(out, "  {} input {} → (undecided)", o.process, o.input);
            }
        }
    }
    let replay = witness.replay(processes, heap, plan);
    let _ = writeln!(out, "execution ({} steps):", replay.total_steps);
    out.push_str(&replay.trace.render());
    out
}

/// One-line summary of a violation list.
pub fn summarize_violations(violations: &[ConsensusViolation]) -> String {
    violations
        .iter()
        .map(|v| match v {
            ConsensusViolation::Validity { .. } => "validity",
            ConsensusViolation::Consistency { .. } => "consistency",
            ConsensusViolation::WaitFreedom { .. } => "wait-freedom",
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduced::find_violation_unbounded;
    use ff_consensus::one_shots;
    use ff_sim::ExplorerConfig;
    use ff_spec::{Bound, Input};

    #[test]
    fn witness_renders_with_trace_and_outcomes() {
        let inputs = [Input(10), Input(20), Input(30)];
        let report = find_violation_unbounded(one_shots(&inputs), 1, ExplorerConfig::default());
        let witness = report.violation.expect("violation must exist");
        let plan = FaultPlan::overriding(1, Bound::Unbounded);
        let text = render_witness(&witness, one_shots(&inputs), Heap::new(1, 0), &plan);
        assert!(text.contains("violated properties"), "{text}");
        assert!(text.contains("consistency"), "{text}");
        assert!(text.contains("CAS(O0"), "{text}");
        assert!(text.contains("DECIDES"), "{text}");
    }

    #[test]
    fn summary_lists_kinds() {
        let inputs = [Input(10), Input(20), Input(30)];
        let report = find_violation_unbounded(one_shots(&inputs), 1, ExplorerConfig::default());
        let witness = report.violation.unwrap();
        let s = summarize_violations(&witness.violations);
        assert!(s.contains("consistency"), "{s}");
    }
}
