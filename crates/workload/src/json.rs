//! Machine-readable export of experiment results, and the generic JSON
//! tree behind it.
//!
//! Hand-rolled JSON (the build environment has no crates.io access, so
//! serde is unavailable): a [`JsonValue`] tree with a pretty renderer
//! and a small recursive-descent parser. [`to_json`] / [`from_json`]
//! cover the [`ExperimentResult`] shape on top of it; other crates
//! (e.g. the store's metrics export) build [`JsonValue`] trees
//! directly. Field names and nesting match what the previous
//! serde-based export produced, so downstream CI artifact consumers are
//! unaffected.

use crate::experiment::ExperimentResult;
use crate::table::Table;
use std::fmt::Write as _;

/// A JSON parse error with a byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serialize results to pretty JSON (for CI artifacts and downstream
/// analysis).
pub fn to_json(results: &[ExperimentResult]) -> String {
    JsonValue::Array(results.iter().map(result_to_value).collect()).render()
}

/// Parse results back (round-trip utility).
pub fn from_json(s: &str) -> Result<Vec<ExperimentResult>, JsonError> {
    let value = JsonValue::parse(s)?;
    results_from_value(&value).map_err(|message| JsonError { offset: 0, message })
}

// ---------------------------------------------------------------------
// The generic JSON tree.
// ---------------------------------------------------------------------

/// A JSON document: build one to render structured output, or get one
/// back from [`JsonValue::parse`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered without a fraction when integral; non-finite
    /// values render as `null` since JSON has no representation for
    /// them).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs (insertion order is
    /// preserved when rendering).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a JSON document (must consume the whole input).
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            src: s.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// Render as pretty JSON (two-space indent, empty containers
    /// inline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, level + 1);
                    v.render_into(out, level + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, level);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, level + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, level + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                indent(out, level);
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a [`JsonValue::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a [`JsonValue::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Largest integer range exactly representable in an f64 (±2⁵³).
const EXACT_INT: f64 = 9_007_199_254_740_992.0;

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparsable document.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < EXACT_INT {
        let _ = write!(out, "{}", x as i64);
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{x}");
    }
}

// ---------------------------------------------------------------------
// ExperimentResult -> JsonValue.
// ---------------------------------------------------------------------

fn string_array(items: &[String]) -> JsonValue {
    JsonValue::Array(items.iter().map(|s| JsonValue::String(s.clone())).collect())
}

fn table_to_value(t: &Table) -> JsonValue {
    JsonValue::Object(vec![
        ("title".into(), JsonValue::String(t.title.clone())),
        ("headers".into(), string_array(&t.headers)),
        (
            "rows".into(),
            JsonValue::Array(t.rows.iter().map(|r| string_array(r)).collect()),
        ),
    ])
}

fn result_to_value(r: &ExperimentResult) -> JsonValue {
    JsonValue::Object(vec![
        ("id".into(), JsonValue::String(r.id.clone())),
        ("title".into(), JsonValue::String(r.title.clone())),
        ("paper_ref".into(), JsonValue::String(r.paper_ref.clone())),
        (
            "tables".into(),
            JsonValue::Array(r.tables.iter().map(table_to_value).collect()),
        ),
        ("notes".into(), string_array(&r.notes)),
        ("pass".into(), JsonValue::Bool(r.pass)),
    ])
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

use JsonValue as Value;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // serializer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Value -> domain types.
// ---------------------------------------------------------------------

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn as_string(v: &Value) -> Result<String, String> {
    match v {
        Value::String(s) => Ok(s.clone()),
        other => Err(format!("expected string, got {other:?}")),
    }
}

fn as_string_vec(v: &Value) -> Result<Vec<String>, String> {
    match v {
        Value::Array(items) => items.iter().map(as_string).collect(),
        other => Err(format!("expected array of strings, got {other:?}")),
    }
}

fn table_from_value(v: &Value) -> Result<Table, String> {
    let Value::Object(obj) = v else {
        return Err(format!("expected table object, got {v:?}"));
    };
    let mut table = Table::new(as_string(get(obj, "title")?)?, &[]);
    table.headers = as_string_vec(get(obj, "headers")?)?;
    match get(obj, "rows")? {
        Value::Array(rows) => {
            for row in rows {
                table.rows.push(as_string_vec(row)?);
            }
        }
        other => return Err(format!("expected rows array, got {other:?}")),
    }
    Ok(table)
}

fn results_from_value(v: &Value) -> Result<Vec<ExperimentResult>, String> {
    let Value::Array(items) = v else {
        return Err(format!("expected top-level array, got {v:?}"));
    };
    items
        .iter()
        .map(|item| {
            let Value::Object(obj) = item else {
                return Err(format!("expected result object, got {item:?}"));
            };
            Ok(ExperimentResult {
                id: as_string(get(obj, "id")?)?,
                title: as_string(get(obj, "title")?)?,
                paper_ref: as_string(get(obj, "paper_ref")?)?,
                tables: match get(obj, "tables")? {
                    Value::Array(ts) => ts
                        .iter()
                        .map(table_from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    other => return Err(format!("expected tables array, got {other:?}")),
                },
                notes: as_string_vec(get(obj, "notes")?)?,
                pass: match get(obj, "pass")? {
                    Value::Bool(b) => *b,
                    other => return Err(format!("expected bool pass, got {other:?}")),
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn sample() -> Vec<ExperimentResult> {
        let mut t = Table::new("t \"quoted\"", &["a", "b"]);
        t.push_row(&["1", "⊥ unicode"]);
        t.push_row(&["line\nbreak", "tab\there"]);
        vec![
            ExperimentResult {
                id: "e0".into(),
                title: "demo".into(),
                paper_ref: "none".into(),
                tables: vec![t],
                notes: vec!["n".into()],
                pass: true,
            },
            ExperimentResult {
                id: "e1".into(),
                title: "empty".into(),
                paper_ref: "none".into(),
                tables: vec![],
                notes: vec![],
                pass: false,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let results = sample();
        let json = to_json(&results);
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id, "e0");
        assert!(back[0].pass);
        assert!(!back[1].pass);
        assert_eq!(back[0].tables[0].rows[0][0], "1");
        assert_eq!(back[0].tables[0].rows[0][1], "⊥ unicode");
        assert_eq!(back[0].tables[0].rows[1][0], "line\nbreak");
        assert_eq!(back[0].tables[0].title, "t \"quoted\"");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_json("[{").is_err());
        assert!(from_json("[]extra").is_err());
        assert!(from_json("{\"id\": 3}").is_err());
        assert!(from_json("[{\"id\": \"x\"}]").is_err()); // missing fields
    }

    #[test]
    fn empty_set_round_trips() {
        assert_eq!(from_json(&to_json(&[])).unwrap().len(), 0);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(JsonValue::Number(x).render(), "null");
        }
        // And the document stays parseable.
        let doc = JsonValue::Array(vec![JsonValue::Number(f64::NAN)]).render();
        assert_eq!(
            JsonValue::parse(&doc).unwrap(),
            JsonValue::Array(vec![JsonValue::Null])
        );
    }

    #[test]
    fn deep_nesting_round_trips() {
        let mut v = JsonValue::String("core".into());
        for i in 0..200u32 {
            v = if i % 2 == 0 {
                JsonValue::Array(vec![v])
            } else {
                JsonValue::Object(vec![("k".into(), v)])
            };
        }
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }
}

#[cfg(test)]
mod proptests {
    use super::JsonValue;
    use proptest::prelude::*;

    /// SplitMix64 step for the deterministic tree builder below.
    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A string biased towards everything that needs escaping: quotes,
    /// backslashes, control characters, multi-byte unicode.
    fn nasty_string(seed: &mut u64, len: usize) -> String {
        const POOL: &[char] = &[
            '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', '/', 'a',
            'Z', '0', ' ', '⊥', 'é', '中', '🦀', '\u{7f}', '\u{80}', '\u{fffd}',
        ];
        (0..len)
            .map(|_| POOL[(mix(seed) % POOL.len() as u64) as usize])
            .collect()
    }

    /// A finite f64 spanning integers, fractions and extreme exponents
    /// (all of which must render/parse losslessly).
    fn finite_number(seed: &mut u64) -> f64 {
        loop {
            let x = match mix(seed) % 4 {
                0 => (mix(seed) as i64 as f64) / 1e3,
                1 => mix(seed) as i32 as f64,
                2 => f64::from_bits(mix(seed)),
                _ => (mix(seed) % 1_000_000) as f64 * 10f64.powi((mix(seed) % 600) as i32 - 300),
            };
            if x.is_finite() {
                return x;
            }
        }
    }

    /// Deterministically grow an arbitrary JSON tree from a seed.
    fn tree(seed: &mut u64, depth: usize) -> JsonValue {
        let pick = if depth == 0 {
            mix(seed) % 4
        } else {
            mix(seed) % 6
        };
        match pick {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(mix(seed) & 1 == 1),
            2 => JsonValue::Number(finite_number(seed)),
            3 => {
                let len = (mix(seed) % 12) as usize;
                JsonValue::String(nasty_string(seed, len))
            }
            4 => {
                let n = (mix(seed) % 4) as usize;
                JsonValue::Array((0..n).map(|_| tree(seed, depth - 1)).collect())
            }
            _ => {
                let n = (mix(seed) % 4) as usize;
                JsonValue::Object(
                    (0..n)
                        .map(|_| {
                            let len = (mix(seed) % 8) as usize;
                            (nasty_string(seed, len), tree(seed, depth - 1))
                        })
                        .collect(),
                )
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn arbitrary_trees_round_trip(seed in any::<u64>(), depth in 0usize..5) {
            let mut s = seed;
            let v = tree(&mut s, depth);
            let rendered = v.render();
            let back = JsonValue::parse(&rendered)
                .unwrap_or_else(|e| panic!("{e} in:\n{rendered}"));
            prop_assert_eq!(back, v);
        }

        #[test]
        fn nasty_strings_round_trip(seed in any::<u64>(), len in 0usize..64) {
            let mut s = seed;
            let v = JsonValue::String(nasty_string(&mut s, len));
            prop_assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        }

        #[test]
        fn numbers_round_trip_exactly(seed in any::<u64>()) {
            let mut s = seed;
            let x = finite_number(&mut s);
            let v = JsonValue::Number(x);
            let back = JsonValue::parse(&v.render()).unwrap();
            // == (not bit-equality): -0.0 may legitimately come back as 0.
            prop_assert_eq!(back.as_f64().unwrap(), x);
        }
    }
}
