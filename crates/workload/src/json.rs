//! Machine-readable export of experiment results.

use crate::experiment::ExperimentResult;

/// Serialize results to pretty JSON (for CI artifacts and downstream
/// analysis).
pub fn to_json(results: &[ExperimentResult]) -> String {
    serde_json::to_string_pretty(results).expect("experiment results are serializable")
}

/// Parse results back (round-trip utility).
pub fn from_json(s: &str) -> Result<Vec<ExperimentResult>, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    #[test]
    fn round_trip() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(&["1"]);
        let results = vec![ExperimentResult {
            id: "e0".into(),
            title: "demo".into(),
            paper_ref: "none".into(),
            tables: vec![t],
            notes: vec!["n".into()],
            pass: true,
        }];
        let json = to_json(&results);
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "e0");
        assert!(back[0].pass);
        assert_eq!(back[0].tables[0].rows[0][0], "1");
    }
}
