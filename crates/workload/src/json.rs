//! Machine-readable export of experiment results.
//!
//! Hand-rolled JSON (the build environment has no crates.io access, so
//! serde is unavailable): a serializer and a small recursive-descent
//! parser covering exactly the shape of [`ExperimentResult`]. The
//! output is interchangeable with what the previous serde-based export
//! produced — field names and nesting are unchanged — so downstream CI
//! artifact consumers are unaffected.

use crate::experiment::ExperimentResult;
use crate::table::Table;
use std::fmt::Write as _;

/// A JSON parse error with a byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serialize results to pretty JSON (for CI artifacts and downstream
/// analysis).
pub fn to_json(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    for (i, r) in results.iter().enumerate() {
        write_result(&mut out, r, 1);
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Parse results back (round-trip utility).
pub fn from_json(s: &str) -> Result<Vec<ExperimentResult>, JsonError> {
    let mut p = Parser {
        src: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    results_from_value(&value).map_err(|message| JsonError { offset: 0, message })
}

// ---------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_string_array(out: &mut String, items: &[String], level: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, s) in items.iter().enumerate() {
        indent(out, level + 1);
        write_string(out, s);
        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
    }
    indent(out, level);
    out.push(']');
}

fn write_table(out: &mut String, t: &Table, level: usize) {
    indent(out, level);
    out.push_str("{\n");
    indent(out, level + 1);
    out.push_str("\"title\": ");
    write_string(out, &t.title);
    out.push_str(",\n");
    indent(out, level + 1);
    out.push_str("\"headers\": ");
    write_string_array(out, &t.headers, level + 1);
    out.push_str(",\n");
    indent(out, level + 1);
    out.push_str("\"rows\": ");
    if t.rows.is_empty() {
        out.push_str("[]");
    } else {
        out.push_str("[\n");
        for (i, row) in t.rows.iter().enumerate() {
            indent(out, level + 2);
            write_string_array(out, row, level + 2);
            out.push_str(if i + 1 < t.rows.len() { ",\n" } else { "\n" });
        }
        indent(out, level + 1);
        out.push(']');
    }
    out.push('\n');
    indent(out, level);
    out.push('}');
}

fn write_result(out: &mut String, r: &ExperimentResult, level: usize) {
    indent(out, level);
    out.push_str("{\n");
    let field = |out: &mut String, name: &str| {
        indent(out, level + 1);
        out.push('"');
        out.push_str(name);
        out.push_str("\": ");
    };
    field(out, "id");
    write_string(out, &r.id);
    out.push_str(",\n");
    field(out, "title");
    write_string(out, &r.title);
    out.push_str(",\n");
    field(out, "paper_ref");
    write_string(out, &r.paper_ref);
    out.push_str(",\n");
    field(out, "tables");
    if r.tables.is_empty() {
        out.push_str("[]");
    } else {
        out.push_str("[\n");
        for (i, t) in r.tables.iter().enumerate() {
            write_table(out, t, level + 2);
            out.push_str(if i + 1 < r.tables.len() { ",\n" } else { "\n" });
        }
        indent(out, level + 1);
        out.push(']');
    }
    out.push_str(",\n");
    field(out, "notes");
    write_string_array(out, &r.notes, level + 1);
    out.push_str(",\n");
    field(out, "pass");
    out.push_str(if r.pass { "true" } else { "false" });
    out.push('\n');
    indent(out, level);
    out.push('}');
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// A parsed JSON value (only the forms the export uses).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    String(String),
    Bool(bool),
    Number(f64),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
    Null,
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // serializer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Value -> domain types.
// ---------------------------------------------------------------------

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn as_string(v: &Value) -> Result<String, String> {
    match v {
        Value::String(s) => Ok(s.clone()),
        other => Err(format!("expected string, got {other:?}")),
    }
}

fn as_string_vec(v: &Value) -> Result<Vec<String>, String> {
    match v {
        Value::Array(items) => items.iter().map(as_string).collect(),
        other => Err(format!("expected array of strings, got {other:?}")),
    }
}

fn table_from_value(v: &Value) -> Result<Table, String> {
    let Value::Object(obj) = v else {
        return Err(format!("expected table object, got {v:?}"));
    };
    let mut table = Table::new(as_string(get(obj, "title")?)?, &[]);
    table.headers = as_string_vec(get(obj, "headers")?)?;
    match get(obj, "rows")? {
        Value::Array(rows) => {
            for row in rows {
                table.rows.push(as_string_vec(row)?);
            }
        }
        other => return Err(format!("expected rows array, got {other:?}")),
    }
    Ok(table)
}

fn results_from_value(v: &Value) -> Result<Vec<ExperimentResult>, String> {
    let Value::Array(items) = v else {
        return Err(format!("expected top-level array, got {v:?}"));
    };
    items
        .iter()
        .map(|item| {
            let Value::Object(obj) = item else {
                return Err(format!("expected result object, got {item:?}"));
            };
            Ok(ExperimentResult {
                id: as_string(get(obj, "id")?)?,
                title: as_string(get(obj, "title")?)?,
                paper_ref: as_string(get(obj, "paper_ref")?)?,
                tables: match get(obj, "tables")? {
                    Value::Array(ts) => ts
                        .iter()
                        .map(table_from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    other => return Err(format!("expected tables array, got {other:?}")),
                },
                notes: as_string_vec(get(obj, "notes")?)?,
                pass: match get(obj, "pass")? {
                    Value::Bool(b) => *b,
                    other => return Err(format!("expected bool pass, got {other:?}")),
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn sample() -> Vec<ExperimentResult> {
        let mut t = Table::new("t \"quoted\"", &["a", "b"]);
        t.push_row(&["1", "⊥ unicode"]);
        t.push_row(&["line\nbreak", "tab\there"]);
        vec![
            ExperimentResult {
                id: "e0".into(),
                title: "demo".into(),
                paper_ref: "none".into(),
                tables: vec![t],
                notes: vec!["n".into()],
                pass: true,
            },
            ExperimentResult {
                id: "e1".into(),
                title: "empty".into(),
                paper_ref: "none".into(),
                tables: vec![],
                notes: vec![],
                pass: false,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let results = sample();
        let json = to_json(&results);
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id, "e0");
        assert!(back[0].pass);
        assert!(!back[1].pass);
        assert_eq!(back[0].tables[0].rows[0][0], "1");
        assert_eq!(back[0].tables[0].rows[0][1], "⊥ unicode");
        assert_eq!(back[0].tables[0].rows[1][0], "line\nbreak");
        assert_eq!(back[0].tables[0].title, "t \"quoted\"");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_json("[{").is_err());
        assert!(from_json("[]extra").is_err());
        assert!(from_json("{\"id\": 3}").is_err());
        assert!(from_json("[{\"id\": \"x\"}]").is_err()); // missing fields
    }

    #[test]
    fn empty_set_round_trips() {
        assert_eq!(from_json(&to_json(&[])).unwrap().len(), 0);
    }
}
