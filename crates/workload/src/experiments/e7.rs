//! E7 — the model separation (Section 4's headline): bounded functional
//! faults are survivable where the *same budget* of data faults is fatal.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_adversary::wipe_attack;
use ff_consensus::staged_machines;
use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
use ff_spec::Bound;

/// E7: functional vs data faults.
pub struct E7ModelSeparation;

impl Experiment for E7ModelSeparation {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn title(&self) -> &'static str {
        "Functional faults beat the data-fault lower bound"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Same protocol (Figure 3), same budget (1 fault/object, all objects faulty)",
            &[
                "f",
                "fault model",
                "attack / check",
                "outcome",
                "as predicted",
            ],
        );

        for f in 1..=3u64 {
            // Functional model: exhaustive for f = 1, stress via the
            // probe for larger f (reported in E6); here exhaustive where
            // feasible.
            if f == 1 {
                let plan = FaultPlan::overriding(1, Bound::Finite(1));
                let state = SimState::new(staged_machines(&inputs(2), 1, 1), Heap::new(1, 0), plan);
                let report = explore_parallel(state, explorer_config());
                let ok = report.verified();
                pass &= ok;
                table.push_row(&[
                    f.to_string(),
                    "functional (overriding)".to_string(),
                    "exhaustive model check".to_string(),
                    if ok { "consensus holds" } else { "VIOLATED" }.to_string(),
                    mark(ok).to_string(),
                ]);
            } else {
                let verdict = ff_adversary::probe_staged(
                    f,
                    1,
                    f as usize + 1,
                    ff_sim::ExplorerConfig {
                        max_states: 300_000,
                        max_depth: 50_000,
                        stop_at_first_violation: true,
                        threads: ff_sim::default_threads(),
                    },
                );
                let ok = verdict.safe();
                pass &= ok;
                table.push_row(&[
                    f.to_string(),
                    "functional (overriding)".to_string(),
                    "exhaustive / randomized probe".to_string(),
                    if ok { "consensus holds" } else { "VIOLATED" }.to_string(),
                    mark(ok).to_string(),
                ]);
            }

            // Data model: the wipe attack with the identical budget.
            let report = wipe_attack(staged_machines(&inputs(2), f, 1), f as usize);
            let violated = report.violated();
            pass &= violated;
            table.push_row(&[
                f.to_string(),
                "data (Afek et al.)".to_string(),
                format!("wipe attack ({} corruptions, 1/object)", report.corruptions),
                if violated {
                    "consensus VIOLATED"
                } else {
                    "held (unexpected)"
                }
                .to_string(),
                mark(violated).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e7".into(),
            title: self.title().into(),
            paper_ref: "Section 4 (vs Afek et al. [2]) ".trim().into(),
            tables: vec![table],
            notes: vec![
                "Paper: consensus from faulty-ONLY objects is impossible under data faults \
                 but possible under bounded overriding (functional) faults — functional \
                 faults are structured (they can only write values some process supplied), \
                 data faults can resurrect ⊥. Expected: the functional rows verify, the \
                 data rows violate, at identical budgets."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_passes() {
        let r = E7ModelSeparation.run();
        assert!(r.pass, "{}", r.render());
    }
}
