//! E2 — Figure 2 / Theorem 5: `f`-tolerant consensus from `f + 1` CAS
//! objects, unbounded faults per faulty object.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::runner::run_trials;
use crate::table::Table;
use ff_cas::{AlwaysPolicy, FaultyCasArray};
use ff_consensus::{cascades, run_native, CascadeConsensus, Consensus};
use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
use ff_spec::Bound;
use std::sync::Arc;
use std::time::Duration;

/// E2: the cascade construction.
pub struct E2Cascade;

impl Experiment for E2Cascade {
    fn id(&self) -> &'static str {
        "e2"
    }

    fn title(&self) -> &'static str {
        "f-tolerant consensus from f + 1 objects (unbounded faults)"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;

        let mut exhaustive = Table::new(
            "Exhaustive model check (f faulty of f + 1 objects, unbounded t)",
            &["f", "n", "states", "verified"],
        );
        for (f, n) in [(1usize, 2usize), (1, 3), (2, 3)] {
            let plan = FaultPlan::overriding(f, Bound::Unbounded);
            let state = SimState::new(cascades(&inputs(n), f), Heap::new(f + 1, 0), plan);
            let report = explore_parallel(state, explorer_config());
            let ok = report.verified();
            pass &= ok;
            exhaustive.push_row(&[
                f.to_string(),
                n.to_string(),
                report.states_expanded.to_string(),
                mark(ok).to_string(),
            ]);
        }

        let mut native = Table::new(
            "Native threads (greedy unbounded overriding, 30 trials each)",
            &["f", "objects", "n", "violations", "clean"],
        );
        for f in 1..=5usize {
            for n in [2usize, 4, 8] {
                let batch = run_trials(0..30, |_seed| {
                    let ensemble = Arc::new(
                        FaultyCasArray::builder(f + 1)
                            .faulty_first(f)
                            .per_object(Bound::Unbounded)
                            .policy(AlwaysPolicy)
                            .record_history(false)
                            .build(),
                    );
                    let protocol: Arc<dyn Consensus> = Arc::new(CascadeConsensus::new(ensemble, f));
                    run_native(protocol, &inputs(n), Duration::from_secs(10)).ok()
                });
                pass &= batch.clean();
                native.push_row(&[
                    f.to_string(),
                    (f + 1).to_string(),
                    n.to_string(),
                    batch.violations.to_string(),
                    mark(batch.clean()).to_string(),
                ]);
            }
        }

        ExperimentResult {
            id: "e2".into(),
            title: self.title().into(),
            paper_ref: "Figure 2 / Theorem 5".into(),
            tables: vec![exhaustive, native],
            notes: vec![
                "Paper: with at most f faulty objects (each unboundedly faulty) out of f + 1, \
                 the cascade decides consistently for any n. Expected: zero violations."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_passes() {
        let r = E2Cascade.run();
        assert!(r.pass, "{}", r.render());
    }
}
