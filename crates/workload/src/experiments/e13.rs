//! E13 — other primitives under functional faults (the conclusion's
//! future-work question): test-and-set + announce registers for two
//! processes, probed against every fault kind of the taxonomy.
//!
//! Measured answer: whether a structured fault matters depends on how
//! the usage pattern exercises the postconditions. TAS writes only one
//! value, so the *overriding* fault is never observable on it — the
//! construction is structurally immune — while the *silent* fault (drop
//! the winning set) breaks it with a single occurrence.

use super::{explorer_config, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_consensus::TasConsensusMachine;
use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
use ff_spec::{Bound, FaultKind, Input, ObjectId};

/// E13: the TAS probe.
pub struct E13OtherPrimitives;

impl E13OtherPrimitives {
    fn probe(plan: FaultPlan) -> (bool, u64) {
        let state = SimState::new(
            TasConsensusMachine::pair(Input(10), Input(20)),
            Heap::new(1, 2),
            plan,
        );
        let report = explore_parallel(state, explorer_config());
        (report.verified(), report.states_expanded)
    }
}

impl Experiment for E13OtherPrimitives {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn title(&self) -> &'static str {
        "Other primitives: test-and-set under the fault taxonomy (n = 2)"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "TAS + announce registers, one TAS cell, exhaustive exploration",
            &["fault kind", "budget", "expected", "observed", "match"],
        );

        let cases: Vec<(&str, FaultPlan, bool, &str)> = vec![
            ("none", FaultPlan::none(), true, "baseline correctness"),
            (
                "overriding",
                FaultPlan::overriding(1, Bound::Unbounded),
                true,
                "structurally immune: only the value 1 is ever written",
            ),
            (
                "silent",
                FaultPlan::silent(1, Bound::Finite(1)),
                false,
                "one dropped set ⇒ two winners",
            ),
            (
                "arbitrary",
                FaultPlan {
                    kind: FaultKind::Arbitrary,
                    faulty: vec![ObjectId(0)],
                    per_object: Bound::Finite(1),
                    kind_overrides: Default::default(),
                },
                false,
                "the cell can be reset to ⊥",
            ),
        ];

        let mut notes = vec![
            "The conclusion asks which other functions' natural faults can be overcome. \
             Measured: the overriding fault — the paper's case study — cannot touch a \
             test-and-set usage pattern at all (zero observable opportunities), while \
             silent/arbitrary faults break it. Fault tolerance is a property of the \
             (operation, usage) pair, exactly as the Ψ{O}Φ framing predicts."
                .into(),
        ];

        for (kind, plan, expect_safe, why) in cases {
            let (safe, states) = Self::probe(plan);
            let ok = safe == expect_safe;
            pass &= ok;
            table.push_row(&[
                kind.to_string(),
                match kind {
                    "none" => "-".to_string(),
                    "overriding" => "t = ∞".to_string(),
                    _ => "t = 1".to_string(),
                },
                if expect_safe {
                    "consensus holds"
                } else {
                    "violated"
                }
                .to_string(),
                format!(
                    "{} ({states} states)",
                    if safe { "holds" } else { "violated" }
                ),
                mark(ok).to_string(),
            ]);
            if kind == "overriding" {
                notes.push(format!("immunity detail: {why}"));
            }
        }

        ExperimentResult {
            id: "e13".into(),
            title: self.title().into(),
            paper_ref: "Section 7 (future work: other functions with natural faults)".into(),
            tables: vec![table],
            notes,
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_passes() {
        let r = E13OtherPrimitives.run();
        assert!(r.pass, "{}", r.render());
    }
}
