//! E10 — universality end-to-end: replicated objects over robust
//! consensus cells survive fault injection; over naive cells they
//! diverge.

use super::mark;
use crate::experiment::{Experiment, ExperimentResult};
use crate::runner::run_trials;
use crate::table::Table;
use ff_universal::{
    logs_consistent, CellFactory, Counter, Handle, NaiveFaultyCells, ReliableCells, RobustCells,
    UniversalLog,
};
use std::sync::Arc;

/// One concurrent-counter trial: `threads` threads add 1 `adds` times
/// each. Returns (logs consistent, observer saw exact total).
fn counter_trial(factory: Arc<dyn CellFactory>, threads: u16, adds: u64) -> (bool, bool) {
    let core = Arc::new(UniversalLog::new(factory));
    let logs: Vec<Vec<u32>> = std::thread::scope(|s| {
        (0..threads)
            .map(|i| {
                let core = Arc::clone(&core);
                s.spawn(move || {
                    let mut h = Handle::new(core, i, Counter::default());
                    for _ in 0..adds {
                        h.invoke(Counter::add_op(1));
                    }
                    h.applied_log().to_vec()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let views: Vec<&[u32]> = logs.iter().map(|l| l.as_slice()).collect();
    let consistent = logs_consistent(&views);
    let mut observer = Handle::new(core, 1000, Counter::default());
    let total = observer.invoke(Counter::get_op());
    (consistent, total == threads as u64 * adds)
}

/// E10: robust replication on faulty hardware.
pub struct E10Universal;

impl Experiment for E10Universal {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn title(&self) -> &'static str {
        "Universal construction: robust cells replicate, naive cells diverge"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Replicated counter, 3 threads × 10 increments, 15 trials per cell type",
            &[
                "cells",
                "fault rate",
                "divergent trials",
                "exact-total trials",
                "as predicted",
            ],
        );

        type FactoryMaker = Box<dyn Fn(u64) -> Arc<dyn CellFactory>>;
        let cases: Vec<(FactoryMaker, &str, &str, bool)> = vec![
            (
                Box::new(|_seed| Arc::new(ReliableCells) as Arc<dyn CellFactory>),
                "reliable",
                "0.0",
                true,
            ),
            (
                Box::new(|seed| Arc::new(RobustCells::new(1, 0.5, seed)) as Arc<dyn CellFactory>),
                "robust (Fig. 2, f = 1)",
                "0.5",
                true,
            ),
            (
                Box::new(|seed| Arc::new(NaiveFaultyCells::new(0.8, seed)) as Arc<dyn CellFactory>),
                "naive faulty",
                "0.8",
                false,
            ),
        ];

        for (make, label, rate, expect_clean) in cases {
            let trials = 15u64;
            let mut divergent = 0u64;
            let mut exact = 0u64;
            let batch = run_trials(0..trials, |seed| {
                let (consistent, exact_total) = counter_trial(make(seed * 1000), 3, 10);
                if !consistent {
                    divergent += 1;
                }
                if exact_total {
                    exact += 1;
                }
                consistent && exact_total
            });
            let as_predicted = if expect_clean {
                batch.clean()
            } else {
                // Naive cells must corrupt at least one trial.
                divergent > 0 || exact < trials
            };
            pass &= as_predicted;
            table.push_row(&[
                label.to_string(),
                rate.to_string(),
                format!("{divergent}/{trials}"),
                format!("{exact}/{trials}"),
                mark(as_predicted).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e10".into(),
            title: self.title().into(),
            paper_ref: "Section 1 (universality of consensus)".into(),
            tables: vec![table],
            notes: vec![
                "Consensus is universal (Herlihy): fault-tolerant consensus cells make every \
                 replicated object fault-tolerant. Expected: reliable and robust cells give \
                 0 divergent trials and exact totals; naive cells corrupt some trials."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_passes() {
        let r = E10Universal.run();
        assert!(r.pass, "{}", r.render());
    }
}
