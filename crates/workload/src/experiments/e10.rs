//! E10 — universality end-to-end: replicated objects over robust
//! consensus cells survive fault injection; over naive cells they
//! diverge.

use super::mark;
use crate::experiment::{Experiment, ExperimentResult};
use crate::runner::run_trials;
use crate::table::Table;
use ff_universal::{
    digests_consistent, log_windows_consistent, CellFactory, Counter, Handle, NaiveFaultyCells,
    ReliableCells, RobustCells, UniversalLog,
};
use std::sync::Arc;

/// Checkpoint interval (slots) for every counter log in this trial.
const INTERVAL: usize = 8;

/// One concurrent-counter trial: `threads` threads add 1 `adds` times
/// each, over a log checkpointed every [`INTERVAL`] slots. Returns
/// (logs consistent, observer saw exact total, retained log bounded).
fn counter_trial(factory: Arc<dyn CellFactory>, threads: u16, adds: u64) -> (bool, bool, bool) {
    let core = Arc::new(UniversalLog::new(factory).checkpoint_every(INTERVAL));
    // Under truncation, raw applied logs are not comparable by index (a
    // replica joining after a checkpoint starts at the snapshot, not
    // slot 0): replicas are compared slot-by-slot over overlapping
    // windows plus through the rolling digests they carry across each
    // agreed checkpoint boundary.
    type View = (usize, Vec<u32>, Vec<(usize, u64)>);
    // All replicas register before any operation: otherwise (on few
    // cores) threads serialize, a late joiner bootstraps from a
    // snapshot past the history a naive cell corrupted, and the
    // negative arm's divergence goes unobserved.
    let barrier = Arc::new(std::sync::Barrier::new(threads as usize));
    let views: Vec<View> = std::thread::scope(|s| {
        (0..threads)
            .map(|i| {
                let core = Arc::clone(&core);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut h = Handle::new(core, i, Counter::default());
                    barrier.wait();
                    for _ in 0..adds {
                        h.invoke(Counter::add_op(1));
                    }
                    (
                        h.start_slot(),
                        h.applied_log().to_vec(),
                        h.boundary_digests().to_vec(),
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let windows: Vec<(usize, &[u32])> = views.iter().map(|(s, l, _)| (*s, l.as_slice())).collect();
    let digests: Vec<&[(usize, u64)]> = views.iter().map(|(_, _, d)| d.as_slice()).collect();
    let consistent = log_windows_consistent(&windows)
        && digests_consistent(&digests)
        && !core.divergence_detected();
    // The observer bootstraps from the latest agreed snapshot and
    // replays only the retained tail.
    let mut observer = Handle::new(Arc::clone(&core), 1000, Counter::default());
    let total = observer.invoke(Counter::get_op());
    // After the observer (the only live replica) has applied every
    // decided slot, truncation must have freed all but a sub-interval
    // tail: the checkpoint guarantee that log memory stays bounded.
    let bounded = core.retained_len() < INTERVAL && core.truncated_prefix() > 0;
    (consistent, total == threads as u64 * adds, bounded)
}

/// E10: robust replication on faulty hardware.
pub struct E10Universal;

impl Experiment for E10Universal {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn title(&self) -> &'static str {
        "Universal construction: robust cells replicate, naive cells diverge"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Replicated counter, 3 threads × 10 increments, checkpoint every 8 slots, \
             15 trials per cell type",
            &[
                "cells",
                "fault rate",
                "divergent trials",
                "exact-total trials",
                "log-bounded trials",
                "as predicted",
            ],
        );

        type FactoryMaker = Box<dyn Fn(u64) -> Arc<dyn CellFactory>>;
        let cases: Vec<(FactoryMaker, &str, &str, bool)> = vec![
            (
                Box::new(|_seed| Arc::new(ReliableCells) as Arc<dyn CellFactory>),
                "reliable",
                "0.0",
                true,
            ),
            (
                Box::new(|seed| Arc::new(RobustCells::new(1, 0.5, seed)) as Arc<dyn CellFactory>),
                "robust (Fig. 2, f = 1)",
                "0.5",
                true,
            ),
            (
                Box::new(|seed| Arc::new(NaiveFaultyCells::new(0.8, seed)) as Arc<dyn CellFactory>),
                "naive faulty",
                "0.8",
                false,
            ),
        ];

        for (make, label, rate, expect_clean) in cases {
            let trials = 15u64;
            let mut divergent = 0u64;
            let mut exact = 0u64;
            let mut bounded_trials = 0u64;
            let batch = run_trials(0..trials, |seed| {
                let (consistent, exact_total, bounded) = counter_trial(make(seed * 1000), 3, 10);
                if !consistent {
                    divergent += 1;
                }
                if exact_total {
                    exact += 1;
                }
                if bounded {
                    bounded_trials += 1;
                }
                // Divergence evidence disables truncation by design, so
                // the bounded-log guarantee only binds clean trials.
                consistent && exact_total && bounded
            });
            let as_predicted = if expect_clean {
                batch.clean()
            } else {
                // Naive cells must corrupt at least one trial.
                divergent > 0 || exact < trials
            };
            pass &= as_predicted;
            table.push_row(&[
                label.to_string(),
                rate.to_string(),
                format!("{divergent}/{trials}"),
                format!("{exact}/{trials}"),
                format!("{bounded_trials}/{trials}"),
                mark(as_predicted).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e10".into(),
            title: self.title().into(),
            paper_ref: "Section 1 (universality of consensus)".into(),
            tables: vec![table],
            notes: vec![
                "Consensus is universal (Herlihy): fault-tolerant consensus cells make every \
                 replicated object fault-tolerant. Expected: reliable and robust cells give \
                 0 divergent trials and exact totals; naive cells corrupt some trials."
                    .into(),
                "Logs are checkpointed every 8 slots: on clean trials the retained log stays \
                 below one interval after the observer catches up (log-bounded column)."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_passes() {
        let r = E10Universal.run();
        assert!(r.pass, "{}", r.render());
    }
}
