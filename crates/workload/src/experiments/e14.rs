//! E14 — graceful degradation beyond the tolerance envelope (the
//! Jayanti-et-al. concept the paper reviews in Section 6), plus
//! Definition 3's mixed-fault remark.
//!
//! When the constructions are pushed *past* their proven tolerance —
//! more faulty objects or more processes than Theorems 5/6 allow — they
//! fail. But **how** they fail is measurable: across every violating
//! terminal the exhaustive explorer reaches, only *consistency* breaks;
//! validity and (operational) wait-freedom survive. In the severity
//! vocabulary, the compound object degrades to a responsive fault that
//! still returns announced inputs — it does not degrade to arbitrary
//! garbage, because overriding faults can only ever write values some
//! process supplied.
//!
//! The second table exercises Definition 3's "mix of functional faults":
//! a cascade whose faulty objects exhibit *different* kinds (one
//! overriding, one silent) still verifies with a reliable object spare.

use super::{inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_consensus::{cascades, one_shots, staged_machines};
use ff_sim::{explore_parallel, ExplorerConfig, FaultPlan, Heap, Process, SimState};
use ff_spec::{Bound, FaultKind, ObjectId};

/// E14: how the constructions fail, and mixed-fault environments.
pub struct E14GracefulDegradation;

impl E14GracefulDegradation {
    fn full_scan(
        processes: Vec<Box<dyn Process>>,
        objects: usize,
        registers: usize,
        plan: FaultPlan,
    ) -> ff_sim::ExploreReport {
        let state = SimState::new(processes, Heap::new(objects, registers), plan);
        explore_parallel(
            state,
            ExplorerConfig {
                max_states: 2_000_000,
                max_depth: 100_000,
                stop_at_first_violation: false, // count ALL violating terminals
                threads: ff_sim::default_threads(),
            },
        )
    }
}

impl Experiment for E14GracefulDegradation {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn title(&self) -> &'static str {
        "Graceful degradation beyond tolerance + mixed-fault environments"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut degradation = Table::new(
            "How violations manifest past the envelope (ALL violating terminals counted)",
            &[
                "overloaded configuration",
                "violating terminals",
                "consistency",
                "validity",
                "wait-freedom",
                "only consistency breaks",
            ],
        );

        let cases: Vec<(&str, ff_sim::ExploreReport)> = vec![
            (
                "one-shot, 1 faulty obj (∞), n = 3",
                Self::full_scan(
                    one_shots(&inputs(3)),
                    1,
                    0,
                    FaultPlan::overriding(1, Bound::Unbounded),
                ),
            ),
            (
                "cascade sweep of 2, both faulty (∞), n = 3",
                Self::full_scan(
                    cascades(&inputs(3), 1),
                    2,
                    0,
                    FaultPlan::overriding(2, Bound::Unbounded),
                ),
            ),
            (
                "staged f = 1, t = 1, n = 3 (> f + 1)",
                Self::full_scan(
                    staged_machines(&inputs(3), 1, 1),
                    1,
                    0,
                    FaultPlan::overriding(1, Bound::Finite(1)),
                ),
            ),
        ];

        for (label, report) in cases {
            let c = report.violation_counts;
            let only_consistency = c.consistency > 0 && c.validity == 0 && c.wait_freedom == 0;
            pass &= only_consistency;
            degradation.push_row(&[
                label.to_string(),
                c.any().to_string(),
                c.consistency.to_string(),
                c.validity.to_string(),
                c.wait_freedom.to_string(),
                mark(only_consistency).to_string(),
            ]);
        }

        // Mixed-fault environments (Definition 3's remark).
        let mut mixed = Table::new(
            "Mixed fault kinds in one execution (Definition 3's 'mix of functional faults')",
            &[
                "configuration",
                "faulty objects",
                "expected",
                "observed",
                "match",
            ],
        );
        {
            // Cascade f = 2 (3 objects): O0 overrides, O1 is silent, O2
            // reliable — still within Theorem 5's envelope, still safe.
            let plan = FaultPlan::overriding(2, Bound::Unbounded)
                .with_kind_for(ObjectId(1), FaultKind::Silent);
            let report = Self::full_scan(cascades(&inputs(3), 2), 3, 0, plan);
            let ok = report.verified();
            pass &= ok;
            mixed.push_row(&[
                "cascade f = 2, n = 3".to_string(),
                "O0 overriding(∞) + O1 silent(∞)".to_string(),
                "consensus holds".to_string(),
                if ok { "holds" } else { "VIOLATED" }.to_string(),
                mark(ok).to_string(),
            ]);
        }
        {
            // The same mix with only 2 objects (no reliable spare): broken.
            let plan = FaultPlan::overriding(2, Bound::Unbounded)
                .with_kind_for(ObjectId(1), FaultKind::Silent);
            let report = Self::full_scan(cascades(&inputs(3), 1), 2, 0, plan);
            let violated = report.violation.is_some() || report.cycle_found;
            pass &= violated;
            mixed.push_row(&[
                "cascade sweep of 2, n = 3".to_string(),
                "O0 overriding(∞) + O1 silent(∞)".to_string(),
                "violated or nonterminating".to_string(),
                if violated {
                    "broken"
                } else {
                    "held (unexpected)"
                }
                .to_string(),
                mark(violated).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e14".into(),
            title: self.title().into(),
            paper_ref: "Section 6 (graceful degradation) + Definition 3 remark".into(),
            tables: vec![degradation, mixed],
            notes: vec![
                "Past the tolerance envelope, ONLY consistency fails: overriding faults can \
                 only write values some process supplied, so validity survives, and every \
                 operation stays responsive, so wait-freedom survives. In Jayanti et al.'s \
                 vocabulary the compound consensus object degrades gracefully — its failure \
                 class stays strictly below responsive-arbitrary."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_passes() {
        let r = E14GracefulDegradation.run();
        assert!(r.pass, "{}", r.render());
    }
}
