//! E6 — Section 5.2 corollary: `f` bounded-fault CAS objects have
//! consensus number exactly `f + 1`, populating every level of Herlihy's
//! hierarchy.

use super::mark;
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_adversary::{consensus_number_scan, SafetyVerdict};
use ff_sim::ExplorerConfig;

/// E6: the consensus hierarchy from faulty CAS objects.
pub struct E6Hierarchy;

impl Experiment for E6Hierarchy {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn title(&self) -> &'static str {
        "Consensus number of f bounded-fault CAS objects is f + 1"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Safety boundary scan (staged protocol, t = 1)",
            &["f", "n", "verdict", "matches f + 1 boundary"],
        );
        let config = ExplorerConfig {
            max_states: 500_000,
            max_depth: 50_000,
            stop_at_first_violation: true,
            threads: ff_sim::default_threads(),
        };
        let mut measured = Vec::new();
        for f in 1..=3u64 {
            let scan = consensus_number_scan(f, 1, f as usize + 2, config);
            let mut last_safe = 1usize;
            for (n, verdict) in &scan {
                let expected_safe = *n as u64 <= f + 1;
                let matches = verdict.safe() == expected_safe;
                pass &= matches;
                if verdict.safe() {
                    last_safe = *n;
                }
                let verdict_str = match verdict {
                    SafetyVerdict::VerifiedExhaustive => "verified (exhaustive)".to_string(),
                    SafetyVerdict::NoViolationFound { trials } => {
                        format!("no violation in {trials} trials")
                    }
                    SafetyVerdict::Violated => "VIOLATED".to_string(),
                    SafetyVerdict::Inconclusive => "inconclusive".to_string(),
                };
                table.push_row(&[
                    f.to_string(),
                    n.to_string(),
                    verdict_str,
                    mark(matches).to_string(),
                ]);
            }
            measured.push((f, last_safe));
        }

        let mut numbers = Table::new(
            "Measured consensus numbers",
            &["f", "paper (f + 1)", "measured", "match"],
        );
        for (f, measured_n) in measured {
            let expected = f as usize + 1;
            let ok = measured_n == expected;
            pass &= ok;
            numbers.push_row(&[
                f.to_string(),
                expected.to_string(),
                measured_n.to_string(),
                mark(ok).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e6".into(),
            title: self.title().into(),
            paper_ref: "Sections 4.3 + 5.2 (hierarchy corollary)".into(),
            tables: vec![table, numbers],
            notes: vec![
                "Paper: combining Theorems 6 and 19, a set of f CAS objects with bounded \
                 overriding faults sits at level f + 1 of the Herlihy hierarchy — so faulty \
                 settings populate every level. Expected: safe up to n = f + 1, violated at \
                 n = f + 2."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_passes() {
        let r = E6Hierarchy.run();
        assert!(r.pass, "{}", r.render());
    }
}
