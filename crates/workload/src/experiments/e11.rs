//! E11 — ablation of Figure 3's stage bound. The paper proves
//! `maxStage = t·(4f + f²)` suffices and remarks that "choosing an
//! earlier maximal stage might work" (it optimizes correctness, not
//! performance). We measure the *actual* minimal safe stage count by
//! exhaustive exploration: sweep `maxStage` from 1 up to the proven
//! bound and record where violations stop.

use super::inputs;
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_consensus::{max_stage, staged_with_max_stage};
use ff_sim::{explore_parallel, ExplorerConfig, FaultPlan, Heap, SimState};
use ff_spec::Bound;

/// E11: how conservative is `t·(4f + f²)`?
pub struct E11MaxStageAblation;

impl E11MaxStageAblation {
    fn verify(f: u64, t: u64, stages: u32) -> (bool, u64) {
        let plan = FaultPlan::overriding(f as usize, Bound::Finite(t));
        let n = f as usize + 1;
        let state = SimState::new(
            staged_with_max_stage(&inputs(n), f, stages),
            Heap::new(f as usize, 0),
            plan,
        );
        let report = explore_parallel(
            state,
            ExplorerConfig {
                max_states: 1_000_000,
                max_depth: 100_000,
                stop_at_first_violation: true,
                threads: ff_sim::default_threads(),
            },
        );
        (report.verified(), report.states_expanded)
    }
}

impl Experiment for E11MaxStageAblation {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "Ablation: minimal safe maxStage vs the proven t·(4f + f²)"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Exhaustive verification per stage bound (n = f + 1, all objects faulty)",
            &["f", "t", "maxStage", "proven bound", "verdict"],
        );
        let mut minimal = Table::new(
            "Minimal safe maxStage (measured) vs proven bound",
            &[
                "f",
                "t",
                "proven t·(4f+f²)",
                "measured minimal",
                "slack factor",
            ],
        );

        // f = 1 (n = 2) is degenerate — Theorem 4's anomaly makes ANY
        // stage bound safe for two processes. The meaningful ablation is
        // f = 2, n = 3, where maxStage = 1 genuinely violates; sweeping
        // the full proven bound (12) is exhaustive but slow, so the sweep
        // is capped at 4 stages (the boundary sits at 2).
        for (f, t, sweep_cap) in [(1u64, 1u64, u32::MAX), (1, 2, u32::MAX), (2, 1, 4)] {
            let proven = max_stage(f, t);
            let mut measured_min: Option<u32> = None;
            for stages in 1..=proven.min(sweep_cap) {
                let (safe, _states) = Self::verify(f, t, stages);
                // Record only transitions and endpoints to keep the table
                // readable: first stage, the boundary, and the proven bound.
                let boundary = measured_min.is_none() && safe || stages == 1 || stages == proven;
                if safe && measured_min.is_none() {
                    measured_min = Some(stages);
                }
                if boundary {
                    table.push_row(&[
                        f.to_string(),
                        t.to_string(),
                        stages.to_string(),
                        proven.to_string(),
                        if safe { "verified safe" } else { "violated" }.to_string(),
                    ]);
                }
                // Monotonicity sanity: once safe, larger bounds stay safe
                // (checked at the proven bound below).
            }
            // The proven bound itself must be safe (Theorem 6). For the
            // f = 2 case the full-bound exhaustive check (8M states,
            // ~2 min) lives in the slow test suite; the capped sweep
            // already established safety at a smaller bound, which a
            // larger bound only extends (more stages of the same
            // fault-free funneling).
            if sweep_cap == u32::MAX {
                let (proven_safe, _) = Self::verify(f, t, proven);
                pass &= proven_safe;
            }
            let measured = measured_min.unwrap_or(proven + 1);
            pass &= measured <= proven;
            minimal.push_row(&[
                f.to_string(),
                t.to_string(),
                proven.to_string(),
                measured.to_string(),
                format!("{:.1}×", proven as f64 / measured as f64),
            ]);
        }

        ExperimentResult {
            id: "e11".into(),
            title: self.title().into(),
            paper_ref: "Figure 3 remark ('an earlier maximal stage might work')".into(),
            tables: vec![table, minimal],
            notes: vec![
                "The paper's bound is proven sufficient, not necessary. Expected: the \
                 proven bound verifies (Theorem 6), and the measured minimal safe bound \
                 is at most the proven one — the slack factor quantifies the remark."
                    .into(),
                "f = 1 rows are degenerate: with n = 2, Theorem 4's anomaly makes any \
                 stage bound safe. The meaningful boundary is f = 2, n = 3: maxStage = 1 \
                 violates, maxStage = 2 verifies (proven bound: 12 — a 6× slack). The \
                 full proven-bound exhaustive check (8,001,106 states) is in the slow \
                 test suite (`cargo test -- --ignored theorem6_f2_full_bound`)."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_passes() {
        let r = E11MaxStageAblation.run();
        assert!(r.pass, "{}", r.render());
    }
}
