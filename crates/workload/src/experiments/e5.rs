//! E5 — Theorem 19: the covering adversary breaks any `f`-object
//! protocol with `f + 2` processes, at one fault per object.

use super::{inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_adversary::covering_attack;
use ff_consensus::{one_shots, staged_machines};

/// E5: the covering lower bound.
pub struct E5Covering;

impl Experiment for E5Covering {
    fn id(&self) -> &'static str {
        "e5"
    }

    fn title(&self) -> &'static str {
        "Covering attack: f objects cannot serve f + 2 processes (t = 1)"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Covering attack against the staged protocol (t = 1, n = f + 2)",
            &[
                "f",
                "n",
                "p0 decided",
                "p_{f+1} decided",
                "objects covered",
                "disagreement",
            ],
        );
        for f in 1..=4u64 {
            let n = f as usize + 2;
            let report = covering_attack(staged_machines(&inputs(n), f, 1), f as usize);
            pass &= report.violated();
            table.push_row(&[
                f.to_string(),
                n.to_string(),
                report
                    .first_decision
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                report
                    .last_decision
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                report.covered.len().to_string(),
                mark(report.violated()).to_string(),
            ]);
        }

        let mut oneshot = Table::new(
            "Covering attack against the one-shot protocol (f = 1, n = 3)",
            &["p0 decided", "p2 decided", "disagreement"],
        );
        let report = covering_attack(one_shots(&inputs(3)), 1);
        pass &= report.violated();
        oneshot.push_row(&[
            report
                .first_decision
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            report
                .last_decision
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            mark(report.violated()).to_string(),
        ]);

        ExperimentResult {
            id: "e5".into(),
            title: self.title().into(),
            paper_ref: "Theorem 19".into(),
            tables: vec![table, oneshot],
            notes: vec![
                "Paper: one overriding fault per object suffices to make f CAS objects \
                 useless for f + 2 processes — the adversary covers each object with one \
                 faulty write, erasing p0's entire footprint. Expected: disagreement between \
                 p0 and p_{f+1} at every f."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_passes() {
        let r = E5Covering.run();
        assert!(r.pass, "{}", r.render());
    }
}
