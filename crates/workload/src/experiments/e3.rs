//! E3 — Figure 3 / Theorem 6: `(f, t, f+1)`-tolerant consensus from `f`
//! (all possibly faulty) CAS objects, plus step-complexity against the
//! `maxStage = t·(4f + f²)` bound.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::runner::run_trials;
use crate::stats::Summary;
use crate::table::Table;
use ff_cas::{FaultyCasArray, ProbabilisticPolicy};
use ff_consensus::{max_stage, run_native, staged_machines, Consensus, StagedConsensus};
use ff_sim::{
    explore_parallel, run, FaultPlan, GreedyFault, Heap, RunConfig, SeededRandom, SimState,
};
use ff_spec::{check_consensus, Bound};
use std::sync::Arc;
use std::time::Duration;

/// E3: the staged construction.
pub struct E3Staged;

impl Experiment for E3Staged {
    fn id(&self) -> &'static str {
        "e3"
    }

    fn title(&self) -> &'static str {
        "(f, t, f+1)-tolerant consensus from f faulty-only objects"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;

        let mut exhaustive = Table::new(
            "Exhaustive model check (all f objects faulty, bounded t, n = f + 1)",
            &["f", "t", "maxStage", "states", "verified"],
        );
        for (f, t) in [(1u64, 1u64), (1, 2), (1, 3)] {
            let plan = FaultPlan::overriding(f as usize, Bound::Finite(t));
            let state = SimState::new(
                staged_machines(&inputs(f as usize + 1), f, t),
                Heap::new(f as usize, 0),
                plan,
            );
            let report = explore_parallel(state, explorer_config());
            let ok = report.verified();
            pass &= ok;
            exhaustive.push_row(&[
                f.to_string(),
                t.to_string(),
                max_stage(f, t).to_string(),
                report.states_expanded.to_string(),
                mark(ok).to_string(),
            ]);
        }

        let mut stress = Table::new(
            "Simulated stress (greedy faults, 100 random schedules each)",
            &["f", "t", "n", "violations", "mean steps/process", "clean"],
        );
        for f in 1..=3u64 {
            for t in 1..=3u64 {
                let n = f as usize + 1;
                let mut steps = Vec::new();
                let batch = run_trials(0..100, |seed| {
                    let plan = FaultPlan::overriding(f as usize, Bound::Finite(t));
                    let report = run(
                        staged_machines(&inputs(n), f, t),
                        Heap::new(f as usize, 0),
                        &plan,
                        &mut SeededRandom::new(seed),
                        &mut GreedyFault::new(plan.clone()),
                        RunConfig {
                            step_limit: 10_000_000,
                            record_trace: false,
                        },
                    );
                    for o in &report.outcomes {
                        steps.push(o.steps);
                    }
                    report.completed && check_consensus(&report.outcomes, None).ok()
                });
                pass &= batch.clean();
                let summary = Summary::of_counts(&steps);
                stress.push_row(&[
                    f.to_string(),
                    t.to_string(),
                    n.to_string(),
                    batch.violations.to_string(),
                    format!("{:.1}", summary.mean),
                    mark(batch.clean()).to_string(),
                ]);
            }
        }

        let mut native = Table::new(
            "Native threads (probabilistic faults p = 0.3, 50 trials each)",
            &["f", "t", "n", "violations", "clean"],
        );
        for (f, t) in crate::sweep::ft_grid(3, 2) {
            let n = f as usize + 1;
            let batch = run_trials(0..50, |seed| {
                let ensemble = Arc::new(
                    FaultyCasArray::builder(f as usize)
                        .faulty_first(f as usize)
                        .per_object(Bound::Finite(t))
                        .policy(ProbabilisticPolicy::new(0.3, seed))
                        .record_history(false)
                        .build(),
                );
                let protocol: Arc<dyn Consensus> = Arc::new(StagedConsensus::new(ensemble, f, t));
                run_native(protocol, &inputs(n), Duration::from_secs(10)).ok()
            });
            pass &= batch.clean();
            native.push_row(&[
                f.to_string(),
                t.to_string(),
                n.to_string(),
                batch.violations.to_string(),
                mark(batch.clean()).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e3".into(),
            title: self.title().into(),
            paper_ref: "Figure 3 / Theorem 6".into(),
            tables: vec![exhaustive, stress, native],
            notes: vec![
                "Paper: f objects — ALL possibly faulty — solve consensus for n = f + 1 \
                 processes when each object faults at most t times, using \
                 maxStage = t·(4f + f²) stages. Expected: zero violations; step counts \
                 grow with maxStage (the paper optimizes for correctness, not steps)."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_passes() {
        let r = E3Staged.run();
        assert!(r.pass, "{}", r.render());
    }
}
