//! E1 — Figure 1 / Theorem 4: `(f, ∞, 2)`-tolerant consensus from a
//! single (possibly unboundedly faulty) CAS object.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::runner::run_trials;
use crate::table::Table;
use ff_cas::{FaultyCasArray, ProbabilisticPolicy};
use ff_consensus::{one_shots, Consensus, TwoProcessConsensus};
use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
use ff_spec::Bound;
use std::sync::Arc;

/// E1: the two-process anomaly.
pub struct E1TwoProcess;

impl Experiment for E1TwoProcess {
    fn id(&self) -> &'static str {
        "e1"
    }

    fn title(&self) -> &'static str {
        "Two-process consensus from one faulty CAS object"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;

        // Exhaustive side: every schedule × fault pattern, n = 2.
        let mut exhaustive = Table::new(
            "Exhaustive model check (n = 2, 1 object, overriding faults)",
            &[
                "t (faults/object)",
                "states",
                "terminals",
                "violations",
                "verified",
            ],
        );
        for t in [Bound::Finite(1), Bound::Finite(3), Bound::Unbounded] {
            let plan = FaultPlan::overriding(1, t);
            let state = SimState::new(one_shots(&inputs(2)), Heap::new(1, 0), plan);
            let report = explore_parallel(state, explorer_config());
            pass &= report.verified();
            exhaustive.push_row(&[
                t.to_string(),
                report.states_expanded.to_string(),
                report.terminals.to_string(),
                report.violation.iter().count().to_string(),
                mark(report.verified()).to_string(),
            ]);
        }

        // Native side: real threads, seeded probabilistic overriding.
        let mut native = Table::new(
            "Native threads (2 processes, 100 trials per fault rate)",
            &["fault rate", "trials", "violations", "clean"],
        );
        for rate in [0.0, 0.5, 1.0] {
            let batch = run_trials(0..100, |seed| {
                let ensemble = Arc::new(
                    FaultyCasArray::builder(1)
                        .faulty_first(1)
                        .per_object(Bound::Unbounded)
                        .policy(ProbabilisticPolicy::new(rate, seed))
                        .record_history(false)
                        .build(),
                );
                let c = Arc::new(TwoProcessConsensus::new(ensemble));
                let (a, b) = std::thread::scope(|s| {
                    let c0 = Arc::clone(&c);
                    let c1 = Arc::clone(&c);
                    let h0 = s.spawn(move || c0.decide(ff_spec::Input(10)));
                    let h1 = s.spawn(move || c1.decide(ff_spec::Input(20)));
                    (h0.join().unwrap(), h1.join().unwrap())
                });
                a == b && (a == ff_spec::Input(10) || a == ff_spec::Input(20))
            });
            pass &= batch.clean();
            native.push_row(&[
                format!("{rate:.1}"),
                batch.trials.to_string(),
                batch.violations.to_string(),
                mark(batch.clean()).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e1".into(),
            title: self.title().into(),
            paper_ref: "Figure 1 / Theorem 4".into(),
            tables: vec![exhaustive, native],
            notes: vec![
                "Paper: a single CAS object with unboundedly many overriding faults still \
                 solves consensus for two processes. Expected: zero violations everywhere."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_passes() {
        let r = E1TwoProcess.run();
        assert!(r.pass, "{}", r.render());
        assert_eq!(r.tables.len(), 2);
    }
}
