//! The E1–E14 experiment implementations (see EXPERIMENTS.md and the
//! per-experiment index in DESIGN.md §5).

mod e1;
mod e10;
mod e11;
mod e12;
mod e13;
mod e14;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;

pub use e1::E1TwoProcess;
pub use e10::E10Universal;
pub use e11::E11MaxStageAblation;
pub use e12::E12StepComplexity;
pub use e13::E13OtherPrimitives;
pub use e14::E14GracefulDegradation;
pub use e2::E2Cascade;
pub use e3::E3Staged;
pub use e4::E4UnboundedLower;
pub use e5::E5Covering;
pub use e6::E6Hierarchy;
pub use e7::E7ModelSeparation;
pub use e8::E8OtherFaults;
pub use e9::E9HerlihyBaseline;

use ff_sim::ExplorerConfig;
use ff_spec::Input;

/// Distinct inputs `100, 101, …` for `n` processes.
pub(crate) fn inputs(n: usize) -> Vec<Input> {
    (0..n as u32).map(|i| Input(100 + i)).collect()
}

/// Check-mark rendering for tables.
pub(crate) fn mark(ok: bool) -> &'static str {
    if ok {
        "✓"
    } else {
        "✗"
    }
}

/// The standard explorer budget for report-sized exhaustive runs.
/// Parallelism follows `FF_EXPLORER_THREADS` (default: all cores); the
/// experiments run through [`ff_sim::explore_parallel`], which reduces to
/// the sequential explorer when `threads` is 1.
pub(crate) fn explorer_config() -> ExplorerConfig {
    ExplorerConfig {
        max_states: 2_000_000,
        max_depth: 100_000,
        stop_at_first_violation: true,
        threads: ff_sim::default_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_distinct() {
        let v = inputs(4);
        assert_eq!(v.len(), 4);
        let mut u = v.clone();
        u.dedup();
        assert_eq!(u, v);
    }

    #[test]
    fn marks() {
        assert_eq!(mark(true), "✓");
        assert_eq!(mark(false), "✗");
    }
}
