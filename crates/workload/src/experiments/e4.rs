//! E4 — Theorem 18: with unbounded faults per object and only `f`
//! (faulty) CAS objects, consensus is impossible for `n > 2` — the
//! explorer exhibits the violating execution.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_adversary::{find_violation_unbounded, summarize_violations};
use ff_consensus::{cascades, one_shots};
use ff_sim::Process;

/// E4: the unbounded-faults lower bound.
pub struct E4UnboundedLower;

impl Experiment for E4UnboundedLower {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn title(&self) -> &'static str {
        "Impossibility with f faulty-only objects, unbounded t, n = 3"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Violation search (all objects faulty, unbounded t, n = 3)",
            &[
                "protocol",
                "objects (f)",
                "witness found",
                "witness steps",
                "violated properties",
            ],
        );
        let mut notes = vec![
            "Paper: no (f, ∞, n)-tolerant consensus exists from f CAS objects when n > 2 \
             (Theorem 18). Expected: the explorer finds a violating execution for every \
             sweep protocol run over faulty-only objects."
                .into(),
        ];

        type ProcessMaker = Box<dyn Fn() -> Vec<Box<dyn Process>>>;
        let cases: Vec<(&str, usize, ProcessMaker)> = vec![
            (
                "one-shot (sweep of 1)",
                1,
                Box::new(|| one_shots(&inputs(3))),
            ),
            (
                "cascade sweep of 2",
                2,
                Box::new(|| cascades(&inputs(3), 1)),
            ),
        ];
        for (name, objects, make) in cases {
            let report = find_violation_unbounded(make(), objects, explorer_config());
            let found = report.violation.is_some();
            pass &= found;
            match &report.violation {
                Some(w) => {
                    table.push_row(&[
                        name.to_string(),
                        objects.to_string(),
                        mark(true).to_string(),
                        w.choices.len().to_string(),
                        summarize_violations(&w.violations),
                    ]);
                    if notes.len() < 2 {
                        notes.push(format!(
                            "first witness ({name}): {} steps, {} fault injections",
                            w.choices.len(),
                            w.choices
                                .iter()
                                .filter(|c| !matches!(
                                    c.decision,
                                    ff_sim::StepDecision::Apply(ff_sim::FaultDecision::Correct)
                                ))
                                .count()
                        ));
                    }
                }
                None => {
                    table.push_row(&[
                        name.to_string(),
                        objects.to_string(),
                        mark(false).to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }

        // Theorem 18's full statement allows an unbounded number of
        // reliable read/write registers alongside the f CAS objects:
        // the announce-then-race protocol (write input to a register,
        // read all announcements, then race on the CAS) must still break.
        {
            use ff_adversary::AnnounceRaceMachine;
            use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
            let plan = FaultPlan::overriding(1, ff_spec::Bound::Unbounded);
            let state = SimState::new(AnnounceRaceMachine::all(&inputs(3)), Heap::new(1, 3), plan);
            let report = explore_parallel(state, explorer_config());
            let found = report.violation.is_some();
            pass &= found;
            table.push_row(&[
                "announce-then-race (+3 registers)".to_string(),
                "1".to_string(),
                mark(found).to_string(),
                report
                    .violation
                    .as_ref()
                    .map(|w| w.choices.len().to_string())
                    .unwrap_or_else(|| "-".into()),
                report
                    .violation
                    .as_ref()
                    .map(|w| summarize_violations(&w.violations))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }

        // Boundary check: the same environment with n = 2 is safe
        // (Theorem 4), confirming the bound is tight in n.
        let boundary = find_violation_unbounded(one_shots(&inputs(2)), 1, explorer_config());
        let boundary_safe = boundary.verified();
        pass &= boundary_safe;
        let mut boundary_table = Table::new(
            "Tightness boundary (same environment, n = 2)",
            &["protocol", "objects", "verified safe"],
        );
        boundary_table.push_row(&[
            "one-shot".to_string(),
            "1".to_string(),
            mark(boundary_safe).to_string(),
        ]);

        ExperimentResult {
            id: "e4".into(),
            title: self.title().into(),
            paper_ref: "Theorem 18".into(),
            tables: vec![table, boundary_table],
            notes,
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_passes() {
        let r = E4UnboundedLower.run();
        assert!(r.pass, "{}", r.render());
    }
}
