//! E12 — step-complexity scaling of the staged protocol: measured shared
//! steps per `decide()` against the `maxStage = t·(4f + f²)` bound.
//!
//! The shape to reproduce: per-process steps grow **linearly in `t`** at
//! fixed `f` and **superlinearly in `f`** at fixed `t` (each stage sweeps
//! `f` objects and there are `Θ(t·f²)` stages, so steps are `Θ(t·f³)`
//! in the worst case; fault-free runs pay ~2 CASes per object per stage).

use super::{inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::stats::Summary;
use crate::table::Table;
use ff_consensus::{max_stage, staged_machines};
use ff_sim::{run, FaultPlan, GreedyFault, Heap, RunConfig, SeededRandom};
use ff_spec::{check_consensus, Bound};

/// E12: the cost of correctness.
pub struct E12StepComplexity;

impl E12StepComplexity {
    fn measure(f: u64, t: u64, trials: u64) -> (Summary, bool) {
        let mut steps = Vec::new();
        let mut clean = true;
        for seed in 0..trials {
            let plan = FaultPlan::overriding(f as usize, Bound::Finite(t));
            let report = run(
                staged_machines(&inputs(f as usize + 1), f, t),
                Heap::new(f as usize, 0),
                &plan,
                &mut SeededRandom::new(seed),
                &mut GreedyFault::new(plan.clone()),
                RunConfig {
                    step_limit: 50_000_000,
                    record_trace: false,
                },
            );
            clean &= report.completed && check_consensus(&report.outcomes, None).ok();
            steps.extend(report.outcomes.iter().map(|o| o.steps));
        }
        (Summary::of_counts(&steps), clean)
    }
}

impl Experiment for E12StepComplexity {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "Step complexity of the staged protocol vs maxStage = t·(4f + f²)"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let trials = 50u64;
        let mut table = Table::new(
            "Shared steps per decide (greedy faults, 50 seeded schedules, n = f + 1)",
            &[
                "f",
                "t",
                "maxStage",
                "mean steps",
                "max steps",
                "steps/maxStage",
                "clean",
            ],
        );

        let mut means = std::collections::BTreeMap::new();
        for (f, t) in crate::sweep::ft_grid(3, 4) {
            let (summary, clean) = Self::measure(f, t, trials);
            pass &= clean;
            means.insert((f, t), summary.mean);
            let ms = max_stage(f, t);
            table.push_row(&[
                f.to_string(),
                t.to_string(),
                ms.to_string(),
                format!("{:.1}", summary.mean),
                format!("{:.0}", summary.max),
                format!("{:.2}", summary.mean / ms as f64),
                mark(clean).to_string(),
            ]);
        }

        // Shape checks: linear in t (ratio of means ≈ ratio of t at fixed
        // f), and growing in f at fixed t.
        let mut shape = Table::new(
            "Scaling shape (ratios of mean steps)",
            &["comparison", "expected", "measured ratio", "match"],
        );
        let lin_t = means[&(2, 4)] / means[&(2, 1)];
        let lin_t_ok = (2.5..=6.0).contains(&lin_t); // ≈ 4 (t quadrupled)
        pass &= lin_t_ok;
        shape.push_row(&[
            "f = 2: t = 4 vs t = 1".to_string(),
            "≈ 4× (linear in t)".to_string(),
            format!("{lin_t:.1}×"),
            mark(lin_t_ok).to_string(),
        ]);
        let growth_f = means[&(3, 1)] / means[&(1, 1)];
        let growth_f_ok = growth_f > 4.0; // superlinear: maxStage 5 → 21, × f objects
        pass &= growth_f_ok;
        shape.push_row(&[
            "t = 1: f = 3 vs f = 1".to_string(),
            "> 4× (superlinear in f)".to_string(),
            format!("{growth_f:.1}×"),
            mark(growth_f_ok).to_string(),
        ]);

        ExperimentResult {
            id: "e12".into(),
            title: self.title().into(),
            paper_ref: "Theorem 6 (cost analysis) + Figure 3 remark on performance".into(),
            tables: vec![table, shape],
            notes: vec![
                "The paper chooses correctness and space over step complexity; the measured \
                 cost tracks maxStage = t·(4f + f²): linear in t, superlinear in f."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_passes() {
        let r = E12StepComplexity.run();
        assert!(r.pass, "{}", r.render());
    }
}
