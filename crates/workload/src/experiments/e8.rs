//! E8 — Section 3.4's taxonomy of other CAS faults: silent (bounded /
//! unbounded), nonresponsive, invisible and arbitrary.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::table::Table;
use ff_cas::{AlwaysPolicy, CasEnsemble, FaultyCasArray};
use ff_consensus::{run_native, silent_retries, Consensus, HerlihyConsensus};
use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
use ff_spec::{Bound, FaultKind, Input, ObjectId};
use std::sync::Arc;
use std::time::Duration;

/// E8: the other fault kinds.
pub struct E8OtherFaults;

impl E8OtherFaults {
    /// Sequential three-decider probe on a Herlihy cell over `ensemble`;
    /// returns `true` iff the three decisions agree.
    fn herlihy_agrees(ensemble: Arc<FaultyCasArray>) -> bool {
        let c = HerlihyConsensus::new(ensemble);
        let a = c.decide(Input(10));
        let b = c.decide(Input(20));
        let d = c.decide(Input(30));
        a == b && b == d
    }
}

impl Experiment for E8OtherFaults {
    fn id(&self) -> &'static str {
        "e8"
    }

    fn title(&self) -> &'static str {
        "Other CAS functional faults: silent, nonresponsive, invisible, arbitrary"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;
        let mut table = Table::new(
            "Fault taxonomy outcomes",
            &[
                "fault kind",
                "budget",
                "scenario",
                "expected",
                "observed",
                "match",
            ],
        );

        // Silent, bounded: the retry protocol works (exhaustive).
        for t in [1u64, 2] {
            let plan = FaultPlan::silent(1, Bound::Finite(t));
            let state = SimState::new(silent_retries(&inputs(2)), Heap::new(1, 0), plan);
            let report = explore_parallel(state, explorer_config());
            let ok = report.verified();
            pass &= ok;
            table.push_row(&[
                "silent".to_string(),
                format!("t = {t}"),
                "retry protocol, exhaustive".to_string(),
                "consensus holds".to_string(),
                if ok { "holds" } else { "VIOLATED" }.to_string(),
                mark(ok).to_string(),
            ]);
        }

        // Silent, unbounded: nontermination (a cycle in the state graph).
        {
            let plan = FaultPlan::silent(1, Bound::Unbounded);
            let state = SimState::new(silent_retries(&inputs(2)), Heap::new(1, 0), plan);
            let report = explore_parallel(state, explorer_config());
            let ok = report.cycle_found;
            pass &= ok;
            table.push_row(&[
                "silent".to_string(),
                "t = ∞".to_string(),
                "retry protocol, exhaustive".to_string(),
                "nontermination (cycle)".to_string(),
                if ok { "cycle found" } else { "no cycle" }.to_string(),
                mark(ok).to_string(),
            ]);
        }

        // Nonresponsive: a process never returns (missing outcome).
        {
            let ensemble = Arc::new(
                FaultyCasArray::builder(1)
                    .kind(FaultKind::Nonresponsive)
                    .faulty_first(1)
                    .per_object(Bound::Finite(1))
                    .policy(AlwaysPolicy)
                    .record_history(false)
                    .build(),
            );
            let protocol: Arc<dyn Consensus> = Arc::new(HerlihyConsensus::new(ensemble));
            let report = run_native(protocol, &inputs(3), Duration::from_millis(600));
            let missing = report
                .outcomes
                .iter()
                .filter(|o| o.decision.is_none())
                .count();
            let ok = missing == 1 && !report.ok();
            pass &= ok;
            table.push_row(&[
                "nonresponsive".to_string(),
                "t = 1".to_string(),
                "native, 3 processes".to_string(),
                "1 process never returns".to_string(),
                format!("{missing} undecided"),
                mark(ok).to_string(),
            ]);
        }

        // Invisible: a corrupted old value breaks agreement (reducible to
        // a data fault, per the paper).
        {
            let ensemble = Arc::new(
                FaultyCasArray::builder(1)
                    .kind(FaultKind::Invisible)
                    .faulty_first(1)
                    .per_object(Bound::Finite(1))
                    .policy(ff_cas::FirstKPolicy::new(2))
                    .record_history(false)
                    .build(),
            );
            let agreed = Self::herlihy_agrees(ensemble);
            pass &= !agreed;
            table.push_row(&[
                "invisible".to_string(),
                "t = 1".to_string(),
                "sequential Herlihy probe".to_string(),
                "agreement broken".to_string(),
                if agreed {
                    "agreed (unexpected)"
                } else {
                    "broken"
                }
                .to_string(),
                mark(!agreed).to_string(),
            ]);
        }

        // Arbitrary: junk written to the cell breaks agreement.
        {
            let ensemble = Arc::new(
                FaultyCasArray::builder(1)
                    .kind(FaultKind::Arbitrary)
                    .faulty_first(1)
                    .per_object(Bound::Finite(1))
                    .policy(AlwaysPolicy)
                    .record_history(false)
                    .build(),
            );
            let agreed = Self::herlihy_agrees(Arc::clone(&ensemble));
            // The junk word is, with overwhelming probability, not an
            // input of any process: validity is violated downstream.
            let junk_present = {
                let probe = ensemble.cas(ObjectId(0), ff_spec::BOTTOM, 0);
                Input::from_word(probe).is_none() || probe > 1_000_000
            };
            pass &= !agreed || junk_present;
            table.push_row(&[
                "arbitrary".to_string(),
                "t = 1".to_string(),
                "sequential Herlihy probe".to_string(),
                "agreement broken".to_string(),
                if agreed {
                    "agreed (unexpected)"
                } else {
                    "broken"
                }
                .to_string(),
                mark(!agreed || junk_present).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e8".into(),
            title: self.title().into(),
            paper_ref: "Section 3.4".into(),
            tables: vec![table],
            notes: vec![
                "Paper: silent faults are survivable iff bounded (retry until a non-⊥ value \
                 appears); nonresponsive faults make consensus impossible (one hung process); \
                 invisible and arbitrary faults reduce to data faults and break the naive \
                 protocol. Expected: each row matches its taxonomy entry."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_passes() {
        let r = E8OtherFaults.run();
        assert!(r.pass, "{}", r.render());
    }
}
