//! E9 — the baseline and the motivation: Herlihy's single-CAS consensus
//! is correct on reliable hardware and broken by a single overriding
//! fault once `n ≥ 3`.

use super::{explorer_config, inputs, mark};
use crate::experiment::{Experiment, ExperimentResult};
use crate::runner::run_trials;
use crate::table::Table;
use ff_cas::AtomicCasArray;
use ff_consensus::{one_shots, run_native, Consensus, HerlihyConsensus};
use ff_sim::{explore_parallel, FaultPlan, Heap, SimState};
use ff_spec::Bound;
use std::sync::Arc;
use std::time::Duration;

/// E9: the Herlihy baseline.
pub struct E9HerlihyBaseline;

impl Experiment for E9HerlihyBaseline {
    fn id(&self) -> &'static str {
        "e9"
    }

    fn title(&self) -> &'static str {
        "Herlihy baseline: reliable CAS solves consensus; one override breaks it"
    }

    fn run(&self) -> ExperimentResult {
        let mut pass = true;

        // Fault-free correctness: exhaustive + native.
        let mut clean = Table::new("Reliable hardware", &["check", "n", "violations", "clean"]);
        for n in [2usize, 3, 4] {
            let state = SimState::new(one_shots(&inputs(n)), Heap::new(1, 0), FaultPlan::none());
            let report = explore_parallel(state, explorer_config());
            pass &= report.verified();
            clean.push_row(&[
                "exhaustive".to_string(),
                n.to_string(),
                report.violation.iter().count().to_string(),
                mark(report.verified()).to_string(),
            ]);
        }
        let batch = run_trials(0..50, |_| {
            let protocol: Arc<dyn Consensus> =
                Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1))));
            run_native(protocol, &inputs(8), Duration::from_secs(5)).ok()
        });
        pass &= batch.clean();
        clean.push_row(&[
            "native (8 threads)".to_string(),
            "8".to_string(),
            batch.violations.to_string(),
            mark(batch.clean()).to_string(),
        ]);

        // A single overriding fault: violated for n = 3, still safe n = 2.
        let mut faulty = Table::new(
            "One overriding fault (t = 1)",
            &["n", "expected", "observed", "match"],
        );
        for (n, expect_safe) in [(2usize, true), (3, false), (4, false)] {
            let plan = FaultPlan::overriding(1, Bound::Finite(1));
            let state = SimState::new(one_shots(&inputs(n)), Heap::new(1, 0), plan);
            let report = explore_parallel(state, explorer_config());
            let safe = report.verified();
            let ok = safe == expect_safe;
            pass &= ok;
            faulty.push_row(&[
                n.to_string(),
                if expect_safe { "safe" } else { "violated" }.to_string(),
                if safe { "safe" } else { "violated" }.to_string(),
                mark(ok).to_string(),
            ]);
        }

        ExperimentResult {
            id: "e9".into(),
            title: self.title().into(),
            paper_ref: "Section 2 (baseline) + Section 3.3 (motivation)".into(),
            tables: vec![clean, faulty],
            notes: vec![
                "Paper: CAS has consensus number ∞ when reliable; a single overriding fault \
                 reduces the naive protocol's consensus number to 2 — the constructions of \
                 Section 4 exist to recover from exactly this."
                    .into(),
            ],
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_passes() {
        let r = E9HerlihyBaseline.run();
        assert!(r.pass, "{}", r.render());
    }
}
