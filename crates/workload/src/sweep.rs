//! Parameter-grid helpers for sweeps.

/// Cartesian product of two parameter axes.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three parameter axes.
pub fn grid3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// The standard `(f, t)` sweep used by the staged-protocol experiments.
pub fn ft_grid(max_f: u64, max_t: u64) -> Vec<(u64, u64)> {
    grid2(
        &(1..=max_f).collect::<Vec<_>>(),
        &(1..=max_t).collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_order_and_size() {
        assert_eq!(grid2(&[1, 2], &["a", "b"]).len(), 4);
        assert_eq!(grid2(&[1, 2], &["a"]), vec![(1, "a"), (2, "a")]);
    }

    #[test]
    fn grid3_size() {
        assert_eq!(grid3(&[1, 2], &[3], &[4, 5, 6]).len(), 6);
    }

    #[test]
    fn ft_grid_covers_all_pairs() {
        let g = ft_grid(2, 3);
        assert_eq!(g.len(), 6);
        assert!(g.contains(&(2, 3)));
        assert!(g.contains(&(1, 1)));
    }

    #[test]
    fn empty_axis_gives_empty_grid() {
        let empty: Vec<i32> = vec![];
        assert!(grid2(&empty, &[1]).is_empty());
    }
}
