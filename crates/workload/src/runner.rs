//! Seeded trial runners and timing helpers.

use crate::stats::Summary;
use std::time::{Duration, Instant};

/// The outcome of a batch of seeded pass/fail trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialBatch {
    /// Trials executed.
    pub trials: u64,
    /// Trials that violated the property under test.
    pub violations: u64,
    /// The first violating seed, if any.
    pub first_violation_seed: Option<u64>,
}

impl TrialBatch {
    /// `true` iff no trial violated.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Run `trial(seed)` for each seed; `trial` returns `true` when the
/// property held.
pub fn run_trials(seeds: std::ops::Range<u64>, mut trial: impl FnMut(u64) -> bool) -> TrialBatch {
    let mut batch = TrialBatch {
        trials: 0,
        violations: 0,
        first_violation_seed: None,
    };
    for seed in seeds {
        batch.trials += 1;
        if !trial(seed) {
            batch.violations += 1;
            batch.first_violation_seed.get_or_insert(seed);
        }
    }
    batch
}

/// Time a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` once per seed and summarize wall-clock latencies (in
/// microseconds).
pub fn time_trials(seeds: std::ops::Range<u64>, mut f: impl FnMut(u64)) -> Summary {
    let samples: Vec<f64> = seeds
        .map(|seed| {
            let (_, d) = time_it(|| f(seed));
            d.as_secs_f64() * 1e6
        })
        .collect();
    Summary::of(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_batch() {
        let b = run_trials(0..10, |_| true);
        assert_eq!(b.trials, 10);
        assert!(b.clean());
        assert_eq!(b.first_violation_seed, None);
    }

    #[test]
    fn violations_counted_with_first_seed() {
        let b = run_trials(0..10, |seed| seed % 3 != 2);
        assert_eq!(b.violations, 3); // seeds 2, 5, 8
        assert_eq!(b.first_violation_seed, Some(2));
        assert!(!b.clean());
    }

    #[test]
    fn timing_returns_value() {
        let (v, d) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn time_trials_summarizes() {
        let s = time_trials(0..5, |_| std::hint::black_box(()));
        assert_eq!(s.count, 5);
        assert!(s.mean >= 0.0);
    }
}
