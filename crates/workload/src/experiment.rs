//! The experiment abstraction and registry.
//!
//! Each experiment in EXPERIMENTS.md (E1–E14) is an [`Experiment`]
//! implementation producing [`Table`]s plus a pass/fail verdict that
//! encodes the paper's prediction — "pass" means the reproduction
//! *matches the theorem*, including the lower-bound experiments, where
//! matching means a violation **was** found.
//!
//! The system-scale experiments live downstream of this crate and are
//! registered by the `report` binary instead of [`registry`] (they
//! depend on `ff-workload`, so naming them here would be a cycle):
//! E15 (store soak) in `ff-store`, E16 (network soak over TCP) in
//! `ff-net`.

use crate::table::Table;

/// The rendered result of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (e.g. "e3").
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper artifact this reproduces.
    pub paper_ref: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form notes (witness excerpts, caveats).
    pub notes: Vec<String>,
    /// `true` iff the measured behavior matches the paper's claim.
    pub pass: bool,
}

impl ExperimentResult {
    /// Render the whole result as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== {} — {} [{}] => {}",
            self.id.to_uppercase(),
            self.title,
            self.paper_ref,
            if self.pass { "PASS" } else { "FAIL" }
        );
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        for n in &self.notes {
            let _ = writeln!(out, "\nnote: {n}");
        }
        out
    }
}

/// A reproducible experiment.
pub trait Experiment {
    /// Stable id, matching EXPERIMENTS.md.
    fn id(&self) -> &'static str;
    /// Human title.
    fn title(&self) -> &'static str;
    /// Execute and report.
    fn run(&self) -> ExperimentResult;
}

/// All registered experiments, in id order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::experiments::E1TwoProcess),
        Box::new(crate::experiments::E2Cascade),
        Box::new(crate::experiments::E3Staged),
        Box::new(crate::experiments::E4UnboundedLower),
        Box::new(crate::experiments::E5Covering),
        Box::new(crate::experiments::E6Hierarchy),
        Box::new(crate::experiments::E7ModelSeparation),
        Box::new(crate::experiments::E8OtherFaults),
        Box::new(crate::experiments::E9HerlihyBaseline),
        Box::new(crate::experiments::E10Universal),
        Box::new(crate::experiments::E11MaxStageAblation),
        Box::new(crate::experiments::E12StepComplexity),
        Box::new(crate::experiments::E13OtherPrimitives),
        Box::new(crate::experiments::E14GracefulDegradation),
    ]
}

/// Look up one experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    registry()
        .into_iter()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            vec![
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
                "e14"
            ]
        );
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("E3").is_some());
        assert!(find("e3").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn render_marks_verdict() {
        let r = ExperimentResult {
            id: "e0".into(),
            title: "demo".into(),
            paper_ref: "none".into(),
            tables: vec![],
            notes: vec!["hello".into()],
            pass: true,
        };
        let s = r.render();
        assert!(s.contains("PASS"));
        assert!(s.contains("note: hello"));
    }
}
