//! ASCII table rendering for experiment reports.

/// A titled table of string cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each as long as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable values.
    pub fn push_row<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            out.push_str(&s);
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["f", "verdict"]);
        t.push_row(&["1", "ok"]);
        t.push_row(&["23", "violated"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| f  | verdict  |"), "{s}");
        assert!(s.contains("| 23 | violated |"), "{s}");
        assert!(s.contains("|----|"), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(&["only-one"]);
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = Table::new("u", &["x"]);
        t.push_row(&["⊥⊥"]);
        let s = t.render();
        assert!(s.contains("| ⊥⊥ |"), "{s}");
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(&["1"]);
        let r = crate::experiment::ExperimentResult {
            id: "t".into(),
            title: "table round trip".into(),
            paper_ref: "none".into(),
            tables: vec![t.clone()],
            notes: vec![],
            pass: true,
        };
        let json = crate::json::to_json(&[r]);
        let back = crate::json::from_json(&json).unwrap();
        assert_eq!(back[0].tables[0], t);
    }
}
