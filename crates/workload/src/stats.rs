//! Summary statistics over trial measurements.

/// Summary of a sample of measurements.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Returns the zero summary for an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
        }
    }

    /// Summarize integer counts.
    pub fn of_counts(samples: &[u64]) -> Summary {
        let floats: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&floats)
    }
}

/// Linear-interpolation percentile of a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p99, 5.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.stddev - 1.5811388).abs() < 1e-6);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::of(&[0.0, 10.0]);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p90, 9.0);
    }

    #[test]
    fn of_counts() {
        let s = Summary::of_counts(&[2, 4, 6]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn order_invariance() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
