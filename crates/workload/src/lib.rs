//! # ff-workload — the experiment harness
//!
//! Regenerates every experiment table of the *Functional Faults*
//! reproduction (see EXPERIMENTS.md): parameter sweeps, seeded trial
//! runners, summary statistics, ASCII tables, the E1–E14 experiment
//! registry and JSON export.
//!
//! ```no_run
//! // Render one experiment's tables:
//! let e3 = ff_workload::find("e3").unwrap();
//! println!("{}", e3.run().render());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod experiments;
pub mod json;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod table;

pub use experiment::{find, registry, Experiment, ExperimentResult};
pub use json::{from_json, to_json, JsonValue};
pub use runner::{run_trials, time_it, time_trials, TrialBatch};
pub use stats::Summary;
pub use sweep::{ft_grid, grid2, grid3};
pub use table::Table;
