//! # ff-store — a sharded, wait-free replicated KV store over robust
//! consensus
//!
//! The paper's point (Section 1) is that consensus built from faulty
//! CAS objects unlocks *arbitrary* wait-free objects. This crate takes
//! that step at system scale: a key-value store whose shards are
//! replicated [`KvMap`]s, each driven by its own
//! [`UniversalLog`](ff_universal::UniversalLog) over pluggable
//! consensus substrates resolved through the open [`substrate`]
//! registry ([`Backend::reliable`] / [`Backend::robust`] under live
//! fault injection / the deliberately broken [`Backend::naive`] /
//! CAS-from-weaker-primitives entries like [`Backend::kw_robust`]).
//! Keys route to shards by hash, so throughput
//! scales with cores instead of serializing on one log; shard logs are
//! bounded by consensus-decided checkpoints
//! ([`UniversalLog::checkpoint_every`](ff_universal::UniversalLog::checkpoint_every));
//! fault injection reuses the `ff-cas` policies and `(f, t)` budgets
//! with per-shard runtime knobs; and [`metrics`] keeps lock-free
//! counters and latency histograms the soak harness ([`soak`]) exports
//! to JSON.
//!
//! ```
//! use ff_store::{Backend, Kv, Store, StoreConfig};
//!
//! let config = StoreConfig::builder()
//!     .shards(4)
//!     .backend(Backend::robust())
//!     .build()
//!     .expect("valid configuration");
//! let store = Store::new(config);
//! let mut client = store.client();
//! client.put(7, 99).unwrap();
//! assert_eq!(client.get(7).unwrap(), Some(99));
//! let report = store.verify(&mut [client]);
//! assert!(report.all_consistent());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cells;
pub mod clock;
pub mod combine;
pub mod kv;
pub mod map;
pub mod metrics;
pub mod recover;
pub mod soak;
pub mod substrate;
pub mod wal;

mod experiment;

pub use cells::{FaultConfig, FaultKnob, GuardedCascadeConsensus, ProcessFault};
pub use clock::{Clock, ManualClock, WallClock};
pub use combine::{CombineSnapshot, CombineStats};
pub use experiment::E15StoreSoak;
pub use kv::{Kv, KvOp, StoreError};
pub use map::{KvMap, KV_BITS, KV_MAX};
pub use metrics::{DurabilitySnapshot, MetricsSnapshot, ShardFaults, StoreMetrics};
pub use recover::{RecoverError, RecoveryReport, ShardRecovery};
pub use soak::{
    drive_clients, drive_clients_with_clock, run_soak, try_run_soak, DriveOutcome, SoakConfig,
    SoakReport, WorkloadMix,
};
pub use substrate::{
    all_backends, register, substrate_names, Backend, CellCtx, DuplicateSubstrate, ShardCells,
    Substrate, UnknownSubstrate,
};
pub use wal::{DurabilityConfig, FsMedia, WalIoError, WalMedia};

use ff_cas::{splitmix64, EnsembleStats};
use ff_universal::{digests_consistent, Handle, UniversalLog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Store-wide configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreConfig {
    /// Number of shards (each with its own log and cell factory).
    pub shards: usize,
    /// The consensus backend every shard runs on.
    pub backend: Backend,
    /// Fault environment (ignored by [`Backend::reliable`], which never
    /// injects). With `rotate_kinds`, the configured kind applies to
    /// shard 0 and subsequent shards rotate through the tolerable kinds.
    pub fault: FaultConfig,
    /// Rotate fault kinds across shards (overriding → silent →
    /// arbitrary), exercising a Definition 3-style mixed-fault
    /// environment; the store survives because each *shard* stays
    /// within its own construction's envelope.
    pub rotate_kinds: bool,
    /// Checkpoint interval in log slots (bounds each shard's retained
    /// log).
    pub checkpoint_interval: usize,
    /// Route client operations through per-shard flat-combining cores:
    /// pending ops are drained by one combiner into a single batched
    /// log append, and GETs answer wait-free from the shared core
    /// replica whenever its applied index covers the observed tail
    /// (see [`combine`]). Off, every op pays its own log pass.
    pub combining: bool,
    /// Combiner crash recovery (the lease/epoch rule, see [`combine`]):
    /// a waiter whose op stays `CLAIMED` past [`StoreConfig::reclaim_after`]
    /// polls takes it back and republishes it under a fresh epoch, so a
    /// combiner that dies between claiming and executing cannot park
    /// ops forever. On by default; turning it off reproduces the
    /// parked-ops bug (the DST pinned-seed regression arm).
    pub combiner_lease: bool,
    /// Polls a waiter tolerates a `CLAIMED` op before the lease rule
    /// reclaims it (only meaningful with [`StoreConfig::combiner_lease`]).
    pub reclaim_after: u32,
    /// Seed for all deterministic fault streams and routing salts.
    pub seed: u64,
    /// Durability: per-shard write-ahead logging and crash recovery
    /// (see [`wal`]). Off by default — the pre-WAL in-memory store.
    pub durability: DurabilityConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            backend: Backend::robust(),
            fault: FaultConfig::default(),
            rotate_kinds: false,
            checkpoint_interval: 64,
            combining: false,
            combiner_lease: true,
            reclaim_after: 4096,
            seed: 0x5eed,
            durability: DurabilityConfig::default(),
        }
    }
}

impl StoreConfig {
    /// Start building a configuration. Unset knobs keep
    /// [`StoreConfig::default`]'s values; [`StoreConfigBuilder::build`]
    /// validates the combination and returns a [`ConfigError`] instead
    /// of deferring to the construction-time panics inside
    /// [`ShardCells`].
    pub fn builder() -> StoreConfigBuilder {
        StoreConfigBuilder {
            config: StoreConfig::default(),
        }
    }

    /// Check this configuration against every constraint the backends
    /// impose (the same rules [`StoreConfig::builder`] enforces).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::NoShards);
        }
        if self.checkpoint_interval == 0 {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        if !(0.0..=1.0).contains(&self.fault.rate) {
            return Err(ConfigError::FaultRateNotProbability(self.fault.rate));
        }
        if self.durability.enabled() && self.durability.group_commit == 0 {
            return Err(ConfigError::ZeroGroupCommit);
        }
        if self.fault.process == ProcessFault::CrashRecover && !self.durability.enabled() {
            return Err(ConfigError::CrashRecoverNeedsDurability);
        }
        // With rotation, the configured kind is replaced per shard by
        // the substrate's own injected rotation (and silent gets a
        // finite default budget), so validate exactly what each shard
        // will actually be built with.
        if self.rotate_kinds && !self.backend.injected_kinds().is_empty() {
            for &kind in self.backend.injected_kinds() {
                self.backend.validate(&rotated_fault(&self.fault, kind))?;
            }
        } else {
            self.backend.validate(&self.fault)?;
        }
        Ok(())
    }
}

/// Why a [`StoreConfigBuilder`] refused to produce a configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `shards` was 0 — a store needs at least one shard.
    NoShards,
    /// `checkpoint_interval` was 0 — logs checkpoint every *k ≥ 1*
    /// slots.
    ZeroCheckpointInterval,
    /// The fault rate is not a probability in `[0, 1]`.
    FaultRateNotProbability(f64),
    /// The robust backend needs `f ≥ 1` faulty objects to tolerate.
    RobustNeedsFaultyObjects,
    /// No construction in the paper tolerates this fault kind
    /// (Theorem 4 territory) — refusing to build a store on nothing.
    IntolerableKind(ff_spec::FaultKind),
    /// Silent faults need a finite per-object budget `t` (unbounded
    /// silent faults admit nontermination — experiment E8).
    SilentNeedsFiniteBudget,
    /// Durability is on but `group_commit` is 0 — fsync batches hold at
    /// least one record.
    ZeroGroupCommit,
    /// The crash/recover process-fault model requires durability: a
    /// process that loses volatile state can only rejoin by replaying a
    /// write-ahead log.
    CrashRecoverNeedsDurability,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoShards => write!(f, "a store needs at least one shard"),
            ConfigError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be at least 1 slot")
            }
            ConfigError::FaultRateNotProbability(r) => {
                write!(f, "fault rate must be a probability in [0, 1], got {r}")
            }
            ConfigError::RobustNeedsFaultyObjects => {
                write!(f, "the robust backend needs f >= 1 faulty objects")
            }
            ConfigError::IntolerableKind(kind) => {
                write!(f, "no construction in the paper tolerates {kind:?} faults")
            }
            ConfigError::SilentNeedsFiniteBudget => write!(
                f,
                "silent faults need a finite per-object budget t (see experiment E8)"
            ),
            ConfigError::ZeroGroupCommit => {
                write!(f, "group commit must cover at least one record per fsync")
            }
            ConfigError::CrashRecoverNeedsDurability => write!(
                f,
                "the crash/recover fault model needs durability (a data dir) to recover from"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`StoreConfig`]: named knobs instead of field soup, and
/// validation errors instead of panics.
#[derive(Clone, Debug)]
pub struct StoreConfigBuilder {
    config: StoreConfig,
}

impl StoreConfigBuilder {
    /// Number of shards (each with its own log and cell factory).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// The consensus backend every shard runs on.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// The full fault environment (kind, `(f, t)` budget, initial rate).
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = fault;
        self
    }

    /// Initial fault probability per CAS operation (keeps the rest of
    /// the fault environment as configured).
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.config.fault.rate = rate;
        self
    }

    /// Rotate fault kinds across shards (overriding → silent →
    /// arbitrary).
    pub fn rotate_kinds(mut self, rotate: bool) -> Self {
        self.config.rotate_kinds = rotate;
        self
    }

    /// Checkpoint interval in log slots (bounds each shard's retained
    /// log).
    pub fn checkpoint_interval(mut self, interval: usize) -> Self {
        self.config.checkpoint_interval = interval;
        self
    }

    /// Route operations through the per-shard flat-combining cores
    /// (batched log appends + wait-free read snapshots); see
    /// [`StoreConfig::combining`].
    pub fn combining(mut self, on: bool) -> Self {
        self.config.combining = on;
        self
    }

    /// Combiner crash recovery on or off; see
    /// [`StoreConfig::combiner_lease`].
    pub fn combiner_lease(mut self, on: bool) -> Self {
        self.config.combiner_lease = on;
        self
    }

    /// Polls before the lease rule reclaims a `CLAIMED` op; see
    /// [`StoreConfig::reclaim_after`].
    pub fn reclaim_after(mut self, polls: u32) -> Self {
        self.config.reclaim_after = polls;
        self
    }

    /// Seed for all deterministic fault streams and routing salts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The full durability configuration (data dir + group commit);
    /// see [`DurabilityConfig`].
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.config.durability = durability;
        self
    }

    /// Turn durability on: write-ahead log every shard into `dir`
    /// (keeps the configured group commit).
    pub fn data_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.durability.data_dir = Some(dir.into());
        self
    }

    /// Decided records per fsync; see [`DurabilityConfig::group_commit`].
    pub fn group_commit(mut self, records: usize) -> Self {
        self.config.durability.group_commit = records;
        self
    }

    /// Extra reclaimable WAL bytes required before a checkpoint
    /// rotation ([`DurabilityConfig::rotate_cost`]); 0 makes rotation
    /// deterministic at every worthwhile boundary, which tests want.
    pub fn rotate_cost(mut self, bytes: usize) -> Self {
        self.config.durability.rotate_cost = bytes;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<StoreConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One shard: a log over its cell factory.
struct Shard {
    log: Arc<UniversalLog>,
    stats: Arc<EnsembleStats>,
    knob: Arc<FaultKnob>,
    kind_label: &'static str,
}

/// The flat-combining layer: one core per shard plus the store-wide
/// counters, shared by every combining client via `Arc`.
struct CombineLayer {
    cores: Vec<combine::ShardCore>,
    stats: Arc<CombineStats>,
}

/// The durability layer: the shared media, one WAL writer per shard,
/// and the store-wide WAL counters.
struct WalLayer {
    wals: Vec<Arc<wal::ShardWal>>,
    stats: Arc<wal::WalStats>,
}

/// The sharded store. Create one [`StoreClient`] per worker thread.
pub struct Store {
    shards: Vec<Shard>,
    config: StoreConfig,
    next_pid: AtomicU64,
    combine: Option<Arc<CombineLayer>>,
    wal: Option<WalLayer>,
}

/// The fault environment shard `kind` receives under `rotate_kinds`:
/// the configured budget with the rotated-in kind, and a small finite
/// default budget when silent rotates in (E8: unbounded silent faults
/// admit nontermination).
fn rotated_fault(fault: &FaultConfig, kind: ff_spec::FaultKind) -> FaultConfig {
    let mut fault = fault.clone();
    fault.kind = kind;
    if fault.kind == ff_spec::FaultKind::Silent && !matches!(fault.t, ff_spec::Bound::Finite(_)) {
        fault.t = ff_spec::Bound::Finite(8);
    }
    fault
}

fn kind_label(kind: ff_spec::FaultKind) -> &'static str {
    match kind {
        ff_spec::FaultKind::Overriding => "overriding",
        ff_spec::FaultKind::Silent => "silent",
        ff_spec::FaultKind::Invisible => "invisible",
        ff_spec::FaultKind::Arbitrary => "arbitrary",
        ff_spec::FaultKind::Nonresponsive => "nonresponsive",
    }
}

impl Store {
    /// Build a **fresh** store per `config`. With durability on, the
    /// data dir is created and any stale WAL files in it are truncated
    /// (start from a dir you want replayed via [`Store::recover`]
    /// instead). Panics on an invalid configuration or a WAL I/O
    /// failure — build configs through [`StoreConfig::builder`] to get
    /// a [`ConfigError`], and use [`Store::recover`] for a `Result`.
    pub fn new(config: StoreConfig) -> Self {
        Self::open(config, None, false)
            .map(|(store, _)| store)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Store::new`] but over an injected [`WalMedia`] (the DST's
    /// simulated disk), returning errors instead of panicking. The
    /// media's existing files are truncated.
    pub fn new_with_media(
        config: StoreConfig,
        media: Arc<dyn WalMedia>,
    ) -> Result<Self, RecoverError> {
        Self::open(config, Some(media), false).map(|(store, _)| store)
    }

    /// Recover a store from the WAL files in `config`'s data dir: per
    /// shard, load the newest valid checkpoint snapshot, replay the log
    /// tail op-by-op through real consensus cells, truncate any torn or
    /// corrupt tail, and rewrite the compacted image. See [`recover`].
    pub fn recover(config: StoreConfig) -> Result<(Self, RecoveryReport), RecoverError> {
        Self::open(config, None, true).map(|(store, report)| (store, report.expect("recovering")))
    }

    /// [`Store::recover`] over an injected [`WalMedia`] (the DST's
    /// simulated disk).
    pub fn recover_with_media(
        config: StoreConfig,
        media: Arc<dyn WalMedia>,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        Self::open(config, Some(media), true)
            .map(|(store, report)| (store, report.expect("recovering")))
    }

    /// The one construction path: build the shards, then (durability
    /// on) either truncate the WAL files fresh or replay them, attach
    /// the per-shard WAL sinks, and only then build the combining layer
    /// — recovery must finish before any replica handle exists, because
    /// the recovered snapshot installs into an untouched log.
    fn open(
        config: StoreConfig,
        media: Option<Arc<dyn WalMedia>>,
        recovering: bool,
    ) -> Result<(Self, Option<RecoveryReport>), RecoverError> {
        config.validate().map_err(RecoverError::Config)?;
        if recovering && !config.durability.enabled() && media.is_none() {
            return Err(RecoverError::DurabilityDisabled);
        }
        let shards: Vec<Shard> = (0..config.shards)
            .map(|s| {
                // Rotation walks the substrate's own injected kinds —
                // a substrate that injects nothing keeps the configured
                // environment (which it ignores anyway).
                let rotation = config.backend.injected_kinds();
                let fault = if config.rotate_kinds && !rotation.is_empty() {
                    rotated_fault(&config.fault, rotation[s % rotation.len()])
                } else {
                    config.fault.clone()
                };
                let cells = ShardCells::new(
                    config.backend.clone(),
                    fault,
                    splitmix64(config.seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let stats = cells.stats();
                let knob = cells.knob();
                let kind_label = kind_label(cells.fault_kind());
                let log = Arc::new(
                    UniversalLog::new(Arc::new(cells)).checkpoint_every(config.checkpoint_interval),
                );
                Shard {
                    log,
                    stats,
                    knob,
                    kind_label,
                }
            })
            .collect();
        // Durability: open (or accept) the media, replay or truncate
        // each shard's WAL, and attach the writers as slot sinks. This
        // happens before the combining layer below because recovery
        // installs snapshots into logs that must not have replica
        // handles yet.
        let mut report = None;
        let wal_layer = if media.is_some() || config.durability.enabled() {
            let media: Arc<dyn WalMedia> = match media {
                Some(m) => m,
                None => {
                    let dir = config
                        .durability
                        .data_dir
                        .as_ref()
                        .expect("durability enabled without media requires a data dir");
                    Arc::new(FsMedia::open(dir)?)
                }
            };
            let stats = Arc::new(wal::WalStats::default());
            let wals: Vec<Arc<wal::ShardWal>> = (0..shards.len())
                .map(|s| {
                    Arc::new(wal::ShardWal::new(
                        Arc::clone(&media),
                        s,
                        config.durability.group_commit,
                        config.durability.rotate_cost,
                        Arc::clone(&stats),
                    ))
                })
                .collect();
            if recovering {
                let mut outcomes = Vec::with_capacity(shards.len());
                for (s, (sh, w)) in shards.iter().zip(&wals).enumerate() {
                    let recovered = recover::recover_shard(
                        &sh.log,
                        s,
                        &media,
                        &stats,
                        config.checkpoint_interval,
                    )?;
                    w.reset_from_recovery(recovered.ckpt_frame, recovered.tail_frames)?;
                    outcomes.push(recovered.outcome);
                }
                report = Some(RecoveryReport { shards: outcomes });
            } else {
                // Fresh store: truncate whatever a previous run left in
                // the dir, so stale records cannot trail new ones.
                for w in &wals {
                    w.reset_from_recovery(None, Vec::new())?;
                }
            }
            for (sh, w) in shards.iter().zip(&wals) {
                sh.log
                    .set_slot_sink(Arc::clone(w) as Arc<dyn ff_universal::SlotSink>);
            }
            Some(WalLayer { wals, stats })
        } else {
            None
        };
        // The combining cores replay like one more client: every log
        // record the store appends in combining mode is announced under
        // this single shared pid, so it is minted first, ahead of any
        // client pid.
        let combine = config.combining.then(|| {
            let stats = Arc::new(CombineStats::default());
            Arc::new(CombineLayer {
                cores: shards
                    .iter()
                    .enumerate()
                    .map(|(s, sh)| {
                        combine::ShardCore::new(
                            s,
                            Arc::clone(&sh.log),
                            0,
                            Arc::clone(&stats),
                            config.combiner_lease,
                            config.reclaim_after,
                        )
                    })
                    .collect(),
                stats,
            })
        });
        Ok((
            Store {
                shards,
                config,
                next_pid: AtomicU64::new(if combine.is_some() { 1 } else { 0 }),
                combine,
                wal: wal_layer,
            },
            report,
        ))
    }

    /// Force-fsync every shard's pending WAL records (call at shutdown
    /// or before inspecting the on-disk image; group commit otherwise
    /// defers the sync).
    pub fn flush_wal(&self) {
        if let Some(layer) = &self.wal {
            for w in &layer.wals {
                w.flush();
            }
        }
    }

    /// The first WAL I/O failure any shard hit, if durability is on.
    /// A store returning `Some` here has **stopped logging** — callers
    /// must refuse to continue rather than silently run volatile.
    pub fn durability_error(&self) -> Option<WalIoError> {
        self.wal
            .as_ref()
            .and_then(|layer| layer.wals.iter().find_map(|w| w.error()))
    }

    /// WAL counters for metrics export, or `None` when durability is
    /// off.
    pub fn durability_snapshot(&self) -> Option<DurabilitySnapshot> {
        self.wal.as_ref().map(|layer| layer.stats.snapshot())
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` routes to.
    pub fn shard_of(&self, key: u32) -> usize {
        (splitmix64(key as u64) % self.shards.len() as u64) as usize
    }

    /// The live fault-rate knob of shard `s`.
    pub fn fault_knob(&self, s: usize) -> Arc<FaultKnob> {
        Arc::clone(&self.shards[s].knob)
    }

    /// The injected fault kind label of shard `s`.
    pub fn fault_kind_label(&self, s: usize) -> &'static str {
        self.shards[s].kind_label
    }

    /// Shard `s`'s log (for checkpoint/retention inspection).
    pub fn shard_log(&self, s: usize) -> &Arc<UniversalLog> {
        &self.shards[s].log
    }

    /// Largest retained (non-truncated) log length across shards — the
    /// number the checkpoint protocol keeps bounded.
    pub fn max_retained_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.log.retained_len())
            .max()
            .unwrap_or(0)
    }

    /// Per-shard fault accounting for a metrics snapshot.
    pub fn shard_faults(&self) -> Vec<ShardFaults> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let per_object = s.stats.all();
                ShardFaults {
                    shard: i,
                    kind: if self.config.backend.injects_faults() {
                        s.kind_label.to_string()
                    } else {
                        "none".to_string()
                    },
                    cas_ops: per_object.iter().map(|o| o.ops).sum(),
                    attempted: per_object.iter().map(|o| o.attempted_faults).sum(),
                    observable: per_object.iter().map(|o| o.observable_faults).sum(),
                    faulty_objects: s.stats.faulty_object_count(),
                }
            })
            .collect()
    }

    /// A new client (one per worker thread). Each client is a full
    /// replica set: one log handle per shard.
    ///
    /// Panics when the pid space is exhausted; callers that mint
    /// clients on behalf of untrusted input (a network server, say)
    /// should use [`Store::try_client`] instead.
    pub fn client(&self) -> StoreClient {
        self.try_client()
            .expect("operation ids carry 10-bit pids: at most 1023 clients")
    }

    /// Like [`Store::client`], but returns `None` once the 10-bit pid
    /// space is exhausted instead of panicking. Pid 1023 is reserved
    /// for the fresh observer [`Store::verify`] spins up, so at most
    /// 1023 clients can be minted per store.
    pub fn try_client(&self) -> Option<StoreClient> {
        if let Some(layer) = &self.combine {
            // Combining clients never append under their own pid —
            // every record is announced by the shared cores' pid — so
            // the 10-bit pid space no longer caps the client count, and
            // clients hold no private replicas whose watermarks could
            // stall checkpoint truncation.
            let slots = layer.cores.iter().map(|core| core.register()).collect();
            return Some(StoreClient {
                handles: Vec::new(),
                combined: Some(CombinedView {
                    layer: Arc::clone(layer),
                    slots,
                }),
            });
        }
        let pid = self
            .next_pid
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |pid| {
                (pid < 1023).then_some(pid + 1)
            })
            .ok()?;
        Some(StoreClient {
            handles: self
                .shards
                .iter()
                .map(|s| Handle::new(Arc::clone(&s.log), pid as u16, KvMap::default()))
                .collect(),
            combined: None,
        })
    }

    /// Counters of the combining layer, or `None` when the store was
    /// built with `combining(false)`.
    pub fn combine_snapshot(&self) -> Option<CombineSnapshot> {
        self.combine.as_ref().map(|layer| layer.stats.snapshot())
    }

    #[cfg(test)]
    pub(crate) fn shard_core_for_tests(&self, s: usize) -> &combine::ShardCore {
        &self.combine.as_ref().expect("combining store").cores[s]
    }

    /// Catch every replica of `clients` up to the end of each shard's
    /// log and check cross-replica consistency shard by shard. Call
    /// with no writers running; the clients stay usable afterwards, so
    /// soak loops can verify mid-run without rebuilding them.
    pub fn verify(&self, clients: &mut [StoreClient]) -> ConsistencyReport {
        // Catch up repeatedly until a full pass applies nothing: a
        // catch-up can itself decide a trailing undecided cell (with an
        // inert dummy), which other replicas then have to observe.
        loop {
            let mut applied = 0;
            for c in clients.iter_mut() {
                for h in c.handles.iter_mut() {
                    applied += h.catch_up();
                }
            }
            if let Some(layer) = &self.combine {
                for core in &layer.cores {
                    applied += core.catch_up();
                }
            }
            if applied == 0 {
                break;
            }
        }
        let per_shard = (0..self.shards.len())
            .map(|s| {
                let log = &self.shards[s].log;
                // Combining clients hold no private replicas; the
                // shared core replica stands in for them (`core_ok`).
                let handles: Vec<&Handle<KvMap>> = clients
                    .iter()
                    .filter(|c| !c.handles.is_empty())
                    .map(|c| &c.handles[s])
                    .collect();
                let digests: Vec<&[(usize, u64)]> =
                    handles.iter().map(|h| h.boundary_digests()).collect();
                let digests_ok = digests_consistent(&digests);
                let states_ok = handles.windows(2).all(|w| w[0].state() == w[1].state());
                // A fresh observer replays snapshot + retained tail —
                // the recovery path a new replica would take.
                let mut observer = Handle::new(Arc::clone(log), 1023, KvMap::default());
                observer.catch_up();
                let observer_ok = handles.is_empty()
                    || (observer.state() == handles[0].state()
                        && digests_consistent(&[
                            observer.boundary_digests(),
                            handles[0].boundary_digests(),
                        ]));
                // The shared core replica replayed the log live, the
                // observer replayed snapshot + retained tail: two
                // independent paths that must agree.
                let core_ok = match &self.combine {
                    Some(layer) => layer.cores[s].with_replica(|core| {
                        core.state() == observer.state()
                            && digests_consistent(&[
                                core.boundary_digests(),
                                observer.boundary_digests(),
                            ])
                    }),
                    None => true,
                };
                ShardConsistency {
                    shard: s,
                    consistent: digests_ok
                        && states_ok
                        && observer_ok
                        && core_ok
                        && !log.divergence_detected(),
                    divergence_flag: log.divergence_detected(),
                    end_slot: log.slots_created(),
                    retained_len: log.retained_len(),
                    truncated_prefix: log.truncated_prefix(),
                    checkpoints: log.checkpoints_installed(),
                    entries: observer.state().len(),
                }
            })
            .collect();
        ConsistencyReport { per_shard }
    }
}

/// A combining client's half of [`StoreClient`]: the shared layer plus
/// this client's registered announce slot on every shard core.
struct CombinedView {
    layer: Arc<CombineLayer>,
    slots: Vec<Arc<combine::Slot>>,
}

/// A worker's view of the store: one replica handle per shard — or, in
/// combining mode, one announce slot per shard core and no private
/// replicas at all.
pub struct StoreClient {
    handles: Vec<Handle<KvMap>>,
    combined: Option<CombinedView>,
}

/// An in-flight split-phase publication on one shard core (see
/// [`StoreClient::publish_to_shard`]). Tracks how many polls the owner
/// has spent, which is what arms the lease reclaim.
pub struct PendingCombined {
    shard: usize,
    polls: u32,
    n_ops: usize,
}

impl PendingCombined {
    /// The shard the unit was published to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Polls spent waiting so far.
    pub fn polls(&self) -> u32 {
        self.polls
    }
}

/// A claimed-but-not-yet-executed combine pass (see
/// [`StoreClient::combine_begin`]). Deliberately has no `Drop` cleanup:
/// abandoning a ticket leaves its claims `CLAIMED`, which is exactly
/// how a crashed combiner looks to everyone else.
pub struct CombineTicket {
    shard: usize,
    pass: combine::CombinePass,
}

impl CombineTicket {
    /// The shard this pass claimed on.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl Drop for StoreClient {
    fn drop(&mut self) {
        if let Some(cb) = &self.combined {
            for (core, slot) in cb.layer.cores.iter().zip(&cb.slots) {
                core.unregister(slot);
            }
        }
    }
}

impl StoreClient {
    fn shard_for(&self, key: u32) -> usize {
        let n = match &self.combined {
            Some(cb) => cb.layer.cores.len(),
            None => self.handles.len(),
        };
        (splitmix64(key as u64) % n as u64) as usize
    }

    /// Publish validated op words to shard `s`'s combining core and
    /// wait for a combiner (possibly this thread) to deliver.
    fn submit_combined(&self, s: usize, words: &[u64]) -> Result<Vec<u64>, StoreError> {
        let cb = self.combined.as_ref().expect("combining mode");
        cb.layer.cores[s]
            .submit(&cb.slots[s], words)
            .map_err(|shard| StoreError::Divergence { shard })
    }

    /// Invoke one validated operation on its shard, surfacing the
    /// shard's divergence evidence as an error instead of an answer
    /// replayed from a corrupted log.
    fn invoke_checked(&mut self, key: u32, op_word: u64) -> Result<Option<u32>, StoreError> {
        let s = self.shard_for(key);
        if self.combined.is_some() {
            let resps = self.submit_combined(s, &[op_word])?;
            return Ok(KvMap::decode_response(resps[0]));
        }
        let resp = self.handles[s].invoke(op_word);
        if self.handles[s].log().divergence_detected() {
            return Err(StoreError::Divergence { shard: s });
        }
        Ok(KvMap::decode_response(resp))
    }

    fn check_key(key: u32) -> Result<(), StoreError> {
        if key > KV_MAX {
            return Err(StoreError::KeyOutOfRange { key });
        }
        Ok(())
    }

    fn check_value(value: u32) -> Result<(), StoreError> {
        if value > KV_MAX {
            return Err(StoreError::ValueOutOfRange { value });
        }
        Ok(())
    }

    fn op_word(op: KvOp) -> Result<u64, StoreError> {
        Self::check_key(op.key())?;
        Ok(match op {
            KvOp::Get(k) => KvMap::get_op(k),
            KvOp::Put(k, v) => {
                Self::check_value(v)?;
                KvMap::put_op(k, v)
            }
            KvOp::Del(k) => KvMap::del_op(k),
        })
    }

    /// Whether this client routes through the flat-combining cores
    /// (and therefore supports the split-phase API below).
    pub fn is_combining(&self) -> bool {
        self.combined.is_some()
    }

    /// Split-phase API, step 1 — publish validated `ops` (all routing
    /// to shard `shard`) as one pending unit on that shard's combining
    /// core, without blocking. At most one unit per shard may be in
    /// flight per client; drive it with [`StoreClient::poll_published`]
    /// and [`StoreClient::combine_begin`]/[`StoreClient::combine_finish`].
    /// This is the seam the deterministic simulator schedules through:
    /// every blocking wait in [`Kv`] is these primitives in a loop.
    pub fn publish_to_shard(
        &mut self,
        shard: usize,
        ops: &[KvOp],
    ) -> Result<PendingCombined, StoreError> {
        let words: Vec<u64> = ops
            .iter()
            .map(|&op| {
                if self.shard_for(op.key()) != shard {
                    return Err(StoreError::Protocol(format!(
                        "op on key {} does not route to shard {shard}",
                        op.key()
                    )));
                }
                Self::op_word(op)
            })
            .collect::<Result<_, _>>()?;
        if words.is_empty() {
            return Err(StoreError::Protocol("empty publication".to_string()));
        }
        let cb = self
            .combined
            .as_ref()
            .ok_or_else(|| StoreError::Protocol("not a combining store".to_string()))?;
        if cb.layer.cores[shard].in_flight(&cb.slots[shard]) {
            return Err(StoreError::Protocol(format!(
                "shard {shard} already has a unit in flight"
            )));
        }
        cb.layer.cores[shard].publish(&cb.slots[shard], &words);
        Ok(PendingCombined {
            shard,
            polls: 0,
            n_ops: words.len(),
        })
    }

    /// Split-phase API, step 2 — one non-blocking poll of an in-flight
    /// unit. Returns `Ok(Some(results))` when delivered (one entry per
    /// published op), `Ok(None)` while still pending or claimed, and
    /// `Err(Divergence)` when the shard's log holds divergence
    /// evidence. The owner-side lease reclaim is embedded here: past
    /// the configured bound, a still-`CLAIMED` unit is taken back from
    /// its dead or stalled combiner and republished.
    pub fn poll_published(
        &mut self,
        pending: &mut PendingCombined,
    ) -> Result<Option<Vec<Option<u32>>>, StoreError> {
        let cb = self
            .combined
            .as_ref()
            .ok_or_else(|| StoreError::Protocol("not a combining store".to_string()))?;
        let core = &cb.layer.cores[pending.shard];
        let waited = pending.polls;
        pending.polls = pending.polls.saturating_add(1);
        match core.poll(&cb.slots[pending.shard], waited) {
            combine::SlotPoll::Ready(words) => {
                debug_assert_eq!(words.len(), pending.n_ops);
                Ok(Some(
                    words.iter().map(|&w| KvMap::decode_response(w)).collect(),
                ))
            }
            combine::SlotPoll::Failed => Err(StoreError::Divergence {
                shard: pending.shard,
            }),
            combine::SlotPoll::Pending | combine::SlotPoll::Claimed => Ok(None),
        }
    }

    /// Split-phase API, step 3 — run the claim phase of a combine pass
    /// on `shard`. Returns `None` when the advisory combiner flag is
    /// held by someone else (`force` bypasses it — the takeover path a
    /// waiter escalates to when the flag's holder died) or when nothing
    /// was pending. **Dropping the ticket without
    /// [`StoreClient::combine_finish`] models a combiner crash**: the
    /// claims stay parked until their owners' lease reclaims fire.
    pub fn combine_begin(&mut self, shard: usize, force: bool) -> Option<CombineTicket> {
        let cb = self.combined.as_ref()?;
        cb.layer.cores[shard]
            .begin_combine(force)
            .map(|pass| CombineTicket { shard, pass })
    }

    /// Split-phase API, step 4 — seal, execute and distribute a claimed
    /// pass. Returns whether any ops were drained (claims reclaimed in
    /// the meantime drop out of the batch via the seal CAS).
    pub fn combine_finish(&mut self, ticket: CombineTicket) -> bool {
        let Some(cb) = self.combined.as_ref() else {
            return false;
        };
        cb.layer.cores[ticket.shard].finish_combine(ticket.pass)
    }

    /// The wait-free read snapshot, exposed for split-phase drivers:
    /// `None` when freshness is unprovable (fall back to the combined
    /// path), `Some(Err)` on divergence evidence. Returns `None` for
    /// non-combining clients.
    pub fn fast_read(&self, key: u32) -> Option<Result<Option<u32>, StoreError>> {
        let cb = self.combined.as_ref()?;
        let s = self.shard_for(key);
        cb.layer.cores[s]
            .fast_get(key)
            .map(|r| r.map_err(|shard| StoreError::Divergence { shard }))
    }

    /// This client's replica of shard `s` (for tests/verification).
    /// Panics for combining clients, which hold no private replicas.
    pub fn replica(&self, s: usize) -> &Handle<KvMap> {
        assert!(
            self.combined.is_none(),
            "combining clients hold no private replicas; inspect the shared core instead"
        );
        &self.handles[s]
    }
}

impl Kv for StoreClient {
    fn get(&mut self, key: u32) -> Result<Option<u32>, StoreError> {
        Self::check_key(key)?;
        if let Some(cb) = &self.combined {
            // Wait-free read fast path: answer from the shared core
            // replica when its applied index provably covers the
            // shard's observed tail; otherwise linearize through the
            // combined path like any other op.
            let s = self.shard_for(key);
            if let Some(fast) = cb.layer.cores[s].fast_get(key) {
                return fast.map_err(|shard| StoreError::Divergence { shard });
            }
        }
        self.invoke_checked(key, KvMap::get_op(key))
    }

    fn put(&mut self, key: u32, value: u32) -> Result<Option<u32>, StoreError> {
        Self::check_key(key)?;
        Self::check_value(value)?;
        self.invoke_checked(key, KvMap::put_op(key, value))
    }

    fn del(&mut self, key: u32) -> Result<Option<u32>, StoreError> {
        Self::check_key(key)?;
        self.invoke_checked(key, KvMap::del_op(key))
    }

    /// Stable-groups `ops` by destination shard, so each shard's log
    /// tail is replayed once per batch instead of once per operation
    /// (the grouping is what the network server exploits to turn one
    /// `BATCH` frame into one log pass per shard). Per-key order is
    /// preserved: a key always routes to one shard and the grouping is
    /// stable within a shard.
    fn batch(&mut self, ops: &[KvOp]) -> Result<Vec<Option<u32>>, StoreError> {
        // Validate everything up front: a batch either runs or is
        // rejected whole, never left half-applied by a bad trailing op.
        let words: Vec<u64> = ops
            .iter()
            .map(|&op| Self::op_word(op))
            .collect::<Result<_, _>>()?;
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| self.shard_for(ops[i].key()));
        let mut out = vec![None; ops.len()];
        if self.combined.is_some() {
            // One pending unit per destination shard: the whole group
            // rides a single combine pass (often merged with other
            // clients' groups into one decided log slot).
            let mut i = 0;
            while i < order.len() {
                let s = self.shard_for(ops[order[i]].key());
                let mut j = i;
                while j < order.len() && self.shard_for(ops[order[j]].key()) == s {
                    j += 1;
                }
                let group: Vec<u64> = order[i..j].iter().map(|&k| words[k]).collect();
                let resps = self.submit_combined(s, &group)?;
                for (&k, &r) in order[i..j].iter().zip(resps.iter()) {
                    out[k] = KvMap::decode_response(r);
                }
                i = j;
            }
            return Ok(out);
        }
        for i in order {
            out[i] = self.invoke_checked(ops[i].key(), words[i])?;
        }
        Ok(out)
    }
}

/// Consistency verdict for one shard.
#[derive(Clone, Debug)]
pub struct ShardConsistency {
    /// Shard index.
    pub shard: usize,
    /// All replicas agree (digests, states, fresh-observer replay) and
    /// the log saw no divergence evidence.
    pub consistent: bool,
    /// The log's own divergence flag (broken-cell evidence).
    pub divergence_flag: bool,
    /// Log head at verification time.
    pub end_slot: usize,
    /// Cells still held in memory.
    pub retained_len: usize,
    /// Slots freed by checkpoint truncation.
    pub truncated_prefix: usize,
    /// Snapshots installed.
    pub checkpoints: u64,
    /// Map entries at the end.
    pub entries: usize,
}

/// The store-wide verification outcome.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// One verdict per shard.
    pub per_shard: Vec<ShardConsistency>,
}

impl ConsistencyReport {
    /// Did every shard verify consistent?
    pub fn all_consistent(&self) -> bool {
        self.per_shard.iter().all(|s| s.consistent)
    }

    /// Shards that failed verification.
    pub fn diverged_shards(&self) -> Vec<usize> {
        self.per_shard
            .iter()
            .filter(|s| !s.consistent)
            .map(|s| s.shard)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_store_round_trip() {
        let store = Store::new(
            StoreConfig::builder()
                .shards(4)
                .backend(Backend::reliable())
                .build()
                .unwrap(),
        );
        let mut c = store.client();
        assert_eq!(c.put(1, 10).unwrap(), None);
        assert_eq!(c.put(1, 20).unwrap(), Some(10));
        assert_eq!(c.get(1).unwrap(), Some(20));
        assert_eq!(c.del(1).unwrap(), Some(20));
        assert_eq!(c.get(1).unwrap(), None);
        assert!(store.verify(&mut [c]).all_consistent());
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(
            StoreConfig::builder().shards(0).build(),
            Err(ConfigError::NoShards)
        );
        assert_eq!(
            StoreConfig::builder().checkpoint_interval(0).build(),
            Err(ConfigError::ZeroCheckpointInterval)
        );
        assert_eq!(
            StoreConfig::builder().fault_rate(1.5).build(),
            Err(ConfigError::FaultRateNotProbability(1.5))
        );
        assert_eq!(
            StoreConfig::builder()
                .fault(FaultConfig {
                    kind: ff_spec::FaultKind::Invisible,
                    ..FaultConfig::default()
                })
                .build(),
            Err(ConfigError::IntolerableKind(ff_spec::FaultKind::Invisible))
        );
        assert_eq!(
            StoreConfig::builder()
                .fault(FaultConfig {
                    kind: ff_spec::FaultKind::Silent,
                    ..FaultConfig::default()
                })
                .build(),
            Err(ConfigError::SilentNeedsFiniteBudget)
        );
        // Rotation replaces the kind per shard, so the same silent
        // environment becomes valid under rotate_kinds.
        assert!(StoreConfig::builder()
            .fault(FaultConfig {
                kind: ff_spec::FaultKind::Silent,
                ..FaultConfig::default()
            })
            .rotate_kinds(true)
            .build()
            .is_ok());
        // The naive backend skips robust-only constraints.
        assert!(StoreConfig::builder()
            .backend(Backend::naive())
            .fault(FaultConfig {
                kind: ff_spec::FaultKind::Invisible,
                ..FaultConfig::default()
            })
            .build()
            .is_ok());
    }

    #[test]
    fn kv_validation_errors_instead_of_panics() {
        let store = Store::new(
            StoreConfig::builder()
                .shards(2)
                .backend(Backend::reliable())
                .build()
                .unwrap(),
        );
        let mut c = store.client();
        assert_eq!(
            c.get(KV_MAX + 1),
            Err(StoreError::KeyOutOfRange { key: KV_MAX + 1 })
        );
        assert_eq!(
            c.put(3, KV_MAX + 7),
            Err(StoreError::ValueOutOfRange { value: KV_MAX + 7 })
        );
        // A rejected batch applies nothing, even before the bad op.
        assert_eq!(
            c.batch(&[KvOp::Put(1, 1), KvOp::Put(KV_MAX + 1, 2)]),
            Err(StoreError::KeyOutOfRange { key: KV_MAX + 1 })
        );
        assert_eq!(c.get(1).unwrap(), None);
    }

    #[test]
    fn batch_preserves_per_key_order_and_original_indices() {
        let store = Store::new(
            StoreConfig::builder()
                .shards(4)
                .backend(Backend::reliable())
                .build()
                .unwrap(),
        );
        let mut c = store.client();
        let ops: Vec<KvOp> = (0..32u32)
            .flat_map(|k| [KvOp::Put(k, k + 100), KvOp::Put(k, k + 200), KvOp::Get(k)])
            .collect();
        let out = c.batch(&ops).unwrap();
        for k in 0..32u32 {
            let base = (k as usize) * 3;
            assert_eq!(out[base], None, "first put of fresh key {k}");
            assert_eq!(out[base + 1], Some(k + 100), "second put sees the first");
            assert_eq!(out[base + 2], Some(k + 200), "get sees the second");
        }
        assert!(store.verify(&mut [c]).all_consistent());
    }

    #[test]
    fn try_client_refuses_rather_than_colliding_with_the_observer() {
        let store = Store::new(
            StoreConfig::builder()
                .shards(1)
                .backend(Backend::reliable())
                .build()
                .unwrap(),
        );
        // The 10-bit pid space holds 1024 ids; pid 1023 belongs to the
        // fresh observer `verify` spins up, so exactly 1023 clients can
        // be minted — and the next mint is a refusal, not a panic.
        let mut clients: Vec<StoreClient> = Vec::new();
        while let Some(c) = store.try_client() {
            clients.push(c);
        }
        assert_eq!(clients.len(), 1023);
        assert!(store.try_client().is_none());
        let mut last = clients.pop().unwrap();
        assert_eq!(last.put(7, 70).unwrap(), None);
        assert_eq!(last.get(7).unwrap(), Some(70));
        clients.push(last);
        assert!(store.verify(&mut clients[1020..]).all_consistent());
    }

    #[test]
    fn keys_spread_across_shards() {
        let store = Store::new(
            StoreConfig::builder()
                .shards(8)
                .backend(Backend::reliable())
                .build()
                .unwrap(),
        );
        let mut hit = [false; 8];
        for key in 0..64 {
            hit[store.shard_of(key)] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 keys missed some of 8 shards");
    }

    #[test]
    fn concurrent_clients_stay_consistent_under_faults() {
        let store = Arc::new(Store::new(
            StoreConfig::builder()
                .shards(4)
                .backend(Backend::robust())
                .rotate_kinds(true)
                .checkpoint_interval(16)
                .build()
                .unwrap(),
        ));
        let mut clients: Vec<StoreClient> = std::thread::scope(|scope| {
            (0..4u32)
                .map(|w| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        let mut c = store.client();
                        for i in 0..200u32 {
                            let key = (w * 1000 + i) % 97;
                            match i % 3 {
                                0 => {
                                    c.put(key, i).unwrap();
                                }
                                1 => {
                                    c.get(key).unwrap();
                                }
                                _ => {
                                    c.del(key).unwrap();
                                }
                            }
                        }
                        c
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let report = store.verify(&mut clients);
        assert!(
            report.all_consistent(),
            "diverged shards: {:?}",
            report.diverged_shards()
        );
        // Faults actually flowed.
        let total: u64 = store.shard_faults().iter().map(|f| f.observable).sum();
        assert!(total > 0, "no observable faults at rate 0.2");
        // Checkpoints actually truncated.
        assert!(report.per_shard.iter().any(|s| s.truncated_prefix > 0));
    }

    #[test]
    fn naive_backend_diverges_under_heavy_faults() {
        let mut diverged = false;
        for seed in 0..20 {
            let store = Arc::new(Store::new(
                StoreConfig::builder()
                    .shards(1)
                    .backend(Backend::naive())
                    .fault_rate(1.0)
                    .checkpoint_interval(8)
                    .seed(seed)
                    .build()
                    .unwrap(),
            ));
            let mut clients: Vec<StoreClient> = std::thread::scope(|scope| {
                (0..3u32)
                    .map(|w| {
                        let store = Arc::clone(&store);
                        scope.spawn(move || {
                            let mut c = store.client();
                            for i in 0..40 {
                                // Divergence may surface as an error
                                // mid-run; the verdict below is what
                                // this test asserts on.
                                let _ = c.put((w * 100 + i) % 50, i);
                            }
                            c
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            if !store.verify(&mut clients).all_consistent() {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "naive backend never diverged at 100% fault rate");
    }

    #[test]
    fn runtime_knob_turns_faults_off() {
        let store = Store::new(
            StoreConfig::builder()
                .shards(1)
                .backend(Backend::robust())
                .fault(FaultConfig {
                    // Arbitrary: observable even on matching CASes — a
                    // lone sequential client never mismatches, and an
                    // overriding fault on a match is refunded as
                    // indistinguishable.
                    kind: ff_spec::FaultKind::Arbitrary,
                    rate: 1.0,
                    ..FaultConfig::default()
                })
                .build()
                .unwrap(),
        );
        let mut c = store.client();
        for i in 0..20 {
            c.put(i, i).unwrap();
        }
        let before = store.shard_faults()[0].observable;
        assert!(before > 0);
        store.fault_knob(0).set_rate(0.0);
        let attempted_before = store.shard_faults()[0].attempted;
        for i in 0..20 {
            c.put(i, i + 1).unwrap();
        }
        assert_eq!(
            store.shard_faults()[0].attempted,
            attempted_before,
            "knob at 0.0 still attempted faults"
        );
        assert!(store.verify(&mut [c]).all_consistent());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::kv::{Kv, KvOp};
    use proptest::prelude::*;

    fn kv_op() -> impl Strategy<Value = KvOp> {
        // Key and value ride one draw: key = x % 64, value = x / 64.
        prop_oneof![
            (0u64..64_000).prop_map(|x| KvOp::Put((x % 64) as u32, (x / 64) as u32)),
            (0u64..64).prop_map(|x| KvOp::Get(x as u32)),
            (0u64..64).prop_map(|x| KvOp::Del(x as u32)),
        ]
    }

    /// Sequential KV semantics: what any correct `batch` must return.
    fn model_results(ops: &[KvOp]) -> Vec<Option<u32>> {
        let mut model = std::collections::HashMap::new();
        ops.iter()
            .map(|&op| match op {
                KvOp::Put(k, v) => model.insert(k, v),
                KvOp::Get(k) => model.get(&k).copied(),
                KvOp::Del(k) => model.remove(&k),
            })
            .collect()
    }

    // The combined `batch` path must preserve per-key order and return
    // the same results at the same original indices as the uncombined
    // path — and both must match plain sequential map semantics — under
    // every backend. Naive runs at rate 0 (its faults are not
    // tolerated; the detection test lives in `combine::tests`), robust
    // at a tolerated 0.3.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn combined_batch_matches_uncombined_on_every_backend(
            ops in proptest::collection::vec(kv_op(), 1..60),
            seed in 0u64..1000,
        ) {
            for backend in & [Backend::reliable(), Backend::robust(), Backend::naive()] {
                let run = |combining: bool| -> Vec<Option<u32>> {
                    let rate = if *backend == Backend::robust() { 0.3 } else { 0.0 };
                    let store = Store::new(
                        StoreConfig::builder()
                            .shards(4)
                            .backend(backend.clone())
                            .fault_rate(rate)
                            .combining(combining)
                            .checkpoint_interval(16)
                            .seed(seed)
                            .build()
                            .unwrap(),
                    );
                    let mut c = store.client();
                    let out = c.batch(&ops).unwrap();
                    assert!(
                        store.verify(&mut [c]).all_consistent(),
                        "inconsistent shards (combining={combining}, {backend:?})"
                    );
                    out
                };
                let combined = run(true);
                let uncombined = run(false);
                prop_assert_eq!(&combined, &uncombined, "combined != uncombined ({:?})", backend);
                prop_assert_eq!(&combined, &model_results(&ops), "lost per-key order ({:?})", backend);
            }
        }
    }
}
