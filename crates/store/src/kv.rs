//! The unified client API: one [`Kv`] trait for every way of reaching
//! a store.
//!
//! [`StoreClient`](crate::StoreClient) (in-process replica set) and
//! `ff-net`'s `NetClient` (TCP) both implement [`Kv`], so the soak
//! harness, the experiments and the network bench drive *one* workload
//! loop and swap the transport underneath. The trait's contract is
//! deliberately stricter than the old bare-`Option` methods:
//!
//! * Keys and values are validated (28-bit, [`KV_MAX`](crate::KV_MAX))
//!   and rejected with [`StoreError::KeyOutOfRange`] /
//!   [`StoreError::ValueOutOfRange`] instead of panicking — a remote
//!   caller must not be able to abort the server.
//! * Divergence is an **error, not a wrong answer**: every operation
//!   checks the touched shard's divergence evidence (broken consensus
//!   cells, foreign boundary decisions, digest mismatches) and returns
//!   [`StoreError::Divergence`] rather than a value replayed from a
//!   corrupted log. This is the paper's validity property surfaced at
//!   the API: a client of a robust-backend store never sees it; a
//!   client of the naive backend under faults does.
//! * [`Kv::batch`] executes many operations per call. Implementations
//!   group same-shard operations so each shard's log is traversed once
//!   per batch (and, over TCP, the whole batch is one round trip).
//!   Operations on the *same key* keep their relative order; operations
//!   on different shards may interleave differently than written.

use std::fmt;

/// One operation of a [`Kv::batch`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get(u32),
    /// Write `key → value`.
    Put(u32, u32),
    /// Remove a key.
    Del(u32),
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(&self) -> u32 {
        match *self {
            KvOp::Get(k) | KvOp::Put(k, _) | KvOp::Del(k) => k,
        }
    }
}

/// Everything a [`Kv`] operation can fail with — local validation,
/// divergence evidence, or (for remote clients) transport and protocol
/// failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The touched shard's log holds divergence evidence: its consensus
    /// cells stopped being consensus (naive backend under faults), so
    /// any answer replayed from it could be wrong. Robust backends
    /// within their `(f, t)` envelope never produce this.
    Divergence {
        /// The shard whose log diverged.
        shard: usize,
    },
    /// The key does not fit the store's 28-bit key space.
    KeyOutOfRange {
        /// The offending key.
        key: u32,
    },
    /// The value does not fit the store's 28-bit value space.
    ValueOutOfRange {
        /// The offending value.
        value: u32,
    },
    /// A transport-level failure (connect, read, write, timeout).
    Io(String),
    /// The peer violated the wire protocol (bad frame, wrong request
    /// id, unexpected response type).
    Protocol(String),
    /// The server refused or failed the request; `code` is the wire
    /// error code.
    Server {
        /// Wire-level error code.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Divergence { shard } => {
                write!(
                    f,
                    "shard {shard} diverged: consensus cells broke; refusing to answer"
                )
            }
            StoreError::KeyOutOfRange { key } => {
                write!(f, "key {key} exceeds the 28-bit key space")
            }
            StoreError::ValueOutOfRange { value } => {
                write!(f, "value {value} exceeds the 28-bit value space")
            }
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Protocol(e) => write!(f, "protocol violation: {e}"),
            StoreError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// The unified key-value client interface: linearizable `get`/`put`/
/// `del`/`batch` over a sharded, replicated, fault-audited store —
/// whether the store is in this process or across a socket.
pub trait Kv {
    /// Read `key` (linearized through its shard's log).
    fn get(&mut self, key: u32) -> Result<Option<u32>, StoreError>;

    /// Write `key → value`; returns the previous value.
    fn put(&mut self, key: u32, value: u32) -> Result<Option<u32>, StoreError>;

    /// Remove `key`; returns the removed value.
    fn del(&mut self, key: u32) -> Result<Option<u32>, StoreError>;

    /// Execute `ops`, returning one response per operation in the
    /// *original* order. Same-shard operations are grouped so each
    /// shard's log is traversed once per batch; per-key order is
    /// preserved (a key always routes to one shard, and grouping is
    /// stable). The whole batch fails on the first error.
    fn batch(&mut self, ops: &[KvOp]) -> Result<Vec<Option<u32>>, StoreError>;
}
