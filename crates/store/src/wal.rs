//! Per-shard write-ahead log: the store's durability layer.
//!
//! Every shard appends its consensus-decided slots to one append-only
//! file (`shard-{s}.wal`), records first, fsync in **group commit**
//! batches ([`DurabilityConfig::group_commit`] decided records per
//! fsync), so the combining hot path keeps its throughput. Checkpoint
//! installs rotate the file: the new file starts with the checkpoint
//! record and keeps only the slot records the snapshot does not cover,
//! written tmp-file-then-rename so a crash mid-rotation leaves either
//! the old file or the new one, never a hybrid.
//!
//! # Record format
//!
//! Mirrors `wire.rs` discipline: length-prefixed, checksummed frames
//! with a **total** decoder — no input, torn, mutated, or malicious,
//! makes [`scan`] panic. Each frame is
//!
//! ```text
//! [len: u32 LE][checksum: u64 LE][body: len bytes]
//! ```
//!
//! where `checksum` is FNV-1a 64 over `body` and `body` starts with a
//! tag byte:
//!
//! ```text
//! 0x01 slot/single:  [tag][slot u64][opid u32][digest u64][word u64]
//! 0x02 slot/batch:   [tag][slot u64][opid u32][digest u64][count u32][count × word u64]
//! 0x03 checkpoint:   [tag][slot u64][digest u64][count u32][count × word u64]
//! ```
//!
//! `digest` is the log's rolling decided-opid digest *after* the slot
//! (or over the checkpoint's covered prefix) — recovery cross-checks it
//! record by record, so a consensus cell that mutates a re-ingested
//! decision is caught immediately. [`scan`] stops at the first bad
//! length, checksum, or malformed body and reports the valid prefix:
//! a torn tail (the expected crash artifact) simply truncates.
//!
//! # Media
//!
//! File I/O goes through the [`WalMedia`] trait so the deterministic
//! simulator can model a disk that survives `kill -9` (with seeded torn
//! writes at fsync boundaries) while production uses [`FsMedia`]. I/O
//! failures are **never swallowed**: the writer latches the first
//! [`WalIoError`], stops logging, and surfaces it through
//! [`Store::durability_error`](crate::Store::durability_error) — a
//! store that cannot persist refuses loudly instead of pretending.

use crate::metrics::Histogram;
use ff_universal::{SlotRecord, SlotSink};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame tag: a single-op decided slot.
const TAG_SLOT_SINGLE: u8 = 0x01;
/// Frame tag: a batch decided slot (one slot, many ops).
const TAG_SLOT_BATCH: u8 = 0x02;
/// Frame tag: an installed checkpoint snapshot.
const TAG_CHECKPOINT: u8 = 0x03;

/// Frame header: `[len u32][checksum u64]`.
const HEADER_LEN: usize = 12;

/// Upper bound on one record body — rejects absurd lengths from
/// corrupt headers before any allocation.
pub const MAX_RECORD_LEN: usize = 1 << 22;

/// FNV-1a 64 over a byte slice (the frame checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut d: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        d = (d ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    d
}

/// Durability knobs, part of [`StoreConfig`](crate::StoreConfig).
#[derive(Clone, Debug, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding one `shard-{s}.wal` per shard. `None` disables
    /// durability entirely (the pre-WAL in-memory store).
    pub data_dir: Option<PathBuf>,
    /// Decided records per write+fsync batch (group commit). 1 syncs
    /// every record; larger values amortize the syscalls over a batch
    /// at the cost of a longer unsynced tail lost on crash. Records are
    /// tens of bytes, so the default batches hundreds of them into one
    /// modest write.
    pub group_commit: usize,
    /// Extra reclaimable log bytes required — beyond the snapshot's own
    /// size — before a checkpoint boundary triggers a rotation. A
    /// rotation rewrites the whole file and costs two fsyncs however
    /// small the file is, so this models that fixed cost in byte units:
    /// 0 rotates at every boundary where the snapshot is no larger than
    /// the records it drops (deterministic, for tests); the default
    /// keeps rotations rare enough that replaying the longer tail on
    /// recovery is the cheaper side of the trade.
    pub rotate_cost: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            data_dir: None,
            group_commit: 512,
            rotate_cost: 256 * 1024,
        }
    }
}

impl DurabilityConfig {
    /// Durability on: log to `dir` with the default group commit.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: Some(dir.into()),
            ..DurabilityConfig::default()
        }
    }

    /// Is durability enabled?
    pub fn enabled(&self) -> bool {
        self.data_dir.is_some()
    }
}

/// A typed I/O failure on the WAL path: which operation, on which
/// file, and the OS error. Continue of PR 6's `ShutdownError` pattern —
/// fsync/open/rename failures become values, never `let _ =`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalIoError {
    /// The failed operation (`"open"`, `"append"`, `"fsync"`,
    /// `"rename"`, …).
    pub op: &'static str,
    /// The file (or directory) the operation targeted.
    pub path: String,
    /// The underlying error, stringified.
    pub detail: String,
}

impl std::fmt::Display for WalIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal {} on {}: {}", self.op, self.path, self.detail)
    }
}

impl std::error::Error for WalIoError {}

/// The WAL's storage backend: a flat namespace of append-only files.
/// Production is [`FsMedia`]; the DST substitutes an in-memory disk
/// with crash semantics (unsynced suffixes are lost, the last write may
/// tear).
pub trait WalMedia: Send + Sync {
    /// The full current contents of `name`, or `None` if it does not
    /// exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, WalIoError>;

    /// Append `bytes` to `name` (creating it if absent). Not durable
    /// until [`WalMedia::sync`].
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalIoError>;

    /// Make every append to `name` durable (fsync).
    fn sync(&self, name: &str) -> Result<(), WalIoError>;

    /// Atomically and durably replace `name`'s contents (write to a
    /// temp file, fsync, rename): after a crash, readers see either the
    /// old contents or the new — never a mix.
    fn replace(&self, name: &str, contents: &[u8]) -> Result<(), WalIoError>;
}

/// [`WalMedia`] over a real directory: one file per name, fsync via
/// `sync_data`, replace via tmp-file + rename + directory fsync.
pub struct FsMedia {
    dir: PathBuf,
    /// Cached append handles (reopened after a replace so appends go to
    /// the renamed-in file, not the unlinked old one).
    files: Mutex<std::collections::HashMap<String, std::fs::File>>,
}

impl FsMedia {
    /// Open (creating if needed) `dir` as a WAL directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WalIoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| WalIoError {
            op: "create-dir",
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(FsMedia {
            dir,
            files: Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// The directory this media writes into.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn with_handle<R>(
        &self,
        name: &str,
        op: &'static str,
        f: impl FnOnce(&std::fs::File) -> std::io::Result<R>,
    ) -> Result<R, WalIoError> {
        let mut files = self.files.lock();
        if !files.contains_key(name) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))
                .map_err(|e| WalIoError {
                    op: "open",
                    path: self.path(name).display().to_string(),
                    detail: e.to_string(),
                })?;
            files.insert(name.to_string(), file);
        }
        f(&files[name]).map_err(|e| WalIoError {
            op,
            path: self.path(name).display().to_string(),
            detail: e.to_string(),
        })
    }
}

impl WalMedia for FsMedia {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, WalIoError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(WalIoError {
                op: "read",
                path: self.path(name).display().to_string(),
                detail: e.to_string(),
            }),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalIoError> {
        use std::io::Write;
        self.with_handle(name, "append", |mut f| f.write_all(bytes))
    }

    fn sync(&self, name: &str) -> Result<(), WalIoError> {
        self.with_handle(name, "fsync", |f| f.sync_data())
    }

    fn replace(&self, name: &str, contents: &[u8]) -> Result<(), WalIoError> {
        let tmp = self.path(&format!("{name}.tmp"));
        let io = |op: &'static str, path: &std::path::Path, e: std::io::Error| WalIoError {
            op,
            path: path.display().to_string(),
            detail: e.to_string(),
        };
        std::fs::write(&tmp, contents).map_err(|e| io("write-tmp", &tmp, e))?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_data())
            .map_err(|e| io("fsync-tmp", &tmp, e))?;
        let dst = self.path(name);
        std::fs::rename(&tmp, &dst).map_err(|e| io("rename", &dst, e))?;
        // Make the rename itself durable (directory entry update).
        std::fs::File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io("fsync-dir", &self.dir, e))?;
        // Drop the cached append handle: it points at the unlinked old
        // inode.
        self.files.lock().remove(name);
        Ok(())
    }
}

/// One decoded WAL entry.
#[derive(Clone, Debug, PartialEq)]
pub enum WalEntry {
    /// A decided slot and its record.
    Slot {
        /// The log slot index.
        slot: usize,
        /// The decided operation id.
        opid: u32,
        /// The rolling decided-opid digest after applying this slot.
        digest_after: u64,
        /// The announced record the slot decided.
        record: SlotRecord,
    },
    /// An installed checkpoint snapshot covering slots `[0, slot)`.
    Checkpoint {
        /// First slot not covered by the snapshot.
        slot: usize,
        /// The rolling digest over the covered prefix.
        digest: u64,
        /// The `Replicated::encode_snapshot` words.
        words: Vec<u64>,
    },
}

/// What [`scan`] found: the decodable prefix plus how the file ends.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Every entry of the valid prefix, in file order.
    pub entries: Vec<WalEntry>,
    /// Bytes of the valid prefix (recovery truncates here).
    pub valid_len: usize,
    /// Bytes past the valid prefix (the torn or corrupt tail).
    pub torn_bytes: usize,
    /// Why the scan stopped early (`None` on a clean end-of-file).
    pub corrupt: Option<String>,
}

/// Decode as much of `bytes` as checksums allow. **Total**: returns for
/// every input, never panics — a bad length, checksum, or body ends the
/// valid prefix and the rest is reported as the torn tail.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut out = WalScan::default();
    let mut off = 0usize;
    let stop = |mut out: WalScan, off: usize, why: &str, total: usize| {
        out.valid_len = off;
        out.torn_bytes = total - off;
        out.corrupt = Some(why.to_string());
        out
    };
    loop {
        if off == bytes.len() {
            out.valid_len = off;
            return out;
        }
        if bytes.len() - off < HEADER_LEN {
            return stop(out, off, "truncated header", bytes.len());
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_RECORD_LEN {
            return stop(out, off, "bad record length", bytes.len());
        }
        if bytes.len() - off - HEADER_LEN < len {
            return stop(out, off, "truncated body", bytes.len());
        }
        let checksum = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        let body = &bytes[off + HEADER_LEN..off + HEADER_LEN + len];
        if fnv1a(body) != checksum {
            return stop(out, off, "checksum mismatch", bytes.len());
        }
        match decode_body(body) {
            Some(entry) => out.entries.push(entry),
            None => return stop(out, off, "malformed record body", bytes.len()),
        }
        off += HEADER_LEN + len;
    }
}

/// Decode one checksum-verified body; `None` on any malformation.
fn decode_body(body: &[u8]) -> Option<WalEntry> {
    let u64_at = |i: usize| -> Option<u64> {
        Some(u64::from_le_bytes(body.get(i..i + 8)?.try_into().ok()?))
    };
    let u32_at = |i: usize| -> Option<u32> {
        Some(u32::from_le_bytes(body.get(i..i + 4)?.try_into().ok()?))
    };
    match *body.first()? {
        TAG_SLOT_SINGLE => {
            // [tag][slot 8][opid 4][digest 8][word 8] = 29 bytes.
            if body.len() != 29 {
                return None;
            }
            Some(WalEntry::Slot {
                slot: usize::try_from(u64_at(1)?).ok()?,
                opid: u32_at(9)?,
                digest_after: u64_at(13)?,
                record: SlotRecord::Single(u64_at(21)?),
            })
        }
        TAG_SLOT_BATCH => {
            // [tag][slot 8][opid 4][digest 8][count 4][count × 8].
            let count = u32_at(21)? as usize;
            if count == 0 || body.len() != 25 + 8 * count {
                return None;
            }
            let words: Vec<u64> = (0..count)
                .map(|i| u64_at(25 + 8 * i))
                .collect::<Option<_>>()?;
            Some(WalEntry::Slot {
                slot: usize::try_from(u64_at(1)?).ok()?,
                opid: u32_at(9)?,
                digest_after: u64_at(13)?,
                record: SlotRecord::Batch(Arc::from(words)),
            })
        }
        TAG_CHECKPOINT => {
            // [tag][slot 8][digest 8][count 4][count × 8].
            let count = u32_at(17)? as usize;
            if body.len() != 21 + 8 * count {
                return None;
            }
            Some(WalEntry::Checkpoint {
                slot: usize::try_from(u64_at(1)?).ok()?,
                digest: u64_at(9)?,
                words: (0..count)
                    .map(|i| u64_at(21 + 8 * i))
                    .collect::<Option<_>>()?,
            })
        }
        _ => None,
    }
}

/// Wrap a body in the `[len][checksum]` frame.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encode one decided slot as a framed record.
pub fn encode_slot(slot: usize, opid: u32, digest_after: u64, record: &SlotRecord) -> Vec<u8> {
    let mut body = Vec::new();
    match record {
        SlotRecord::Single(w) => {
            body.push(TAG_SLOT_SINGLE);
            body.extend_from_slice(&(slot as u64).to_le_bytes());
            body.extend_from_slice(&opid.to_le_bytes());
            body.extend_from_slice(&digest_after.to_le_bytes());
            body.extend_from_slice(&w.to_le_bytes());
        }
        SlotRecord::Batch(ws) => {
            body.push(TAG_SLOT_BATCH);
            body.extend_from_slice(&(slot as u64).to_le_bytes());
            body.extend_from_slice(&opid.to_le_bytes());
            body.extend_from_slice(&digest_after.to_le_bytes());
            body.extend_from_slice(&(ws.len() as u32).to_le_bytes());
            for w in ws.iter() {
                body.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    frame(body)
}

/// Encode one installed checkpoint as a framed record.
pub fn encode_checkpoint(slot: usize, digest: u64, words: &[u64]) -> Vec<u8> {
    let mut body = Vec::new();
    body.push(TAG_CHECKPOINT);
    body.extend_from_slice(&(slot as u64).to_le_bytes());
    body.extend_from_slice(&digest.to_le_bytes());
    body.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for w in words {
        body.extend_from_slice(&w.to_le_bytes());
    }
    frame(body)
}

/// The WAL file name of shard `s`.
pub fn shard_file(s: usize) -> String {
    format!("shard-{s}.wal")
}

/// Live WAL counters (one set per store, summed over shards).
#[derive(Debug, Default)]
pub struct WalStats {
    /// Decided records appended.
    pub records: AtomicU64,
    /// fsyncs issued (group commits + rotations).
    pub fsyncs: AtomicU64,
    /// Checkpoint rotations written.
    pub checkpoints: AtomicU64,
    /// Records made durable per fsync (the group-commit batch size).
    pub batch: Histogram,
    /// Slot records replayed by recovery.
    pub replayed: AtomicU64,
    /// Checkpoint snapshots loaded by recovery.
    pub loaded_checkpoints: AtomicU64,
    /// Shard files recovery found torn or corrupt (and truncated).
    pub torn_tails: AtomicU64,
}

impl WalStats {
    /// The counters as a [`DurabilitySnapshot`] for metrics export.
    pub fn snapshot(&self) -> crate::metrics::DurabilitySnapshot {
        crate::metrics::DurabilitySnapshot {
            records_logged: self.records.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            batch_p50: self.batch.quantile(0.50),
            batch_p95: self.batch.quantile(0.95),
            records_replayed: self.replayed.load(Ordering::Relaxed),
            checkpoints_loaded: self.loaded_checkpoints.load(Ordering::Relaxed),
            torn_tails: self.torn_tails.load(Ordering::Relaxed),
        }
    }
}

/// Mutable writer state of one shard's WAL, under one lock.
struct WalInner {
    /// Encoded-but-not-yet-written frames: group commit batches the
    /// `write` syscalls too, not just the fsyncs — one record per
    /// `append` would cost more than the sync it amortizes.
    buf: Vec<u8>,
    /// Logged-but-not-fsynced records (buffered or written).
    pending: usize,
    /// Encoded slot records since the last rotation, kept for the next
    /// rotation's tail (slot, frame bytes).
    tail: VecDeque<(usize, Vec<u8>)>,
    /// The slot of the last rotated-in checkpoint (0 = none yet).
    ckpt_slot: usize,
    /// The first I/O error, if any: the WAL refuses further writes.
    error: Option<WalIoError>,
}

/// One shard's write-ahead log writer; also the [`SlotSink`] attached
/// to the shard's `UniversalLog`.
pub struct ShardWal {
    media: Arc<dyn WalMedia>,
    name: String,
    group_commit: usize,
    rotate_cost: usize,
    inner: Mutex<WalInner>,
    stats: Arc<WalStats>,
}

impl ShardWal {
    /// A writer for shard `s` over `media`, sharing `stats` with its
    /// siblings.
    pub fn new(
        media: Arc<dyn WalMedia>,
        s: usize,
        group_commit: usize,
        rotate_cost: usize,
        stats: Arc<WalStats>,
    ) -> Self {
        ShardWal {
            media,
            name: shard_file(s),
            group_commit: group_commit.max(1),
            rotate_cost,
            inner: Mutex::new(WalInner {
                buf: Vec::new(),
                pending: 0,
                tail: VecDeque::new(),
                ckpt_slot: 0,
                error: None,
            }),
            stats,
        }
    }

    /// The first I/O error this writer hit, if any (it stopped logging
    /// at that point).
    pub fn error(&self) -> Option<WalIoError> {
        self.inner.lock().error.clone()
    }

    /// Rewrite the file from recovered state: the (optional) checkpoint
    /// frame followed by the replayed tail frames — the compacted,
    /// torn-tail-free image recovery continues from. Seeds the writer's
    /// rotation cache with the same tail.
    pub fn reset_from_recovery(
        &self,
        ckpt: Option<(usize, Vec<u8>)>,
        tail: Vec<(usize, Vec<u8>)>,
    ) -> Result<(), WalIoError> {
        let mut contents = Vec::new();
        let ckpt_slot = ckpt.as_ref().map_or(0, |(s, _)| *s);
        if let Some((_, frame)) = &ckpt {
            contents.extend_from_slice(frame);
        }
        for (_, frame) in &tail {
            contents.extend_from_slice(frame);
        }
        self.media.replace(&self.name, &contents)?;
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.tail = tail.into();
        inner.ckpt_slot = ckpt_slot;
        inner.pending = 0;
        Ok(())
    }

    /// Latch `e` as this writer's fatal error (first one wins).
    fn fail(&self, inner: &mut WalInner, e: WalIoError) {
        if inner.error.is_none() {
            eprintln!("ff-store wal: shard log {} failed: {e}", self.name);
            inner.error = Some(e);
        }
    }

    fn sync_locked(&self, inner: &mut WalInner) {
        if inner.pending == 0 || inner.error.is_some() {
            return;
        }
        if !inner.buf.is_empty() {
            let buf = std::mem::take(&mut inner.buf);
            if let Err(e) = self.media.append(&self.name, &buf) {
                self.fail(inner, e);
                return;
            }
        }
        match self.media.sync(&self.name) {
            Ok(()) => {
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.stats.batch.record(inner.pending as u64);
                inner.pending = 0;
            }
            Err(e) => self.fail(inner, e),
        }
    }

    /// Force-fsync any pending records (shutdown / verification edge).
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner);
    }
}

impl SlotSink for ShardWal {
    fn slot_decided(&self, slot: usize, opid: u32, record: &SlotRecord, digest_after: u64) {
        let frame = encode_slot(slot, opid, digest_after, record);
        let mut inner = self.inner.lock();
        if inner.error.is_some() {
            return;
        }
        inner.buf.extend_from_slice(&frame);
        inner.tail.push_back((slot, frame));
        inner.pending += 1;
        self.stats.records.fetch_add(1, Ordering::Relaxed);
        if inner.pending >= self.group_commit {
            self.sync_locked(&mut inner);
        }
    }

    fn checkpoint_installed(&self, slot: usize, digest: u64, words: &[u64]) {
        let mut inner = self.inner.lock();
        if inner.error.is_some() {
            return;
        }
        // Concurrent handles can emit checkpoints out of order (the
        // installer of boundary S+k may report before S's); rotating
        // back to an older checkpoint would lose records, so only ever
        // roll forward.
        if slot <= inner.ckpt_slot {
            return;
        }
        let mut contents = encode_checkpoint(slot, digest, words);
        // Rotation is compaction, and it costs a full-file rewrite plus
        // two fsyncs. Only pay that when the record frames it drops
        // outweigh the snapshot it writes; skipped boundaries cost
        // nothing — recovery replays the longer tail from the last
        // checkpoint that *did* reach the file.
        let reclaimed: usize = inner
            .tail
            .iter()
            .take_while(|(s, _)| *s < slot)
            .map(|(_, frame)| frame.len())
            .sum();
        if reclaimed < contents.len().saturating_add(self.rotate_cost) {
            return;
        }
        inner.tail.retain(|(s, _)| *s >= slot);
        for (_, frame) in &inner.tail {
            contents.extend_from_slice(frame);
        }
        match self.media.replace(&self.name, &contents) {
            Ok(()) => {
                inner.ckpt_slot = slot;
                // The replace made the pending records durable too:
                // buffered frames at slots >= S are in the tail it
                // wrote, and earlier ones are covered by the snapshot.
                inner.buf.clear();
                if inner.pending > 0 {
                    self.stats.batch.record(inner.pending as u64);
                    inner.pending = 0;
                }
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.fail(&mut inner, e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_slot(0, 7, 0x1111, &SlotRecord::Single(42)));
        bytes.extend_from_slice(&encode_slot(
            1,
            8,
            0x2222,
            &SlotRecord::Batch(Arc::from(vec![1u64, 2, 3])),
        ));
        bytes.extend_from_slice(&encode_checkpoint(2, 0x3333, &[9, 9, 9]));
        bytes
    }

    #[test]
    fn scan_round_trips_all_record_kinds() {
        let bytes = sample_frames();
        let scan = scan(&bytes);
        assert!(scan.corrupt.is_none(), "{:?}", scan.corrupt);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.entries.len(), 3);
        assert_eq!(
            scan.entries[0],
            WalEntry::Slot {
                slot: 0,
                opid: 7,
                digest_after: 0x1111,
                record: SlotRecord::Single(42)
            }
        );
        assert_eq!(
            scan.entries[2],
            WalEntry::Checkpoint {
                slot: 2,
                digest: 0x3333,
                words: vec![9, 9, 9]
            }
        );
    }

    #[test]
    fn scan_truncates_at_torn_tail() {
        let bytes = sample_frames();
        let first = encode_slot(0, 7, 0x1111, &SlotRecord::Single(42)).len();
        // Cut mid-second-record: the valid prefix is exactly one record.
        let torn = &bytes[..first + 5];
        let scan = scan(torn);
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.valid_len, first);
        assert_eq!(scan.torn_bytes, 5);
        assert!(scan.corrupt.is_some());
    }

    #[test]
    fn scan_stops_at_flipped_byte() {
        let mut bytes = sample_frames();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let scan = scan(&bytes);
        // Whatever record the flip landed in, everything before decodes
        // and nothing panics.
        assert!(scan.corrupt.is_some());
        assert!(scan.valid_len <= mid);
    }

    #[test]
    fn scan_rejects_absurd_length_without_allocating() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let scan = scan(&bytes);
        assert!(scan.entries.is_empty());
        assert_eq!(scan.corrupt.as_deref(), Some("bad record length"));
    }

    #[test]
    fn writer_group_commits_and_rotates() {
        let dir = std::env::temp_dir().join(format!("ff-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let media: Arc<dyn WalMedia> = Arc::new(FsMedia::open(&dir).unwrap());
        let stats = Arc::new(WalStats::default());
        let wal = ShardWal::new(Arc::clone(&media), 0, 4, 0, Arc::clone(&stats));
        for slot in 0..6usize {
            wal.slot_decided(
                slot,
                slot as u32,
                &SlotRecord::Single(slot as u64),
                slot as u64,
            );
        }
        // 6 records, group commit 4: one fsync so far, 2 pending.
        assert_eq!(stats.fsyncs.load(Ordering::Relaxed), 1);
        wal.checkpoint_installed(4, 0xabc, &[1, 2]);
        let scanned = scan(&media.read(&shard_file(0)).unwrap().unwrap());
        assert!(scanned.corrupt.is_none());
        // Rotation: checkpoint first, then only slots >= 4.
        assert!(matches!(
            scanned.entries[0],
            WalEntry::Checkpoint { slot: 4, .. }
        ));
        let slots: Vec<usize> = scanned.entries[1..]
            .iter()
            .map(|e| match e {
                WalEntry::Slot { slot, .. } => *slot,
                _ => panic!("unexpected checkpoint"),
            })
            .collect();
        assert_eq!(slots, vec![4, 5]);
        // A stale (older) checkpoint must not roll the file back.
        wal.checkpoint_installed(2, 0xdef, &[3]);
        let scanned = scan(&media.read(&shard_file(0)).unwrap().unwrap());
        assert!(matches!(
            scanned.entries[0],
            WalEntry::Checkpoint { slot: 4, .. }
        ));
        assert!(wal.error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A valid WAL image derived deterministically from draw seeds:
    /// each seed picks a record kind and its payload.
    fn frames_from_seeds(seeds: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, &x) in seeds.iter().enumerate() {
            match x % 3 {
                0 => out.extend_from_slice(&encode_slot(
                    i,
                    x as u32,
                    x ^ 0x1111,
                    &SlotRecord::Single(x >> 3),
                )),
                1 => {
                    let ws: Vec<u64> = (0..1 + (x % 4)).map(|j| x.wrapping_mul(j + 1)).collect();
                    out.extend_from_slice(&encode_slot(
                        i,
                        x as u32,
                        x >> 7,
                        &SlotRecord::Batch(Arc::from(ws)),
                    ));
                }
                _ => {
                    let ws: Vec<u64> = (0..(x % 4)).map(|j| x ^ j).collect();
                    out.extend_from_slice(&encode_checkpoint(i + 1, x >> 11, &ws));
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The decoder is total: any byte soup, any truncation point,
        // any single-byte mutation — scan returns, never panics, and
        // the valid prefix re-scans identically.
        #[test]
        fn scan_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let s = scan(&bytes);
            prop_assert!(s.valid_len + s.torn_bytes == bytes.len());
            let again = scan(&bytes[..s.valid_len]);
            prop_assert!(again.corrupt.is_none());
            prop_assert_eq!(again.entries.len(), s.entries.len());
        }

        #[test]
        fn scan_survives_truncation_of_valid_logs(
            seeds in proptest::collection::vec(any::<u64>(), 0..8),
            cut in any::<u16>(),
        ) {
            let wal = frames_from_seeds(&seeds);
            let cut = cut as usize % (wal.len() + 1);
            let s = scan(&wal[..cut]);
            // Truncation only ever shortens the entry list; the valid
            // prefix always re-decodes cleanly.
            prop_assert!(s.valid_len <= cut);
            prop_assert!(scan(&wal[..s.valid_len]).corrupt.is_none());
        }

        #[test]
        fn scan_survives_single_byte_mutation(
            seeds in proptest::collection::vec(any::<u64>(), 1..8),
            at in any::<u16>(),
            xor in any::<u8>(),
        ) {
            let mut mutated = frames_from_seeds(&seeds);
            let at = at as usize % mutated.len();
            mutated[at] ^= xor | 1;
            let s = scan(&mutated);
            // Never panics; whatever survives is a decodable prefix.
            prop_assert!(scan(&mutated[..s.valid_len]).corrupt.is_none());
        }
    }
}
