//! The time seam: a [`Clock`] trait the soak/driver layers stamp time
//! through, so the same workload code runs against wall time in
//! production and against a manually advanced (or fully simulated)
//! clock in deterministic tests.
//!
//! Nothing in the store's *protocol* layer reads time — combining spin
//! bounds and lease reclaims are poll counters, so they are already
//! schedule-deterministic. Wall time enters only where workloads are
//! paced and latencies are stamped ([`drive_clients`](crate::soak::drive_clients)),
//! and that is exactly the surface this trait abstracts. `ff-dst`'s
//! whole-system simulator keeps its own logical clock and drives the
//! store through the split-phase combining API, which never needs one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin. Monotonic.
    fn now_nanos(&self) -> u64;
}

/// The production clock: monotonic wall time since construction.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// The instant this clock counts from.
    pub fn origin(&self) -> Instant {
        self.origin
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock: time moves only when a test (or a
/// simulator) says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jump to an absolute reading (must not move backwards).
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        assert_eq!(c.now_nanos(), 5);
        c.set(3); // never backwards
        assert_eq!(c.now_nanos(), 5);
        c.set(9);
        assert_eq!(c.now_nanos(), 9);
    }
}
