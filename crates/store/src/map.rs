//! The replicated object each shard's log drives: a deterministic
//! key-value map over the universal construction's 56-bit op encoding.
//!
//! Keys and values are 28-bit integers so a `put(k, v)` fits one op
//! word (opcode byte + 28-bit key + 28-bit value). That is plenty for a
//! soak workload while keeping every operation a single consensus
//! decision — exactly the regime the paper's constructions are priced
//! for (one decided slot per operation).

use ff_universal::encoding::{op, split};
use ff_universal::{Replicated, EMPTY};
use std::collections::BTreeMap;

/// Bits per key and per value.
pub const KV_BITS: u32 = 28;
/// Largest encodable key / value.
pub const KV_MAX: u32 = (1 << KV_BITS) - 1;

/// A replicated map from 28-bit keys to 28-bit values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvMap {
    // BTreeMap, not HashMap: snapshots must serialize identically on
    // every replica, so iteration order has to be deterministic.
    entries: BTreeMap<u32, u32>,
}

impl KvMap {
    /// Opcode: insert/overwrite `key → value`; responds with the
    /// previous value or [`EMPTY`].
    pub const PUT: u8 = 1;
    /// Opcode: read `key`; responds with the value or [`EMPTY`].
    pub const GET: u8 = 2;
    /// Opcode: remove `key`; responds with the removed value or
    /// [`EMPTY`].
    pub const DEL: u8 = 3;
    /// Opcode: number of entries.
    pub const LEN: u8 = 4;

    /// Encoded `put(key, value)` operation.
    pub fn put_op(key: u32, value: u32) -> u64 {
        assert!(key <= KV_MAX, "key {key} exceeds {KV_BITS} bits");
        assert!(value <= KV_MAX, "value {value} exceeds {KV_BITS} bits");
        op(Self::PUT, ((key as u64) << KV_BITS) | value as u64)
    }

    /// Encoded `get(key)` operation.
    pub fn get_op(key: u32) -> u64 {
        assert!(key <= KV_MAX, "key {key} exceeds {KV_BITS} bits");
        op(Self::GET, (key as u64) << KV_BITS)
    }

    /// Encoded `del(key)` operation.
    pub fn del_op(key: u32) -> u64 {
        assert!(key <= KV_MAX, "key {key} exceeds {KV_BITS} bits");
        op(Self::DEL, (key as u64) << KV_BITS)
    }

    /// Encoded `len()` operation.
    pub fn len_op() -> u64 {
        op(Self::LEN, 0)
    }

    /// Decode a response word into `Some(value)` / `None` (= [`EMPTY`]).
    pub fn decode_response(resp: u64) -> Option<u32> {
        (resp != EMPTY).then_some(resp as u32)
    }

    /// Number of entries (local inspection).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Local read without going through the log (for verification).
    pub fn peek(&self, key: u32) -> Option<u32> {
        self.entries.get(&key).copied()
    }
}

impl Replicated for KvMap {
    fn apply(&mut self, operation: u64) -> u64 {
        let (code, payload) = split(operation);
        let key = (payload >> KV_BITS) as u32 & KV_MAX;
        let value = payload as u32 & KV_MAX;
        match code {
            Self::PUT => self
                .entries
                .insert(key, value)
                .map_or(EMPTY, |old| old as u64),
            Self::GET => self.entries.get(&key).map_or(EMPTY, |v| *v as u64),
            Self::DEL => self.entries.remove(&key).map_or(EMPTY, |old| old as u64),
            Self::LEN => self.entries.len() as u64,
            _ => EMPTY,
        }
    }

    fn encode_snapshot(&self) -> Option<Vec<u64>> {
        let mut words = vec![self.entries.len() as u64];
        words.extend(
            self.entries
                .iter()
                .map(|(k, v)| ((*k as u64) << KV_BITS) | *v as u64),
        );
        Some(words)
    }

    fn restore_snapshot(&mut self, words: &[u64]) -> bool {
        match words.split_first() {
            Some((&len, pairs)) if pairs.len() as u64 == len => {
                self.entries = pairs
                    .iter()
                    .map(|w| ((*w >> KV_BITS) as u32 & KV_MAX, *w as u32 & KV_MAX))
                    .collect();
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_semantics() {
        let mut m = KvMap::default();
        assert_eq!(m.apply(KvMap::get_op(1)), EMPTY);
        assert_eq!(m.apply(KvMap::put_op(1, 10)), EMPTY);
        assert_eq!(m.apply(KvMap::put_op(1, 20)), 10);
        assert_eq!(m.apply(KvMap::get_op(1)), 20);
        assert_eq!(m.apply(KvMap::len_op()), 1);
        assert_eq!(m.apply(KvMap::del_op(1)), 20);
        assert_eq!(m.apply(KvMap::del_op(1)), EMPTY);
        assert!(m.is_empty());
    }

    #[test]
    fn extreme_keys_and_values_round_trip() {
        let mut m = KvMap::default();
        m.apply(KvMap::put_op(KV_MAX, KV_MAX));
        m.apply(KvMap::put_op(0, 0));
        assert_eq!(m.apply(KvMap::get_op(KV_MAX)), KV_MAX as u64);
        assert_eq!(m.apply(KvMap::get_op(0)), 0);
    }

    #[test]
    fn decode_response_maps_empty_to_none() {
        assert_eq!(KvMap::decode_response(EMPTY), None);
        assert_eq!(KvMap::decode_response(7), Some(7));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut m = KvMap::default();
        for k in 0..100 {
            m.apply(KvMap::put_op(k, k * 2));
        }
        m.apply(KvMap::del_op(50));
        let mut m2 = KvMap::default();
        assert!(m2.restore_snapshot(&m.encode_snapshot().unwrap()));
        assert_eq!(m, m2);
    }

    #[test]
    fn malformed_snapshot_rejected() {
        assert!(!KvMap::default().restore_snapshot(&[]));
        assert!(!KvMap::default().restore_snapshot(&[2, 1]));
    }

    #[test]
    #[should_panic(expected = "exceeds 28 bits")]
    fn oversized_key_rejected() {
        let _ = KvMap::put_op(KV_MAX + 1, 0);
    }
}
