//! Per-shard consensus-cell factories: the store's pluggable backends.
//!
//! Each shard owns one [`ShardCells`] factory. It reuses the `ff-cas`
//! fault-injection substrate — the same policies and `(f, t)` budgets
//! the experiments use — but adds what a long-running store needs:
//!
//! * **Aggregated live stats.** All cells of a shard share one
//!   [`EnsembleStats`], so fault counts can be read while the shard
//!   serves traffic (individual cells are created and dropped as the
//!   log advances and truncates).
//! * **Runtime knobs.** The fault rate is an atomic the operator can
//!   turn mid-run ([`FaultKnob::set_rate`]) — per shard, without
//!   rebuilding anything.
//! * **Junk tolerance.** Under *arbitrary* faults a faulty object can
//!   return garbage words. [`GuardedCascadeConsensus`] runs the
//!   Figure 2 cascade but skips non-input words instead of panicking:
//!   the construction's guarantee rests on the reliable spare object
//!   `O_j` — every process adopts the first value written to `O_j` —
//!   and a junk word can never *be* that value (values are always
//!   announced inputs), so ignoring junk preserves agreement. A junk
//!   word colliding with a valid input encoding goes undetected with
//!   probability 2⁻³² per fault; acceptable for a soak harness.
//!
//! Tolerable fault kinds per backend, following the paper's results:
//! overriding and arbitrary kinds get the `f`-tolerant cascade
//! (Theorem 5) over `f` faulty + 1 reliable objects; silent faults get
//! the bounded-retry protocol (Section 3.4), which requires a finite
//! total budget `t` (unbounded silent faults admit nontermination —
//! experiment E8). Invisible faults are rejected: no construction in
//! the paper tolerates them (Theorem 4 territory), so a store
//! configured for them would be built on nothing.

use ff_cas::{splitmix64, AtomicCasArray, CasEnsemble, EnsembleStats, FaultPolicy, FaultyCasArray};
use ff_consensus::{Consensus, HerlihyConsensus, SilentRetryConsensus};
use ff_spec::{Bound, FaultKind, Input, ObjectId, Tolerance, BOTTOM};
use ff_universal::CellFactory;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A live-adjustable fault rate shared by every cell of one shard.
#[derive(Debug)]
pub struct FaultKnob {
    /// Probability threshold over the u64 space (rate × u64::MAX).
    threshold: AtomicU64,
    seed: u64,
}

impl FaultKnob {
    /// A knob starting at `rate` (probability per CAS operation).
    pub fn new(rate: f64, seed: u64) -> Arc<Self> {
        let knob = FaultKnob {
            threshold: AtomicU64::new(0),
            seed,
        };
        knob.set_rate(rate);
        Arc::new(knob)
    }

    /// Change the fault rate, effective immediately for all cells.
    pub fn set_rate(&self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be a probability, got {rate}"
        );
        self.threshold
            .store((rate * u64::MAX as f64) as u64, Ordering::Relaxed);
    }

    /// The current fault rate.
    pub fn rate(&self) -> f64 {
        self.threshold.load(Ordering::Relaxed) as f64 / u64::MAX as f64
    }
}

/// The policy face of a [`FaultKnob`]: probabilistic, counter-based
/// (no shared RNG state), reading the rate live.
struct KnobPolicy {
    knob: Arc<FaultKnob>,
    /// Distinguishes cells sharing one knob, so they don't fault in
    /// lockstep.
    salt: u64,
}

impl FaultPolicy for KnobPolicy {
    fn should_fault(&self, obj: ObjectId, op_index: u64) -> bool {
        let bits = splitmix64(
            self.knob.seed ^ self.salt ^ splitmix64(obj.0 as u64) ^ op_index.rotate_left(17),
        );
        bits <= self.knob.threshold.load(Ordering::Relaxed)
    }
}

/// Figure 2's cascade, hardened for *arbitrary* faults: non-input words
/// are skipped instead of aborting (see the module docs for why this is
/// sound).
pub struct GuardedCascadeConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    f: usize,
}

impl<E: CasEnsemble + ?Sized> GuardedCascadeConsensus<E> {
    /// Build the `f`-tolerant protocol; `ensemble` must hold exactly
    /// `f + 1` objects.
    pub fn new(ensemble: Arc<E>, f: usize) -> Self {
        assert_eq!(
            ensemble.len(),
            f + 1,
            "cascade needs exactly f + 1 = {} objects, got {}",
            f + 1,
            ensemble.len()
        );
        GuardedCascadeConsensus { ensemble, f }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for GuardedCascadeConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let mut output = val;
        for i in 0..=self.f {
            let old = self.ensemble.cas(ObjectId(i), BOTTOM, output.to_word());
            if old != BOTTOM {
                if let Some(adopted) = Input::from_word(old) {
                    output = adopted;
                }
                // Non-input word: a faulty object returned garbage.
                // Keep the current output; the reliable object's value
                // still propagates.
            }
        }
        output
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::f_tolerant(self.f as u64)
    }

    fn objects_used(&self) -> usize {
        self.f + 1
    }

    fn name(&self) -> &'static str {
        "guarded-cascade"
    }
}

/// Herlihy's protocol straight over one faulty object — the naive
/// backend the paper proves broken (E10's negative arm), here with junk
/// words degraded deterministically instead of panicking so a soak can
/// *observe* the divergence rather than crash on it.
struct NaiveConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
}

impl<E: CasEnsemble + ?Sized> Consensus for NaiveConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let old = self.ensemble.cas(ObjectId(0), BOTTOM, val.to_word());
        if old == BOTTOM {
            val
        } else {
            // A junk word (arbitrary fault) becomes a junk decision —
            // the naive construction inherits whatever the object does.
            Input::from_word(old).unwrap_or(Input(old as u32 & 0x7fff_ffff))
        }
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::f_tolerant(0)
    }

    fn objects_used(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "naive-direct"
    }
}

/// Which construction a shard runs its cells on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Reliable CAS (no injection) — the fault-free baseline.
    Reliable,
    /// The paper's fault-tolerant constructions over injected faults:
    /// cascade for overriding/arbitrary kinds, bounded retry for silent.
    Robust,
    /// Herlihy's protocol straight over an injected-faulty object — the
    /// broken construction, kept for divergence demonstrations.
    Naive,
}

impl Backend {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Reliable => "reliable",
            Backend::Robust => "robust",
            Backend::Naive => "naive",
        }
    }
}

/// Process-level faults, orthogonal to the paper's *object*-level
/// taxonomy. The paper's cells lie; its processes are immortal. The
/// recoverable-consensus line of work (Golab; Lundström–Raynal–Schiller
/// in PAPERS.md) asks what survives when processes crash too — this is
/// that axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProcessFault {
    /// Processes never crash (the paper's base model).
    #[default]
    None,
    /// Processes may be killed and restarted at any point: **volatile
    /// state is lost, cells survive**, and durable storage survives
    /// possibly with a torn tail at the last unsynced write. Requires
    /// durability in the [`StoreConfig`](crate::StoreConfig) — a
    /// crashed process rejoins by replaying its write-ahead log
    /// ([`Store::recover`](crate::Store::recover)).
    CrashRecover,
}

/// Fault environment of one shard: kind, `(f, t)` budget, live rate,
/// and the process-level crash model.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// The functional-fault kind to inject.
    pub kind: FaultKind,
    /// Faulty objects per cell ensemble (Definition 2's `f`).
    pub f: usize,
    /// Per-object fault budget (Definition 2's `t`); silent faults
    /// require a finite bound.
    pub t: Bound,
    /// Initial fault probability per CAS operation.
    pub rate: f64,
    /// Whether processes themselves may crash and recover (orthogonal
    /// to the object-fault kind above).
    pub process: ProcessFault,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            kind: FaultKind::Overriding,
            f: 1,
            t: Bound::Unbounded,
            rate: 0.2,
            process: ProcessFault::default(),
        }
    }
}

/// The per-shard cell factory: owns the shard's fault knob and the
/// shared stats every cell aggregates into.
pub struct ShardCells {
    backend: Backend,
    fault: FaultConfig,
    knob: Arc<FaultKnob>,
    stats: Arc<EnsembleStats>,
    next_salt: AtomicU64,
}

impl ShardCells {
    /// A factory for one shard. `seed` derives every cell's fault
    /// stream deterministically.
    pub fn new(backend: Backend, fault: FaultConfig, seed: u64) -> Self {
        if backend == Backend::Robust {
            assert!(fault.f >= 1, "robust backend needs f >= 1");
            assert!(
                !matches!(fault.kind, FaultKind::Invisible | FaultKind::Nonresponsive),
                "no construction in the paper tolerates {:?} faults; \
                 refusing to build a store on one",
                fault.kind
            );
            if fault.kind == FaultKind::Silent {
                assert!(
                    matches!(fault.t, Bound::Finite(_)),
                    "silent faults need a finite per-object budget t \
                     (unbounded silent faults admit nontermination — experiment E8)"
                );
            }
        }
        let objects = match backend {
            Backend::Robust if fault.kind != FaultKind::Silent => fault.f + 1,
            _ => 1,
        };
        ShardCells {
            backend,
            knob: FaultKnob::new(fault.rate, seed),
            stats: Arc::new(EnsembleStats::new(objects)),
            fault,
            next_salt: AtomicU64::new(0),
        }
    }

    /// The live fault-rate knob for this shard.
    pub fn knob(&self) -> Arc<FaultKnob> {
        Arc::clone(&self.knob)
    }

    /// The shard-wide aggregated operation/fault counters.
    pub fn stats(&self) -> Arc<EnsembleStats> {
        Arc::clone(&self.stats)
    }

    /// The injected fault kind.
    pub fn fault_kind(&self) -> FaultKind {
        self.fault.kind
    }

    /// The backend this shard runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn faulty_ensemble(&self, objects: usize, faulty: usize) -> Arc<FaultyCasArray> {
        let salt = self.next_salt.fetch_add(1, Ordering::Relaxed);
        Arc::new(
            FaultyCasArray::builder(objects)
                .kind(self.fault.kind)
                .faulty_first(faulty)
                .per_object(self.fault.t)
                .policy(KnobPolicy {
                    knob: Arc::clone(&self.knob),
                    salt: splitmix64(salt),
                })
                .record_history(false)
                .shared_stats(Arc::clone(&self.stats))
                .build(),
        )
    }
}

impl CellFactory for ShardCells {
    fn make(&self) -> Arc<dyn Consensus> {
        match self.backend {
            Backend::Reliable => Arc::new(HerlihyConsensus::new(Arc::new(AtomicCasArray::new(1)))),
            Backend::Robust => match self.fault.kind {
                FaultKind::Silent => {
                    let t = match self.fault.t {
                        Bound::Finite(t) => t,
                        Bound::Unbounded => unreachable!("checked in ShardCells::new"),
                    };
                    let ensemble = self.faulty_ensemble(1, 1);
                    Arc::new(SilentRetryConsensus::new(ensemble, t))
                }
                _ => {
                    let ensemble = self.faulty_ensemble(self.fault.f + 1, self.fault.f);
                    Arc::new(GuardedCascadeConsensus::new(ensemble, self.fault.f))
                }
            },
            Backend::Naive => Arc::new(NaiveConsensus {
                ensemble: self.faulty_ensemble(1, 1),
            }),
        }
    }

    fn label(&self) -> &'static str {
        self.backend.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_changes_rate_live() {
        let knob = FaultKnob::new(0.0, 1);
        let policy = KnobPolicy {
            knob: Arc::clone(&knob),
            salt: 0,
        };
        assert!((0..100).all(|i| !policy.should_fault(ObjectId(0), i)));
        knob.set_rate(1.0);
        assert!((0..100).all(|i| policy.should_fault(ObjectId(0), i)));
        assert!((knob.rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn guarded_cascade_agrees_under_arbitrary_faults() {
        let fault = FaultConfig {
            kind: FaultKind::Arbitrary,
            f: 1,
            t: Bound::Unbounded,
            rate: 0.8,
            ..FaultConfig::default()
        };
        let cells = ShardCells::new(Backend::Robust, fault, 42);
        for _ in 0..100 {
            let cell = cells.make();
            let a = cell.decide(Input(1));
            let b = cell.decide(Input(2));
            let c = cell.decide(Input(3));
            assert_eq!(a, b);
            assert_eq!(b, c);
            assert!([Input(1), Input(2), Input(3)].contains(&a), "validity");
        }
        assert!(cells.stats().total_observable() > 0, "faults were injected");
    }

    #[test]
    fn robust_silent_cells_agree() {
        let fault = FaultConfig {
            kind: FaultKind::Silent,
            f: 1,
            t: Bound::Finite(4),
            rate: 0.5,
            ..FaultConfig::default()
        };
        let cells = ShardCells::new(Backend::Robust, fault, 7);
        for _ in 0..100 {
            let cell = cells.make();
            let a = cell.decide(Input(1));
            let b = cell.decide(Input(2));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn naive_cells_never_panic_on_junk() {
        let fault = FaultConfig {
            kind: FaultKind::Arbitrary,
            f: 1,
            t: Bound::Unbounded,
            rate: 1.0,
            ..FaultConfig::default()
        };
        let cells = ShardCells::new(Backend::Naive, fault, 3);
        for _ in 0..100 {
            let cell = cells.make();
            let _ = cell.decide(Input(1));
            let _ = cell.decide(Input(2));
        }
    }

    #[test]
    fn stats_aggregate_across_cells() {
        let cells = ShardCells::new(
            Backend::Robust,
            FaultConfig {
                rate: 1.0,
                ..FaultConfig::default()
            },
            9,
        );
        for _ in 0..10 {
            let cell = cells.make();
            cell.decide(Input(1));
        }
        // 10 cells × 2 CAS per decide (f = 1), all recorded in one place.
        let total_ops: u64 = cells.stats().all().iter().map(|o| o.ops).sum();
        assert_eq!(total_ops, 20);
    }

    #[test]
    #[should_panic(expected = "finite per-object budget")]
    fn unbounded_silent_rejected() {
        let _ = ShardCells::new(
            Backend::Robust,
            FaultConfig {
                kind: FaultKind::Silent,
                t: Bound::Unbounded,
                ..FaultConfig::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "no construction")]
    fn invisible_rejected() {
        let _ = ShardCells::new(
            Backend::Robust,
            FaultConfig {
                kind: FaultKind::Invisible,
                ..FaultConfig::default()
            },
            0,
        );
    }
}
