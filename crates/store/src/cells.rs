//! Per-shard fault plumbing shared by every consensus substrate.
//!
//! The substrate API itself — the [`Substrate`](crate::substrate::Substrate)
//! trait, the registry, and the [`Backend`](crate::Backend) handle —
//! lives in [`crate::substrate`]. This module keeps the pieces every
//! substrate builds from:
//!
//! * **Aggregated live stats.** All cells of a shard share one
//!   `EnsembleStats`, so fault counts can be read while the shard
//!   serves traffic (individual cells are created and dropped as the
//!   log advances and truncates).
//! * **Runtime knobs.** The fault rate is an atomic the operator can
//!   turn mid-run ([`FaultKnob::set_rate`]) — per shard, without
//!   rebuilding anything.
//! * **Junk tolerance.** Under *arbitrary* faults a faulty object can
//!   return garbage words. [`GuardedCascadeConsensus`] runs the
//!   Figure 2 cascade but skips non-input words instead of panicking:
//!   the construction's guarantee rests on the reliable spare object
//!   `O_j` — every process adopts the first value written to `O_j` —
//!   and a junk word can never *be* that value (values are always
//!   announced inputs), so ignoring junk preserves agreement. A junk
//!   word colliding with a valid input encoding goes undetected with
//!   probability 2⁻³² per fault; acceptable for a soak harness.
//!
//! Tolerable fault kinds per substrate follow the paper's results:
//! overriding and arbitrary kinds get the `f`-tolerant cascade
//! (Theorem 5) over `f` faulty + 1 reliable objects; silent faults get
//! the bounded-retry protocol (Section 3.4), which requires a finite
//! total budget `t` (unbounded silent faults admit nontermination —
//! experiment E8). Invisible faults are rejected: no construction in
//! the paper tolerates them (Theorem 4 territory), so a store
//! configured for them would be built on nothing. Each substrate
//! declares its own envelope via
//! [`Substrate::tolerated_kinds`](crate::substrate::Substrate::tolerated_kinds).

use ff_cas::{splitmix64, CasEnsemble, FaultPolicy};
use ff_consensus::Consensus;
use ff_spec::{Bound, FaultKind, Input, ObjectId, Tolerance, BOTTOM};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A live-adjustable fault rate shared by every cell of one shard.
#[derive(Debug)]
pub struct FaultKnob {
    /// Probability threshold over the u64 space (rate × u64::MAX).
    threshold: AtomicU64,
    seed: u64,
}

impl FaultKnob {
    /// A knob starting at `rate` (probability per CAS operation).
    pub fn new(rate: f64, seed: u64) -> Arc<Self> {
        let knob = FaultKnob {
            threshold: AtomicU64::new(0),
            seed,
        };
        knob.set_rate(rate);
        Arc::new(knob)
    }

    /// Change the fault rate, effective immediately for all cells.
    pub fn set_rate(&self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be a probability, got {rate}"
        );
        self.threshold
            .store((rate * u64::MAX as f64) as u64, Ordering::Relaxed);
    }

    /// The current fault rate.
    pub fn rate(&self) -> f64 {
        self.threshold.load(Ordering::Relaxed) as f64 / u64::MAX as f64
    }
}

/// The policy face of a [`FaultKnob`]: probabilistic, counter-based
/// (no shared RNG state), reading the rate live.
pub(crate) struct KnobPolicy {
    pub(crate) knob: Arc<FaultKnob>,
    /// Distinguishes cells sharing one knob, so they don't fault in
    /// lockstep.
    pub(crate) salt: u64,
}

impl FaultPolicy for KnobPolicy {
    fn should_fault(&self, obj: ObjectId, op_index: u64) -> bool {
        let bits = splitmix64(
            self.knob.seed ^ self.salt ^ splitmix64(obj.0 as u64) ^ op_index.rotate_left(17),
        );
        bits <= self.knob.threshold.load(Ordering::Relaxed)
    }
}

/// Figure 2's cascade, hardened for *arbitrary* faults: non-input words
/// are skipped instead of aborting (see the module docs for why this is
/// sound).
pub struct GuardedCascadeConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
    f: usize,
}

impl<E: CasEnsemble + ?Sized> GuardedCascadeConsensus<E> {
    /// Build the `f`-tolerant protocol; `ensemble` must hold exactly
    /// `f + 1` objects.
    pub fn new(ensemble: Arc<E>, f: usize) -> Self {
        assert_eq!(
            ensemble.len(),
            f + 1,
            "cascade needs exactly f + 1 = {} objects, got {}",
            f + 1,
            ensemble.len()
        );
        GuardedCascadeConsensus { ensemble, f }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for GuardedCascadeConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let mut output = val;
        for i in 0..=self.f {
            let old = self.ensemble.cas(ObjectId(i), BOTTOM, output.to_word());
            if old != BOTTOM {
                if let Some(adopted) = Input::from_word(old) {
                    output = adopted;
                }
                // Non-input word: a faulty object returned garbage.
                // Keep the current output; the reliable object's value
                // still propagates.
            }
        }
        output
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::f_tolerant(self.f as u64)
    }

    fn objects_used(&self) -> usize {
        self.f + 1
    }

    fn name(&self) -> &'static str {
        "guarded-cascade"
    }
}

/// Herlihy's protocol straight over one faulty object — the naive
/// substrate the paper proves broken (E10's negative arm), here with
/// junk words degraded deterministically instead of panicking so a soak
/// can *observe* the divergence rather than crash on it.
pub(crate) struct NaiveConsensus<E: CasEnsemble + ?Sized> {
    ensemble: Arc<E>,
}

impl<E: CasEnsemble + ?Sized> NaiveConsensus<E> {
    pub(crate) fn new(ensemble: Arc<E>) -> Self {
        NaiveConsensus { ensemble }
    }
}

impl<E: CasEnsemble + ?Sized> Consensus for NaiveConsensus<E> {
    fn decide(&self, val: Input) -> Input {
        let old = self.ensemble.cas(ObjectId(0), BOTTOM, val.to_word());
        if old == BOTTOM {
            val
        } else {
            // A junk word (arbitrary fault) becomes a junk decision —
            // the naive construction inherits whatever the object does.
            Input::from_word(old).unwrap_or(Input(old as u32 & 0x7fff_ffff))
        }
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::f_tolerant(0)
    }

    fn objects_used(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "naive-direct"
    }
}

/// Process-level faults, orthogonal to the paper's *object*-level
/// taxonomy. The paper's cells lie; its processes are immortal. The
/// recoverable-consensus line of work (Golab; Lundström–Raynal–Schiller
/// in PAPERS.md) asks what survives when processes crash too — this is
/// that axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProcessFault {
    /// Processes never crash (the paper's base model).
    #[default]
    None,
    /// Processes may be killed and restarted at any point: **volatile
    /// state is lost, cells survive**, and durable storage survives
    /// possibly with a torn tail at the last unsynced write. Requires
    /// durability in the [`StoreConfig`](crate::StoreConfig) — a
    /// crashed process rejoins by replaying its write-ahead log
    /// ([`Store::recover`](crate::Store::recover)).
    CrashRecover,
}

/// Fault environment of one shard: kind, `(f, t)` budget, live rate,
/// and the process-level crash model.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// The functional-fault kind to inject.
    pub kind: FaultKind,
    /// Faulty objects per cell ensemble (Definition 2's `f`).
    pub f: usize,
    /// Per-object fault budget (Definition 2's `t`); silent faults
    /// require a finite bound.
    pub t: Bound,
    /// Initial fault probability per CAS operation.
    pub rate: f64,
    /// Whether processes themselves may crash and recover (orthogonal
    /// to the object-fault kind above).
    pub process: ProcessFault,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            kind: FaultKind::Overriding,
            f: 1,
            t: Bound::Unbounded,
            rate: 0.2,
            process: ProcessFault::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::{Backend, ShardCells};
    use ff_universal::CellFactory;

    #[test]
    fn knob_changes_rate_live() {
        let knob = FaultKnob::new(0.0, 1);
        let policy = KnobPolicy {
            knob: Arc::clone(&knob),
            salt: 0,
        };
        assert!((0..100).all(|i| !policy.should_fault(ObjectId(0), i)));
        knob.set_rate(1.0);
        assert!((0..100).all(|i| policy.should_fault(ObjectId(0), i)));
        assert!((knob.rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn guarded_cascade_agrees_under_arbitrary_faults() {
        let fault = FaultConfig {
            kind: FaultKind::Arbitrary,
            f: 1,
            t: Bound::Unbounded,
            rate: 0.8,
            ..FaultConfig::default()
        };
        let cells = ShardCells::new(Backend::robust(), fault, 42);
        for _ in 0..100 {
            let cell = cells.make();
            let a = cell.decide(Input(1));
            let b = cell.decide(Input(2));
            let c = cell.decide(Input(3));
            assert_eq!(a, b);
            assert_eq!(b, c);
            assert!([Input(1), Input(2), Input(3)].contains(&a), "validity");
        }
        assert!(cells.stats().total_observable() > 0, "faults were injected");
    }

    #[test]
    fn robust_silent_cells_agree() {
        let fault = FaultConfig {
            kind: FaultKind::Silent,
            f: 1,
            t: Bound::Finite(4),
            rate: 0.5,
            ..FaultConfig::default()
        };
        let cells = ShardCells::new(Backend::robust(), fault, 7);
        for _ in 0..100 {
            let cell = cells.make();
            let a = cell.decide(Input(1));
            let b = cell.decide(Input(2));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn naive_cells_never_panic_on_junk() {
        let fault = FaultConfig {
            kind: FaultKind::Arbitrary,
            f: 1,
            t: Bound::Unbounded,
            rate: 1.0,
            ..FaultConfig::default()
        };
        let cells = ShardCells::new(Backend::naive(), fault, 3);
        for _ in 0..100 {
            let cell = cells.make();
            let _ = cell.decide(Input(1));
            let _ = cell.decide(Input(2));
        }
    }

    #[test]
    fn stats_aggregate_across_cells() {
        let cells = ShardCells::new(
            Backend::robust(),
            FaultConfig {
                rate: 1.0,
                ..FaultConfig::default()
            },
            9,
        );
        for _ in 0..10 {
            let cell = cells.make();
            cell.decide(Input(1));
        }
        // 10 cells × 2 CAS per decide (f = 1), all recorded in one place.
        let total_ops: u64 = cells.stats().all().iter().map(|o| o.ops).sum();
        assert_eq!(total_ops, 20);
    }

    #[test]
    #[should_panic(expected = "finite per-object budget")]
    fn unbounded_silent_rejected() {
        let _ = ShardCells::new(
            Backend::robust(),
            FaultConfig {
                kind: FaultKind::Silent,
                t: Bound::Unbounded,
                ..FaultConfig::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "no construction")]
    fn invisible_rejected() {
        let _ = ShardCells::new(
            Backend::robust(),
            FaultConfig {
                kind: FaultKind::Invisible,
                ..FaultConfig::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "no construction")]
    fn kw_robust_refuses_arbitrary() {
        // Arbitrary junk is unrepresentable in a KW word — the
        // substrate refuses the environment instead of truncating it.
        let _ = ShardCells::new(
            Backend::kw_robust(),
            FaultConfig {
                kind: FaultKind::Arbitrary,
                ..FaultConfig::default()
            },
            0,
        );
    }
}
