//! Closed-loop soak harness: hammer a [`Store`](crate::Store) from N
//! worker threads for a wall-clock duration, then verify that every
//! replica of every shard converged to the same state.
//!
//! This is the system-level analogue of the paper's per-construction
//! stress tests: instead of asking "does one consensus object stay
//! valid under its fault budget", it asks "does a whole store built
//! from those objects stay *consistent* while faults are live" — and,
//! on the naive arm, demonstrates that it does not.

use crate::clock::{Clock, WallClock};
use crate::kv::{Kv, KvOp, StoreError};
use crate::metrics::{MetricsSnapshot, StoreMetrics};
use crate::recover::{RecoverError, RecoveryReport};
use crate::substrate::Backend;
use crate::wal::DurabilityConfig;
use crate::{ConsistencyReport, Store, StoreClient, StoreConfig, KV_MAX};
use ff_cas::splitmix64;
use ff_workload::JsonValue;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak run parameters.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Closed-loop worker threads (one [`StoreClient`] each).
    pub threads: usize,
    /// Shard count.
    pub shards: usize,
    /// Wall-clock duration (fractions allowed for smoke runs).
    pub secs: f64,
    /// Initial fault rate on every shard's knob.
    pub fault_rate: f64,
    /// Consensus backend under test.
    pub backend: Backend,
    /// Percentage of operations that are reads (`get`); the remainder
    /// splits 2:1 between `put` and `del`.
    pub read_pct: u32,
    /// Keys are drawn uniformly from `0..keyspace`.
    pub keyspace: u32,
    /// Checkpoint interval (slots) for every shard log.
    pub checkpoint_interval: usize,
    /// Route operations through the flat-combining cores
    /// ([`StoreConfig::combining`]).
    pub combining: bool,
    /// Per-shard write-ahead logging ([`StoreConfig::durability`]);
    /// `data_dir: None` runs the store purely in memory.
    pub durability: DurabilityConfig,
    /// Recover from the WAL files already in the data dir instead of
    /// starting fresh (requires durability to be enabled).
    pub recover: bool,
    /// Seed for workload and fault streams.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            threads: 4,
            shards: 8,
            secs: 10.0,
            fault_rate: 0.2,
            backend: Backend::robust(),
            read_pct: 70,
            keyspace: 4096,
            checkpoint_interval: 64,
            combining: false,
            durability: DurabilityConfig::default(),
            recover: false,
            seed: 0x50a6_b65e,
        }
    }
}

/// Everything a soak run learned.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// The configuration that ran.
    pub config: SoakConfigEcho,
    /// Latency/throughput/fault snapshot over the run window.
    pub metrics: MetricsSnapshot,
    /// Post-quiescence consistency verdicts.
    pub consistency: Vec<ShardVerdict>,
    /// What recovery found when the run started from existing WAL files
    /// (`None` for fresh or non-durable runs).
    pub recovery: Option<RecoveryReport>,
    /// Largest retained log length sampled *during* the run.
    pub max_retained_during_run: usize,
    /// Largest retained log length after verification settled.
    pub retained_after_verify: usize,
    /// First error of each worker that stopped early (rendered);
    /// divergence surfacing as a client *error* rather than wrong data
    /// is part of the [`Kv`] contract.
    pub client_errors: Vec<String>,
    /// Did every shard verify consistent — and no worker hit an error?
    pub consistent: bool,
}

/// The subset of [`SoakConfig`] echoed into the report/JSON.
#[derive(Clone, Debug)]
pub struct SoakConfigEcho {
    /// Worker threads.
    pub threads: usize,
    /// Shards.
    pub shards: usize,
    /// Requested duration.
    pub secs: f64,
    /// Fault rate.
    pub fault_rate: f64,
    /// Backend label.
    pub backend: &'static str,
    /// Checkpoint interval.
    pub checkpoint_interval: usize,
    /// Whether the flat-combining path was on.
    pub combining: bool,
    /// Whether the per-shard WAL was on.
    pub durable: bool,
    /// Group-commit batch size (meaningful only when `durable`).
    pub group_commit: usize,
    /// Seed the workload and fault streams ran under — echoed so any
    /// archived `BENCH_store.json` names the exact run to reproduce.
    pub seed: u64,
}

/// One shard's post-run verdict, condensed for the report.
#[derive(Clone, Debug)]
pub struct ShardVerdict {
    /// Shard index.
    pub shard: usize,
    /// Replicas (and a fresh observer) agreed.
    pub consistent: bool,
    /// Injected fault kind label.
    pub kind: &'static str,
    /// Log head at verification.
    pub end_slot: usize,
    /// Slots truncated away by checkpoints.
    pub truncated: usize,
    /// Snapshots installed.
    pub checkpoints: u64,
}

impl SoakReport {
    /// Serialize for `BENCH_store.json`.
    pub fn to_json(&self) -> JsonValue {
        let verdicts = self
            .consistency
            .iter()
            .map(|v| {
                JsonValue::Object(vec![
                    ("shard".into(), JsonValue::Number(v.shard as f64)),
                    ("consistent".into(), JsonValue::Bool(v.consistent)),
                    ("fault_kind".into(), JsonValue::String(v.kind.to_string())),
                    ("end_slot".into(), JsonValue::Number(v.end_slot as f64)),
                    ("truncated".into(), JsonValue::Number(v.truncated as f64)),
                    (
                        "checkpoints".into(),
                        JsonValue::Number(v.checkpoints as f64),
                    ),
                ])
            })
            .collect();
        let mut json = JsonValue::Object(vec![
            (
                "config".into(),
                JsonValue::Object(vec![
                    (
                        "threads".into(),
                        JsonValue::Number(self.config.threads as f64),
                    ),
                    (
                        "shards".into(),
                        JsonValue::Number(self.config.shards as f64),
                    ),
                    ("secs".into(), JsonValue::Number(self.config.secs)),
                    (
                        "fault_rate".into(),
                        JsonValue::Number(self.config.fault_rate),
                    ),
                    (
                        "backend".into(),
                        JsonValue::String(self.config.backend.to_string()),
                    ),
                    (
                        "checkpoint_interval".into(),
                        JsonValue::Number(self.config.checkpoint_interval as f64),
                    ),
                    ("combining".into(), JsonValue::Bool(self.config.combining)),
                    ("durable".into(), JsonValue::Bool(self.config.durable)),
                    (
                        "group_commit".into(),
                        JsonValue::Number(self.config.group_commit as f64),
                    ),
                    ("seed".into(), JsonValue::Number(self.config.seed as f64)),
                ]),
            ),
            ("metrics".into(), self.metrics.to_json()),
            ("consistent".into(), JsonValue::Bool(self.consistent)),
            ("shards".into(), JsonValue::Array(verdicts)),
            (
                "max_retained_during_run".into(),
                JsonValue::Number(self.max_retained_during_run as f64),
            ),
            (
                "retained_after_verify".into(),
                JsonValue::Number(self.retained_after_verify as f64),
            ),
            (
                "client_errors".into(),
                JsonValue::Array(
                    self.client_errors
                        .iter()
                        .map(|e| JsonValue::String(e.clone()))
                        .collect(),
                ),
            ),
        ]);
        if let (Some(r), JsonValue::Object(fields)) = (&self.recovery, &mut json) {
            fields.push((
                "recovery".into(),
                JsonValue::Object(vec![
                    (
                        "checkpoints_loaded".into(),
                        JsonValue::Number(r.checkpoints_loaded() as f64),
                    ),
                    (
                        "records_replayed".into(),
                        JsonValue::Number(r.records_replayed() as f64),
                    ),
                    (
                        "torn_tails".into(),
                        JsonValue::Number(r.torn_tails() as f64),
                    ),
                ]),
            ));
        }
        json
    }

    /// Human-readable run summary (metrics tables + verdict line).
    pub fn render(&self) -> String {
        let mut out = self.metrics.render_tables();
        out.push_str(&format!(
            "\nconsistency: {} | max retained during run: {} | retained after verify: {} (interval {})\n",
            if self.consistent {
                "ALL SHARDS CONSISTENT"
            } else {
                "DIVERGENCE DETECTED"
            },
            self.max_retained_during_run,
            self.retained_after_verify,
            self.config.checkpoint_interval,
        ));
        if let Some(r) = &self.recovery {
            out.push_str(&format!("{}\n", r.render()));
        }
        for e in &self.client_errors {
            out.push_str(&format!("client error: {e}\n"));
        }
        out
    }
}

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    splitmix64(*state)
}

/// The workload shape shared by every driver of a [`Kv`]
/// implementation: the in-process soak, E16's over-TCP soak and
/// `netbench` all describe their traffic with this and run it through
/// [`drive_clients`] — the transport is the only difference.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    /// Percentage of operations that are reads; the remainder splits
    /// 2:1 between `put` and `del`.
    pub read_pct: u32,
    /// Keys are drawn uniformly from `0..keyspace`.
    pub keyspace: u32,
    /// Seed for the per-worker operation streams.
    pub seed: u64,
    /// Operations per [`Kv::batch`] call; 1 issues plain
    /// `get`/`put`/`del` round trips.
    pub batch: usize,
}

/// What [`drive_clients`] brought back: the clients (still connected /
/// still holding their replicas, ready for verification) and the first
/// error each failed worker hit.
pub struct DriveOutcome<K> {
    /// The clients, in worker order.
    pub clients: Vec<K>,
    /// First error per worker that failed (empty on a clean run). A
    /// [`StoreError::Divergence`] here is the API surfacing broken
    /// consensus instead of returning wrong data.
    pub errors: Vec<StoreError>,
}

impl<K> DriveOutcome<K> {
    /// How many workers stopped on a divergence error.
    pub fn divergence_errors(&self) -> usize {
        self.errors
            .iter()
            .filter(|e| matches!(e, StoreError::Divergence { .. }))
            .count()
    }
}

/// Drive `clients` closed-loop against any [`Kv`] until `deadline`,
/// recording latencies into `metrics`. A worker that hits an error
/// stops (divergence is sticky — hammering a corrupted shard teaches
/// nothing) and its error is reported in the outcome. `during` runs
/// every ~20 ms on the coordinating thread while workers are live —
/// the soak samples retained log lengths there, E16 ramps fault knobs.
///
/// Time is read from a [`WallClock`]; tests and simulators that need
/// the deadline and latency stamps under their control use
/// [`drive_clients_with_clock`] directly.
pub fn drive_clients<K: Kv + Send>(
    clients: Vec<K>,
    mix_cfg: &WorkloadMix,
    deadline: Instant,
    metrics: &StoreMetrics,
    during: impl FnMut(),
) -> DriveOutcome<K> {
    let clock = WallClock::new();
    let deadline_nanos = deadline
        .saturating_duration_since(clock.origin())
        .as_nanos() as u64;
    drive_clients_with_clock(&clock, clients, mix_cfg, deadline_nanos, metrics, during)
}

/// [`drive_clients`] with the time source explicit: every deadline
/// check and latency stamp goes through `clock`, so a
/// [`ManualClock`](crate::ManualClock) makes the run's *duration* a
/// function of what the `during` hook does rather than of wall time.
/// `deadline_nanos` is an absolute reading on `clock`.
pub fn drive_clients_with_clock<K: Kv + Send>(
    clock: &dyn Clock,
    clients: Vec<K>,
    mix_cfg: &WorkloadMix,
    deadline_nanos: u64,
    metrics: &StoreMetrics,
    mut during: impl FnMut(),
) -> DriveOutcome<K> {
    assert!(mix_cfg.read_pct <= 100, "read_pct is a percentage");
    assert!(mix_cfg.batch >= 1, "batch of 0 operations makes no sense");
    let outcomes: Vec<(K, Option<StoreError>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(w, mut client)| {
                let mut rng = splitmix64(mix_cfg.seed ^ (w as u64) << 32);
                let keyspace = mix_cfg.keyspace.max(1);
                let read_pct = mix_cfg.read_pct;
                let batch = mix_cfg.batch;
                let metrics = &*metrics;
                scope.spawn(move || {
                    let mut error = None;
                    'work: while clock.now_nanos() < deadline_nanos {
                        if batch > 1 {
                            let ops: Vec<KvOp> = (0..batch)
                                .map(|_| random_op(&mut rng, keyspace, read_pct))
                                .collect();
                            let start = clock.now_nanos();
                            match client.batch(&ops) {
                                Ok(_) => metrics.batches.record_many(
                                    clock.now_nanos().saturating_sub(start),
                                    ops.len() as u64,
                                ),
                                Err(e) => {
                                    error = Some(e);
                                    break 'work;
                                }
                            }
                        } else {
                            let op = random_op(&mut rng, keyspace, read_pct);
                            let start = clock.now_nanos();
                            let (result, m) = match op {
                                KvOp::Get(k) => (client.get(k), &metrics.reads),
                                KvOp::Put(k, v) => (client.put(k, v), &metrics.writes),
                                KvOp::Del(k) => (client.del(k), &metrics.deletes),
                            };
                            match result {
                                Ok(_) => m.record(clock.now_nanos().saturating_sub(start)),
                                Err(e) => {
                                    error = Some(e);
                                    break 'work;
                                }
                            }
                        }
                    }
                    (client, error)
                })
            })
            .collect();
        while clock.now_nanos() < deadline_nanos {
            during();
            std::thread::sleep(Duration::from_millis(20));
        }
        workers.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut clients = Vec::with_capacity(outcomes.len());
    let mut errors = Vec::new();
    for (client, error) in outcomes {
        clients.push(client);
        errors.extend(error);
    }
    DriveOutcome { clients, errors }
}

fn random_op(rng: &mut u64, keyspace: u32, read_pct: u32) -> KvOp {
    let r = mix(rng);
    let key = (r >> 32) as u32 % keyspace;
    let dice = (r % 100) as u32;
    if dice < read_pct {
        KvOp::Get(key)
    } else if dice < read_pct + (100 - read_pct) * 2 / 3 {
        KvOp::Put(key, (r as u32) & KV_MAX)
    } else {
        KvOp::Del(key)
    }
}

/// Run one closed-loop soak per `config` and verify the outcome.
///
/// Workers issue operations back-to-back until the deadline; a sampler
/// in the main thread tracks the largest retained log length so the
/// report can show the checkpoint protocol holding memory bounded
/// while writers are live.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    try_run_soak(config).unwrap_or_else(|e| panic!("soak could not build its store: {e}"))
}

/// [`run_soak`], but recovery and configuration failures come back as
/// a typed [`RecoverError`] instead of a panic — the `soak` binary
/// turns a [`RecoverError::ReplayDivergence`] into a non-zero exit so
/// CI's kill-recover smoke can assert on it.
pub fn try_run_soak(config: &SoakConfig) -> Result<SoakReport, RecoverError> {
    assert!(config.threads >= 1, "need at least one worker");
    let store_config = StoreConfig::builder()
        .shards(config.shards)
        .backend(config.backend.clone())
        .fault_rate(config.fault_rate)
        .rotate_kinds(config.backend.injects_faults())
        .checkpoint_interval(config.checkpoint_interval)
        .combining(config.combining)
        .durability(config.durability.clone())
        .seed(config.seed)
        .build()
        .map_err(RecoverError::Config)?;
    let (store, recovery) = if config.recover {
        let (store, report) = Store::recover(store_config)?;
        (Arc::new(store), Some(report))
    } else {
        (Arc::new(Store::new(store_config)), None)
    };
    let metrics = Arc::new(StoreMetrics::default());
    let deadline = Instant::now() + Duration::from_secs_f64(config.secs);
    let mut max_retained = 0usize;

    let clients: Vec<StoreClient> = (0..config.threads).map(|_| store.client()).collect();
    let mix_cfg = WorkloadMix {
        read_pct: config.read_pct,
        keyspace: config.keyspace,
        seed: config.seed,
        batch: 1,
    };
    // The `during` hook samples retained length while workers run: live
    // evidence that checkpoint truncation keeps logs bounded.
    let outcome = drive_clients(clients, &mix_cfg, deadline, &metrics, || {
        max_retained = max_retained.max(store.max_retained_len());
    });
    let DriveOutcome {
        mut clients,
        errors,
    } = outcome;

    let elapsed = config.secs;
    max_retained = max_retained.max(store.max_retained_len());
    // Push any group-commit remainder to disk before judging the run:
    // the report's WAL counters must describe a log a crash right now
    // would recover from.
    store.flush_wal();
    let report: ConsistencyReport = store.verify(&mut clients);
    let consistency: Vec<ShardVerdict> = report
        .per_shard
        .iter()
        .map(|s| ShardVerdict {
            shard: s.shard,
            consistent: s.consistent,
            kind: store.fault_kind_label(s.shard),
            end_slot: s.end_slot,
            truncated: s.truncated_prefix,
            checkpoints: s.checkpoints,
        })
        .collect();
    let snapshot = metrics
        .snapshot(elapsed, store.shard_faults())
        .with_combining(store.combine_snapshot())
        .with_durability(store.durability_snapshot());
    let mut client_errors: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
    // A latched WAL I/O failure means the on-disk log stopped tracking
    // the in-memory state mid-run: the run is *not* durable, whatever
    // the replicas say, so it fails the report the same way divergence
    // does.
    let durable_ok = match store.durability_error() {
        Some(e) => {
            client_errors.push(format!("durability failure: {e}"));
            false
        }
        None => true,
    };
    Ok(SoakReport {
        config: SoakConfigEcho {
            threads: config.threads,
            shards: config.shards,
            secs: config.secs,
            fault_rate: config.fault_rate,
            backend: config.backend.name(),
            checkpoint_interval: config.checkpoint_interval,
            combining: config.combining,
            durable: config.durability.enabled(),
            group_commit: config.durability.group_commit,
            seed: config.seed,
        },
        metrics: snapshot,
        consistency,
        recovery,
        max_retained_during_run: max_retained,
        retained_after_verify: store.max_retained_len(),
        consistent: report.all_consistent() && errors.is_empty() && durable_ok,
        client_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn manual_clock_controls_drive_deadline_and_stamps() {
        let store = Arc::new(Store::new(
            StoreConfig::builder().shards(2).build().unwrap(),
        ));
        let metrics = StoreMetrics::default();
        let clock = ManualClock::new();
        let mix_cfg = WorkloadMix {
            read_pct: 50,
            keyspace: 64,
            seed: 7,
            batch: 1,
        };
        let clients: Vec<StoreClient> = (0..2).map(|_| store.client()).collect();
        // Advance the clock only after the workers have demonstrably run
        // ops, so the loop provably ended because *we* moved time.
        let outcome = drive_clients_with_clock(&clock, clients, &mix_cfg, 1_000, &metrics, || {
            if metrics.reads.count() + metrics.writes.count() + metrics.deletes.count() > 100 {
                clock.set(1_000);
            }
        });
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert!(
            metrics.reads.count() + metrics.writes.count() + metrics.deletes.count() > 100,
            "workers never ran"
        );
        // Latency stamps went through the manual clock: no stamp can
        // exceed the 1 000 simulated nanoseconds the whole run spanned
        // (an op in flight across the jump sees exactly that), and the
        // typical op — clock motionless — records zero. The histogram
        // reports log₂-bucket upper bounds: 0 ns ⇒ 2, ≤1 000 ns ⇒ 1 024.
        assert!(metrics.reads.latency().quantile(1.0) <= 1_024);
        assert!(metrics.writes.latency().quantile(1.0) <= 1_024);
        assert!(metrics.reads.latency().quantile(0.5) <= 2);
    }

    #[test]
    fn soak_report_json_echoes_seed() {
        let report = run_soak(&SoakConfig {
            threads: 1,
            shards: 2,
            secs: 0.05,
            seed: 0xDEAD_BEEF,
            ..SoakConfig::default()
        });
        assert_eq!(report.config.seed, 0xDEAD_BEEF);
        let json = report.to_json().render();
        assert!(json.contains("\"seed\""), "{json}");
    }

    #[test]
    fn short_soak_on_robust_backend_is_consistent() {
        let report = run_soak(&SoakConfig {
            threads: 2,
            shards: 2,
            secs: 0.3,
            checkpoint_interval: 16,
            ..SoakConfig::default()
        });
        assert!(report.consistent, "robust soak diverged");
        assert!(report.metrics.total_ops() > 0, "no operations completed");
        let json = report.to_json().render();
        assert!(json.contains("\"consistent\": true"));
    }

    #[test]
    fn short_combining_soak_is_consistent_and_records_counters() {
        let report = run_soak(&SoakConfig {
            threads: 2,
            shards: 2,
            secs: 0.3,
            checkpoint_interval: 16,
            combining: true,
            ..SoakConfig::default()
        });
        assert!(report.consistent, "combining soak diverged");
        let c = report
            .metrics
            .combining
            .as_ref()
            .expect("combining counters missing from snapshot");
        assert!(c.passes > 0, "no combine passes recorded");
        let json = report.to_json().render();
        assert!(json.contains("\"combining\": true"), "{json}");
        assert!(json.contains("fastpath_hit_rate"), "{json}");
    }

    #[test]
    fn durable_soak_then_recover_soak_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "ff-soak-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = SoakConfig {
            threads: 2,
            shards: 2,
            secs: 0.2,
            checkpoint_interval: 16,
            durability: DurabilityConfig::in_dir(&dir),
            ..SoakConfig::default()
        };
        let report = run_soak(&durable);
        assert!(report.consistent, "durable soak diverged");
        let d = report
            .metrics
            .durability
            .as_ref()
            .expect("durability counters missing from snapshot");
        assert!(d.records_logged > 0, "WAL recorded nothing");
        assert!(d.fsyncs > 0, "WAL never fsynced");
        let json = report.to_json().render();
        assert!(json.contains("\"durable\": true"), "{json}");

        let recovered = run_soak(&SoakConfig {
            recover: true,
            ..durable.clone()
        });
        assert!(recovered.consistent, "recovered soak diverged");
        let r = recovered
            .recovery
            .as_ref()
            .expect("recovery report missing");
        assert!(
            r.records_replayed() + r.checkpoints_loaded() > 0,
            "recovery found nothing despite a durable first run"
        );
        let json = recovered.to_json().render();
        assert!(json.contains("\"recovery\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reliable_soak_records_no_faults() {
        let report = run_soak(&SoakConfig {
            threads: 1,
            shards: 2,
            secs: 0.2,
            backend: Backend::reliable(),
            ..SoakConfig::default()
        });
        assert!(report.consistent);
        assert_eq!(
            report
                .metrics
                .faults
                .iter()
                .map(|f| f.observable)
                .sum::<u64>(),
            0
        );
    }
}
