//! Per-shard flat-combining cores: batched log appends plus a
//! wait-free read fast path.
//!
//! The universal construction pays a full log pass (one consensus
//! decision, one replay loop) *per operation*. Node-replication-style
//! combining collapses that: clients **publish** pending operations
//! into a per-shard announce array, one client becomes the
//! **combiner**, drains everything pending, and drives the whole drain
//! through the shard's [`UniversalLog`] as a *single* batched append
//! ([`Handle::invoke_many`] — one decided slot carrying a multi-op
//! record, decoded and applied op-by-op on replay, so `Replicated`
//! semantics, checkpoints and digests are unchanged). Results are
//! distributed back to the waiters through their slots.
//!
//! # The protocol
//!
//! Each client owns one [`Slot`] per shard. A slot walks
//! `EMPTY → PENDING → CLAIMED → DONE/FAILED → EMPTY`:
//!
//! * **publish** — the owner writes its ops and releases the slot to
//!   `PENDING`.
//! * **claim** — a combiner CASes `PENDING → CLAIMED` per slot. Claims
//!   are *individually* atomic and taken **without holding any lock**,
//!   so two racing combiners split the pending set instead of
//!   duplicating it, and a combiner that stalls after claiming can
//!   never strand ops it did *not* claim.
//! * **execute** — the combiner locks the shard's shared core replica,
//!   appends one batch record, and unlocks.
//! * **distribute** — per-slot results are written and the slot is
//!   released to `DONE` (or `FAILED` when the shard's log holds
//!   divergence evidence — an error, never wrong data).
//!
//! Combiner election is an *advisory* flag: the common case has one
//! combiner per shard, but a waiter whose op stays unclaimed too long
//! **forces** its own pass, bypassing the flag. Correctness never
//! depends on the flag — only the per-slot claim CAS and the log's own
//! consensus cells order operations. Tolerated *cell* faults are
//! absorbed inside the log (the robust constructions); a combiner that
//! dies between claiming and distributing parks exactly the ops it
//! claimed (their owners' calls simply do not return) — the same
//! envelope as NR's combiner, and the crash-recovery roadmap item.
//!
//! # The read fast path
//!
//! Every combine pass advances the shared core replica, so the replica
//! is a *versioned snapshot* `(applied_to, state)`. A GET first
//! observes the shard's tail (`slots_created`) and then answers from
//! the core replica **iff** `applied_to >= tail` — no log pass, no
//! consensus invocation, just a read lock and a map lookup. When
//! freshness cannot be proven (the replica lags the observed tail) the
//! GET falls back to the combined path and linearizes through the log
//! like any other op. The freshness rule is checked exhaustively by
//! `ff-sim`'s combining model.

use crate::map::KvMap;
use crate::metrics::Histogram;
use ff_universal::{Handle, UniversalLog};
use ff_workload::JsonValue;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Slot states (see the module docs for the lifecycle).
const EMPTY: u32 = 0;
const PENDING: u32 = 1;
const CLAIMED: u32 = 2;
const DONE: u32 = 3;
const FAILED: u32 = 4;

/// Spins in the wait loop before a waiter forces its own combine pass
/// past the advisory flag (the combiner-stall takeover path).
const FORCE_AFTER: u32 = 4096;

/// One client's announce slot on one shard.
///
/// Only the owner writes `ops` (before releasing to `PENDING`) and only
/// the claiming combiner reads them (after winning the claim CAS), so
/// the mutexes are uncontended in time; the atomic `state` carries the
/// release/acquire edges between owner and combiner.
pub(crate) struct Slot {
    state: AtomicU32,
    ops: Mutex<Vec<u64>>,
    results: Mutex<Vec<u64>>,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: AtomicU32::new(EMPTY),
            ops: Mutex::new(Vec::new()),
            results: Mutex::new(Vec::new()),
        })
    }
}

/// Live counters of the combining layer, shared by every shard core of
/// one store. Everything is a relaxed atomic increment — safe to leave
/// on during a soak.
#[derive(Debug, Default)]
pub struct CombineStats {
    passes: AtomicU64,
    combined_ops: AtomicU64,
    batch_sizes: Histogram,
    max_batch: AtomicU64,
    fastpath_hits: AtomicU64,
    fastpath_misses: AtomicU64,
}

impl CombineStats {
    fn record_pass(&self, ops: usize) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        self.combined_ops.fetch_add(ops as u64, Ordering::Relaxed);
        self.batch_sizes.record(ops as u64);
        self.max_batch.fetch_max(ops as u64, Ordering::Relaxed);
    }

    fn record_fastpath(&self, hit: bool) {
        if hit {
            self.fastpath_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fastpath_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> CombineSnapshot {
        let passes = self.passes.load(Ordering::Relaxed);
        let combined_ops = self.combined_ops.load(Ordering::Relaxed);
        let hits = self.fastpath_hits.load(Ordering::Relaxed);
        let misses = self.fastpath_misses.load(Ordering::Relaxed);
        CombineSnapshot {
            passes,
            combined_ops,
            mean_batch: if passes > 0 {
                combined_ops as f64 / passes as f64
            } else {
                0.0
            },
            p50_batch: self.batch_sizes.quantile(0.50),
            p95_batch: self.batch_sizes.quantile(0.95),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            fastpath_hits: hits,
            fastpath_misses: misses,
        }
    }
}

/// Point-in-time summary of [`CombineStats`], ready for reports/JSON.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CombineSnapshot {
    /// Combine passes (batched log appends).
    pub passes: u64,
    /// Operations drained through combiners.
    pub combined_ops: u64,
    /// Mean ops per pass.
    pub mean_batch: f64,
    /// Median batch size (upper bucket bound).
    pub p50_batch: u64,
    /// 95th-percentile batch size (upper bucket bound).
    pub p95_batch: u64,
    /// Largest single pass.
    pub max_batch: u64,
    /// GETs answered from a fresh replica snapshot (no log pass).
    pub fastpath_hits: u64,
    /// GETs that fell back to the combined path (freshness unprovable).
    pub fastpath_misses: u64,
}

impl CombineSnapshot {
    /// Fraction of GETs the wait-free read path answered.
    pub fn hit_rate(&self) -> f64 {
        let total = self.fastpath_hits + self.fastpath_misses;
        if total == 0 {
            0.0
        } else {
            self.fastpath_hits as f64 / total as f64
        }
    }

    /// Serialize for bench JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("passes".into(), JsonValue::Number(self.passes as f64)),
            (
                "combined_ops".into(),
                JsonValue::Number(self.combined_ops as f64),
            ),
            ("mean_batch".into(), JsonValue::Number(self.mean_batch)),
            ("p50_batch".into(), JsonValue::Number(self.p50_batch as f64)),
            ("p95_batch".into(), JsonValue::Number(self.p95_batch as f64)),
            ("max_batch".into(), JsonValue::Number(self.max_batch as f64)),
            (
                "fastpath_hits".into(),
                JsonValue::Number(self.fastpath_hits as f64),
            ),
            (
                "fastpath_misses".into(),
                JsonValue::Number(self.fastpath_misses as f64),
            ),
            (
                "fastpath_hit_rate".into(),
                JsonValue::Number(self.hit_rate()),
            ),
        ])
    }
}

/// One shard's combining core: the announce-slot registry, the shared
/// core replica, and the advisory combiner flag.
pub(crate) struct ShardCore {
    shard: usize,
    log: Arc<UniversalLog>,
    /// The shared replica every combine pass drives forward. Write =
    /// combiner executing; read = wait-free GET snapshot.
    replica: RwLock<Handle<KvMap>>,
    /// Registered announce slots (one per live combining client).
    slots: RwLock<Vec<Arc<Slot>>>,
    /// Advisory single-combiner flag; correctness never depends on it.
    combiner_busy: AtomicBool,
    stats: Arc<CombineStats>,
    /// Test-only combiner-stall injection point, fired between the
    /// claim phase and the execute phase.
    #[cfg(test)]
    park: Mutex<Option<ParkHook>>,
}

/// Test-only hook parked between claim and execute (takes the shard).
#[cfg(test)]
type ParkHook = Box<dyn Fn(usize) + Send + Sync>;

impl ShardCore {
    pub(crate) fn new(
        shard: usize,
        log: Arc<UniversalLog>,
        pid: u16,
        stats: Arc<CombineStats>,
    ) -> Self {
        let replica = Handle::new(Arc::clone(&log), pid, KvMap::default());
        ShardCore {
            shard,
            log,
            replica: RwLock::new(replica),
            slots: RwLock::new(Vec::new()),
            combiner_busy: AtomicBool::new(false),
            stats,
            #[cfg(test)]
            park: Mutex::new(None),
        }
    }

    /// Register a new client's announce slot.
    pub(crate) fn register(&self) -> Arc<Slot> {
        let slot = Slot::new();
        self.slots.write().push(Arc::clone(&slot));
        slot
    }

    /// Remove a dropped client's slot (it must be `EMPTY` — combining
    /// calls are synchronous, so a live call pins the client).
    pub(crate) fn unregister(&self, slot: &Arc<Slot>) {
        self.slots.write().retain(|s| !Arc::ptr_eq(s, slot));
    }

    /// Catch the core replica up to the end of the shard's log (used by
    /// verification). Returns the slots applied.
    pub(crate) fn catch_up(&self) -> usize {
        self.replica.write().catch_up()
    }

    /// Run `f` over the caught-up core replica (verification only).
    pub(crate) fn with_replica<R>(&self, f: impl FnOnce(&Handle<KvMap>) -> R) -> R {
        f(&self.replica.read())
    }

    #[cfg(test)]
    pub(crate) fn set_park_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        *self.park.lock() = Some(Box::new(hook));
    }

    fn park_point(&self) {
        #[cfg(test)]
        {
            // Take the hook out and *drop the lock* before running it:
            // the hook blocks (that is its job), and another combiner
            // must still be able to pass this point.
            let hook = self.park.lock().take();
            if let Some(hook) = hook {
                hook(self.shard);
            }
        }
    }

    /// The wait-free GET snapshot: observe the shard's tail, then
    /// answer from the core replica iff it has provably applied at
    /// least that far. `Ok(None)`-style misses return `None` (caller
    /// falls back to the combined path); divergence evidence surfaces
    /// as `Some(Err(shard))` so a corrupted shard refuses rather than
    /// answering from a broken log.
    pub(crate) fn fast_get(&self, key: u32) -> Option<Result<Option<u32>, usize>> {
        if self.log.divergence_detected() {
            return Some(Err(self.shard));
        }
        // `slots_created` counts every cell ever minted — a conservative
        // upper bound on the decided tail, so freshness proven against
        // it covers every operation that completed before this read
        // began (a completed op's slot is decided, hence created).
        let tail = self.log.slots_created();
        let replica = self.replica.read();
        if replica.applied_to() >= tail {
            self.stats.record_fastpath(true);
            Some(Ok(replica.state().peek(key)))
        } else {
            drop(replica);
            self.stats.record_fastpath(false);
            None
        }
    }

    /// Publish `ops` as one pending unit and wait for a combiner
    /// (possibly this caller) to execute and deliver. Returns one
    /// response word per op, or the shard index on divergence.
    pub(crate) fn submit(&self, mine: &Arc<Slot>, ops: &[u64]) -> Result<Vec<u64>, usize> {
        debug_assert!(!ops.is_empty());
        {
            let mut slot_ops = mine.ops.lock();
            slot_ops.clear();
            slot_ops.extend_from_slice(ops);
        }
        mine.state.store(PENDING, Ordering::Release);
        let mut spins = 0u32;
        loop {
            match mine.state.load(Ordering::Acquire) {
                DONE => {
                    let out = std::mem::take(&mut *mine.results.lock());
                    mine.state.store(EMPTY, Ordering::Release);
                    return Ok(out);
                }
                FAILED => {
                    mine.state.store(EMPTY, Ordering::Release);
                    return Err(self.shard);
                }
                // Unclaimed: try to combine it ourselves — advisory
                // first, forced once the current combiner has had
                // ample time (it may have stalled after claiming a
                // disjoint set; our op is still up for grabs).
                PENDING if self.combine(false) || (spins > FORCE_AFTER && self.combine(true)) => {
                    continue;
                }
                // CLAIMED: a combiner owns it and will deliver.
                _ => {}
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// One combine pass: claim everything pending, execute it as a
    /// single batched log append, distribute results. Returns whether
    /// any ops were drained. `force` bypasses the advisory flag (the
    /// stalled-combiner takeover path).
    fn combine(&self, force: bool) -> bool {
        if !force
            && self
                .combiner_busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            return false;
        }
        // Claim phase — lock-free with respect to other combiners: each
        // slot moves PENDING → CLAIMED by CAS, so racing combiners
        // split the pending set and no op is taken twice.
        let mut claimed: Vec<Arc<Slot>> = Vec::new();
        {
            let slots = self.slots.read();
            for s in slots.iter() {
                if s.state
                    .compare_exchange(PENDING, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    claimed.push(Arc::clone(s));
                }
            }
        }
        self.park_point();
        if claimed.is_empty() {
            if !force {
                self.combiner_busy.store(false, Ordering::Release);
            }
            return false;
        }
        let mut words: Vec<u64> = Vec::new();
        let mut counts: Vec<usize> = Vec::with_capacity(claimed.len());
        for s in &claimed {
            let ops = s.ops.lock();
            words.extend_from_slice(&ops);
            counts.push(ops.len());
        }
        // Execute phase — one decided slot for the whole drain.
        let (resps, diverged) = {
            let mut replica = self.replica.write();
            let r = replica.invoke_many(&words);
            (r, self.log.divergence_detected())
        };
        self.stats.record_pass(words.len());
        // Distribute phase.
        let mut off = 0;
        for (s, n) in claimed.iter().zip(&counts) {
            {
                let mut out = s.results.lock();
                out.clear();
                out.extend_from_slice(&resps[off..off + n]);
            }
            off += n;
            s.state
                .store(if diverged { FAILED } else { DONE }, Ordering::Release);
        }
        if !force {
            self.combiner_busy.store(false, Ordering::Release);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Kv, KvOp, Store, StoreConfig, StoreError};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn combining_store(backend: Backend, shards: usize) -> Store {
        Store::new(
            StoreConfig::builder()
                .shards(shards)
                .backend(backend)
                .combining(true)
                .checkpoint_interval(16)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn combined_round_trip_and_verify() {
        let store = combining_store(Backend::Reliable, 4);
        let mut c = store.client();
        assert_eq!(c.put(1, 10).unwrap(), None);
        assert_eq!(c.put(1, 20).unwrap(), Some(10));
        assert_eq!(c.get(1).unwrap(), Some(20));
        assert_eq!(c.del(1).unwrap(), Some(20));
        assert_eq!(c.get(1).unwrap(), None);
        assert!(store.verify(&mut [c]).all_consistent());
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.passes > 0, "no combine passes recorded");
    }

    #[test]
    fn read_fast_path_hits_when_replica_is_fresh() {
        let store = combining_store(Backend::Reliable, 1);
        let mut c = store.client();
        c.put(7, 70).unwrap();
        // The put's own combine pass advanced the core replica to the
        // tail, so this GET must be a snapshot hit, not a log pass.
        let slots_before = store.shard_log(0).slots_created();
        assert_eq!(c.get(7).unwrap(), Some(70));
        assert_eq!(
            store.shard_log(0).slots_created(),
            slots_before,
            "fast-path GET appended to the log"
        );
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.fastpath_hits >= 1, "{stats:?}");
    }

    #[test]
    fn concurrent_combined_clients_stay_consistent_under_faults() {
        let store = std::sync::Arc::new(Store::new(
            StoreConfig::builder()
                .shards(4)
                .backend(Backend::Robust)
                .rotate_kinds(true)
                .combining(true)
                .checkpoint_interval(16)
                .build()
                .unwrap(),
        ));
        let mut clients: Vec<_> = std::thread::scope(|scope| {
            (0..4u32)
                .map(|w| {
                    let store = std::sync::Arc::clone(&store);
                    scope.spawn(move || {
                        let mut c = store.client();
                        for i in 0..300u32 {
                            let key = (w * 1000 + i) % 97;
                            match i % 4 {
                                0 => {
                                    c.put(key, i).unwrap();
                                }
                                3 => {
                                    c.del(key).unwrap();
                                }
                                _ => {
                                    c.get(key).unwrap();
                                }
                            }
                        }
                        c
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let report = store.verify(&mut clients);
        assert!(
            report.all_consistent(),
            "diverged: {:?}",
            report.diverged_shards()
        );
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.combined_ops > 0);
    }

    #[test]
    fn parked_combiner_is_taken_over_without_dropping_ops() {
        // Adversary: client A claims its op and parks mid-drain (between
        // claim and execute). Client B must take over — B's op was not
        // claimed — complete, and when A resumes, A's claimed op must
        // complete too: nothing dropped, nothing duplicated.
        let store = std::sync::Arc::new(combining_store(Backend::Reliable, 1));
        let gate = std::sync::Arc::new(Barrier::new(2));
        let parked = std::sync::Arc::new(AtomicUsize::new(0));
        {
            let gate = std::sync::Arc::clone(&gate);
            let parked = std::sync::Arc::clone(&parked);
            store.shard_core_for_tests(0).set_park_hook(move |_| {
                parked.fetch_add(1, Ordering::SeqCst);
                gate.wait(); // .. b published
                gate.wait(); // .. b completed
            });
        }
        let a_result = std::thread::scope(|scope| {
            let a = {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    let mut a = store.client();
                    // The hook is armed: A's own combine pass parks
                    // after claiming A's put.
                    a.put(1, 11).unwrap()
                })
            };
            // Wait until A is parked holding its claim.
            while parked.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            let mut b = store.client();
            gate.wait();
            // B combines for itself despite A's advisory flag being
            // held (the forced-takeover path) — B must complete while A
            // is still parked.
            assert_eq!(b.put(2, 22).unwrap(), None);
            assert_eq!(b.get(2).unwrap(), Some(22));
            gate.wait(); // release A
            a.join().unwrap()
        });
        assert_eq!(a_result, None, "A's put must have applied exactly once");
        let mut c = store.client();
        assert_eq!(c.get(1).unwrap(), Some(11));
        assert_eq!(c.get(2).unwrap(), Some(22));
        assert!(store.verify(&mut [c]).all_consistent());
    }

    #[test]
    fn combined_batch_matches_uncombined_batch_results() {
        // Deterministic cross-check (the proptest in lib.rs covers the
        // randomized version across backends).
        let ops: Vec<KvOp> = (0..40u32)
            .flat_map(|k| [KvOp::Put(k, k + 1), KvOp::Get(k), KvOp::Del(k)])
            .collect();
        let run = |combining: bool| -> Vec<Option<u32>> {
            let store = Store::new(
                StoreConfig::builder()
                    .shards(4)
                    .backend(Backend::Reliable)
                    .combining(combining)
                    .build()
                    .unwrap(),
            );
            let mut c = store.client();
            let out = c.batch(&ops).unwrap();
            assert!(store.verify(&mut [c]).all_consistent());
            out
        };
        assert_eq!(run(true), run(false));
    }

    /// The acceptance claim, kind by kind: combining changes the
    /// submission path, not the tolerance envelope — under each fault
    /// kind the robust backend tolerates, concurrent combining clients
    /// end with every replica verified consistent.
    #[test]
    fn every_tolerated_fault_kind_verifies_with_combining() {
        for kind in [
            ff_spec::FaultKind::Overriding,
            ff_spec::FaultKind::Silent,
            ff_spec::FaultKind::Arbitrary,
        ] {
            let store = std::sync::Arc::new(Store::new(
                StoreConfig::builder()
                    .shards(2)
                    .backend(Backend::Robust)
                    .fault(crate::FaultConfig {
                        kind,
                        rate: 0.3,
                        // Silent faults are only tolerable on a finite
                        // budget (unbounded silent = nontermination).
                        t: ff_spec::Bound::Finite(3),
                        ..crate::FaultConfig::default()
                    })
                    .combining(true)
                    .checkpoint_interval(16)
                    .build()
                    .unwrap(),
            ));
            let mut clients: Vec<_> = std::thread::scope(|scope| {
                (0..3u32)
                    .map(|w| {
                        let store = std::sync::Arc::clone(&store);
                        scope.spawn(move || {
                            let mut c = store.client();
                            for i in 0..150u32 {
                                let key = (w * 500 + i) % 61;
                                match i % 3 {
                                    0 => {
                                        c.put(key, i).unwrap();
                                    }
                                    1 => {
                                        c.get(key).unwrap();
                                    }
                                    _ => {
                                        c.del(key).unwrap();
                                    }
                                }
                            }
                            c
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let report = store.verify(&mut clients);
            assert!(
                report.all_consistent(),
                "{kind:?}: diverged shards {:?}",
                report.diverged_shards()
            );
        }
    }

    #[test]
    fn corruption_is_detected_through_the_combined_path() {
        // Arbitrary-faulting naive cells corrupt the log even against a
        // single serialized proposer (combining funnels every propose
        // through the core replica, so overriding faults — which need
        // racing proposes — cannot fire here). Combining must never
        // hide the corruption: it surfaces mid-run as a `Divergence`
        // error (a decided cell resolves to junk with no announce
        // record) or at verification.
        let mut saw_detection = false;
        for seed in 0..20 {
            let store = std::sync::Arc::new(Store::new(
                StoreConfig::builder()
                    .shards(1)
                    .backend(Backend::Naive)
                    .fault(crate::FaultConfig {
                        kind: ff_spec::FaultKind::Arbitrary,
                        rate: 1.0,
                        ..crate::FaultConfig::default()
                    })
                    .combining(true)
                    .checkpoint_interval(8)
                    .seed(seed)
                    .build()
                    .unwrap(),
            ));
            let errors: Vec<Option<StoreError>> = std::thread::scope(|scope| {
                (0..3u32)
                    .map(|w| {
                        let store = std::sync::Arc::clone(&store);
                        scope.spawn(move || {
                            let mut c = store.client();
                            for i in 0..40 {
                                if let Err(e) = c.put((w * 100 + i) % 50, i) {
                                    return Some(e);
                                }
                            }
                            None
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let mid_run = errors
                .iter()
                .flatten()
                .any(|e| matches!(e, StoreError::Divergence { .. }));
            let at_verify = !store.verify(&mut []).all_consistent();
            if mid_run || at_verify {
                saw_detection = true;
                break;
            }
        }
        assert!(
            saw_detection,
            "naive cells at 100% fault rate were never detected via combining"
        );
    }
}
