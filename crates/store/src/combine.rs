//! Per-shard flat-combining cores: batched log appends plus a
//! wait-free read fast path.
//!
//! The universal construction pays a full log pass (one consensus
//! decision, one replay loop) *per operation*. Node-replication-style
//! combining collapses that: clients **publish** pending operations
//! into a per-shard announce array, one client becomes the
//! **combiner**, drains everything pending, and drives the whole drain
//! through the shard's [`UniversalLog`] as a *single* batched append
//! ([`Handle::invoke_many`] — one decided slot carrying a multi-op
//! record, decoded and applied op-by-op on replay, so `Replicated`
//! semantics, checkpoints and digests are unchanged). Results are
//! distributed back to the waiters through their slots.
//!
//! # The protocol
//!
//! Each client owns one [`Slot`] per shard. A slot walks
//! `EMPTY → PENDING → CLAIMED → DONE/FAILED → EMPTY`:
//!
//! * **publish** — the owner writes its ops and releases the slot to
//!   `PENDING`.
//! * **claim** — a combiner CASes `PENDING → CLAIMED` per slot. Claims
//!   are *individually* atomic and taken **without holding any lock**,
//!   so two racing combiners split the pending set instead of
//!   duplicating it, and a combiner that stalls after claiming can
//!   never strand ops it did *not* claim.
//! * **execute** — the combiner locks the shard's shared core replica,
//!   appends one batch record, and unlocks.
//! * **distribute** — per-slot results are written and the slot is
//!   released to `DONE` (or `FAILED` when the shard's log holds
//!   divergence evidence — an error, never wrong data).
//!
//! Combiner election is an *advisory* flag: the common case has one
//! combiner per shard, but a waiter whose op stays unclaimed too long
//! **forces** its own pass, bypassing the flag. Correctness never
//! depends on the flag — only the per-slot claim CAS and the log's own
//! consensus cells order operations. Tolerated *cell* faults are
//! absorbed inside the log (the robust constructions).
//!
//! # Combiner crash recovery: the lease/epoch rule
//!
//! A combiner that dies (or stalls indefinitely) between claiming and
//! executing would park exactly the ops it claimed — NR's envelope.
//! The slot word therefore packs an **epoch** next to the state, and
//! three CAS rules close the hole:
//!
//! * **claim** — `(PENDING, e) → (CLAIMED, e)`.
//! * **reclaim** — after a bound, the *owner* of a still-`CLAIMED` slot
//!   takes its op back: `(CLAIMED, e) → (PENDING, e+1)`. The op is
//!   republished under a fresh epoch, up for grabs by any live combiner
//!   (the owner itself forces a pass if the advisory flag is wedged by
//!   the dead combiner).
//! * **seal** — the combiner, already holding the replica write lock
//!   and immediately before executing, pins each claim:
//!   `(CLAIMED, e) → (SEALED, e)`. A slot whose seal CAS fails was
//!   reclaimed and is dropped from the batch.
//!
//! Seal and reclaim race on the *same* word `(CLAIMED, e)`, so exactly
//! one wins: seal-wins ⇒ the original pass applies the op (the owner
//! keeps waiting); reclaim-wins ⇒ the op is excluded from the slow
//! pass's batch and applied exactly once by a later one. Result
//! distribution happens inside the same replica-lock critical section
//! as the seal and the append, so no schedule can observe a sealed but
//! undelivered slot. The rule is model-checked exhaustively by
//! `ff-sim`'s combining model (combiner-crash transition + reclaim:
//! no lost live ops, no double-apply; the seal-less variant provably
//! double-applies), and the DST kill-the-combiner scenario fails at a
//! pinned seed with [`StoreConfig::combiner_lease`](crate::StoreConfig::combiner_lease)
//! off and passes with it on.
//!
//! # The read fast path
//!
//! Every combine pass advances the shared core replica, so the replica
//! is a *versioned snapshot* `(applied_to, state)`. A GET first
//! observes the shard's tail (`slots_created`) and then answers from
//! the core replica **iff** `applied_to >= tail` — no log pass, no
//! consensus invocation, just a read lock and a map lookup. When
//! freshness cannot be proven (the replica lags the observed tail) the
//! GET falls back to the combined path and linearizes through the log
//! like any other op. The freshness rule is checked exhaustively by
//! `ff-sim`'s combining model.

use crate::map::KvMap;
use crate::metrics::Histogram;
use ff_universal::{Handle, UniversalLog};
use ff_workload::JsonValue;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Slot states (see the module docs for the lifecycle). The slot word
/// packs `state | epoch << STATE_BITS`; the epoch advances only on a
/// reclaim, which is what lets the seal CAS reject a stale claim.
const EMPTY: u32 = 0;
const PENDING: u32 = 1;
const CLAIMED: u32 = 2;
const SEALED: u32 = 3;
const DONE: u32 = 4;
const FAILED: u32 = 5;

const STATE_BITS: u32 = 3;
const STATE_MASK: u32 = (1 << STATE_BITS) - 1;

#[inline]
fn pack(state: u32, epoch: u32) -> u32 {
    debug_assert!(state <= STATE_MASK);
    state | epoch << STATE_BITS
}

#[inline]
fn state_of(word: u32) -> u32 {
    word & STATE_MASK
}

#[inline]
fn epoch_of(word: u32) -> u32 {
    word >> STATE_BITS
}

/// Spins in the wait loop before a waiter forces its own combine pass
/// past the advisory flag (the combiner-stall takeover path).
const FORCE_AFTER: u32 = 4096;

/// One client's announce slot on one shard.
///
/// Only the owner writes `ops` (before releasing to `PENDING`) and only
/// the claiming combiner reads them (after winning the claim CAS), so
/// the mutexes are uncontended in time; the atomic `state` word (packed
/// state + epoch) carries the release/acquire edges between owner and
/// combiner.
pub(crate) struct Slot {
    state: AtomicU32,
    ops: Mutex<Vec<u64>>,
    results: Mutex<Vec<u64>>,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: AtomicU32::new(EMPTY),
            ops: Mutex::new(Vec::new()),
            results: Mutex::new(Vec::new()),
        })
    }
}

/// Live counters of the combining layer, shared by every shard core of
/// one store. Everything is a relaxed atomic increment — safe to leave
/// on during a soak.
#[derive(Debug, Default)]
pub struct CombineStats {
    passes: AtomicU64,
    combined_ops: AtomicU64,
    batch_sizes: Histogram,
    max_batch: AtomicU64,
    fastpath_hits: AtomicU64,
    fastpath_misses: AtomicU64,
    reclaims: AtomicU64,
}

impl CombineStats {
    fn record_pass(&self, ops: usize) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        self.combined_ops.fetch_add(ops as u64, Ordering::Relaxed);
        self.batch_sizes.record(ops as u64);
        self.max_batch.fetch_max(ops as u64, Ordering::Relaxed);
    }

    fn record_fastpath(&self, hit: bool) {
        if hit {
            self.fastpath_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fastpath_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_reclaim(&self) {
        self.reclaims.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> CombineSnapshot {
        let passes = self.passes.load(Ordering::Relaxed);
        let combined_ops = self.combined_ops.load(Ordering::Relaxed);
        let hits = self.fastpath_hits.load(Ordering::Relaxed);
        let misses = self.fastpath_misses.load(Ordering::Relaxed);
        CombineSnapshot {
            passes,
            combined_ops,
            mean_batch: if passes > 0 {
                combined_ops as f64 / passes as f64
            } else {
                0.0
            },
            p50_batch: self.batch_sizes.quantile(0.50),
            p95_batch: self.batch_sizes.quantile(0.95),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            fastpath_hits: hits,
            fastpath_misses: misses,
            reclaims: self.reclaims.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time summary of [`CombineStats`], ready for reports/JSON.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CombineSnapshot {
    /// Combine passes (batched log appends).
    pub passes: u64,
    /// Operations drained through combiners.
    pub combined_ops: u64,
    /// Mean ops per pass.
    pub mean_batch: f64,
    /// Median batch size (upper bucket bound).
    pub p50_batch: u64,
    /// 95th-percentile batch size (upper bucket bound).
    pub p95_batch: u64,
    /// Largest single pass.
    pub max_batch: u64,
    /// GETs answered from a fresh replica snapshot (no log pass).
    pub fastpath_hits: u64,
    /// GETs that fell back to the combined path (freshness unprovable).
    pub fastpath_misses: u64,
    /// Ops taken back from a stalled or dead combiner by their owner
    /// (the lease/epoch reclaim rule firing).
    pub reclaims: u64,
}

impl CombineSnapshot {
    /// Fraction of GETs the wait-free read path answered.
    pub fn hit_rate(&self) -> f64 {
        let total = self.fastpath_hits + self.fastpath_misses;
        if total == 0 {
            0.0
        } else {
            self.fastpath_hits as f64 / total as f64
        }
    }

    /// Serialize for bench JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("passes".into(), JsonValue::Number(self.passes as f64)),
            (
                "combined_ops".into(),
                JsonValue::Number(self.combined_ops as f64),
            ),
            ("mean_batch".into(), JsonValue::Number(self.mean_batch)),
            ("p50_batch".into(), JsonValue::Number(self.p50_batch as f64)),
            ("p95_batch".into(), JsonValue::Number(self.p95_batch as f64)),
            ("max_batch".into(), JsonValue::Number(self.max_batch as f64)),
            (
                "fastpath_hits".into(),
                JsonValue::Number(self.fastpath_hits as f64),
            ),
            (
                "fastpath_misses".into(),
                JsonValue::Number(self.fastpath_misses as f64),
            ),
            (
                "fastpath_hit_rate".into(),
                JsonValue::Number(self.hit_rate()),
            ),
            ("reclaims".into(), JsonValue::Number(self.reclaims as f64)),
        ])
    }
}

/// One shard's combining core: the announce-slot registry, the shared
/// core replica, and the advisory combiner flag.
pub(crate) struct ShardCore {
    shard: usize,
    log: Arc<UniversalLog>,
    /// The shared replica every combine pass drives forward. Write =
    /// combiner executing; read = wait-free GET snapshot.
    replica: RwLock<Handle<KvMap>>,
    /// Registered announce slots (one per live combining client).
    slots: RwLock<Vec<Arc<Slot>>>,
    /// Advisory single-combiner flag; correctness never depends on it.
    combiner_busy: AtomicBool,
    /// Owner reclaim of `CLAIMED` slots enabled (the lease rule). Off,
    /// a dead combiner parks its claims forever — the pinned-seed DST
    /// regression arm.
    lease: bool,
    /// Polls a waiter tolerates a `CLAIMED` slot before reclaiming.
    reclaim_after: u32,
    stats: Arc<CombineStats>,
    /// Test-only combiner-stall injection point, fired between the
    /// claim phase and the execute phase.
    #[cfg(test)]
    park: Mutex<Option<ParkHook>>,
}

/// What one poll of a published slot found.
pub(crate) enum SlotPoll {
    /// Delivered: one response word per published op.
    Ready(Vec<u64>),
    /// Delivered as divergence evidence (an error, never wrong data).
    Failed,
    /// Still `PENDING` — unclaimed, the poller may combine it itself.
    Pending,
    /// Some combiner holds the claim (it will deliver, or the lease
    /// rule will take the op back).
    Claimed,
}

/// A claim set taken by [`ShardCore::begin_combine`] and executed by
/// [`ShardCore::finish_combine`]. Dropping it without finishing models
/// a combiner crash exactly: the claims stay `CLAIMED` (no `Drop`
/// cleanup on purpose) until their owners reclaim them.
pub(crate) struct CombinePass {
    claimed: Vec<(Arc<Slot>, u32)>,
    forced: bool,
}

/// Test-only hook parked between claim and execute (takes the shard).
#[cfg(test)]
type ParkHook = Box<dyn Fn(usize) + Send + Sync>;

impl ShardCore {
    pub(crate) fn new(
        shard: usize,
        log: Arc<UniversalLog>,
        pid: u16,
        stats: Arc<CombineStats>,
        lease: bool,
        reclaim_after: u32,
    ) -> Self {
        let replica = Handle::new(Arc::clone(&log), pid, KvMap::default());
        ShardCore {
            shard,
            log,
            replica: RwLock::new(replica),
            slots: RwLock::new(Vec::new()),
            combiner_busy: AtomicBool::new(false),
            lease,
            reclaim_after,
            stats,
            #[cfg(test)]
            park: Mutex::new(None),
        }
    }

    /// Register a new client's announce slot.
    pub(crate) fn register(&self) -> Arc<Slot> {
        let slot = Slot::new();
        self.slots.write().push(Arc::clone(&slot));
        slot
    }

    /// Remove a dropped client's slot (it must be `EMPTY` — combining
    /// calls are synchronous, so a live call pins the client).
    pub(crate) fn unregister(&self, slot: &Arc<Slot>) {
        self.slots.write().retain(|s| !Arc::ptr_eq(s, slot));
    }

    /// Catch the core replica up to the end of the shard's log (used by
    /// verification). Returns the slots applied.
    pub(crate) fn catch_up(&self) -> usize {
        self.replica.write().catch_up()
    }

    /// Run `f` over the caught-up core replica (verification only).
    pub(crate) fn with_replica<R>(&self, f: impl FnOnce(&Handle<KvMap>) -> R) -> R {
        f(&self.replica.read())
    }

    #[cfg(test)]
    pub(crate) fn set_park_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        *self.park.lock() = Some(Box::new(hook));
    }

    fn park_point(&self) {
        #[cfg(test)]
        {
            // Take the hook out and *drop the lock* before running it:
            // the hook blocks (that is its job), and another combiner
            // must still be able to pass this point.
            let hook = self.park.lock().take();
            if let Some(hook) = hook {
                hook(self.shard);
            }
        }
    }

    /// The wait-free GET snapshot: observe the shard's tail, then
    /// answer from the core replica iff it has provably applied at
    /// least that far. `Ok(None)`-style misses return `None` (caller
    /// falls back to the combined path); divergence evidence surfaces
    /// as `Some(Err(shard))` so a corrupted shard refuses rather than
    /// answering from a broken log.
    pub(crate) fn fast_get(&self, key: u32) -> Option<Result<Option<u32>, usize>> {
        if self.log.divergence_detected() {
            return Some(Err(self.shard));
        }
        // `slots_created` counts every cell ever minted — a conservative
        // upper bound on the decided tail, so freshness proven against
        // it covers every operation that completed before this read
        // began (a completed op's slot is decided, hence created).
        let tail = self.log.slots_created();
        let replica = self.replica.read();
        if replica.applied_to() >= tail {
            self.stats.record_fastpath(true);
            Some(Ok(replica.state().peek(key)))
        } else {
            drop(replica);
            self.stats.record_fastpath(false);
            None
        }
    }

    /// Publish `ops` as one pending unit (non-blocking). The slot must
    /// be `EMPTY` — one in-flight unit per slot.
    pub(crate) fn publish(&self, mine: &Arc<Slot>, ops: &[u64]) {
        debug_assert!(!ops.is_empty());
        {
            let mut slot_ops = mine.ops.lock();
            slot_ops.clear();
            slot_ops.extend_from_slice(ops);
        }
        let word = mine.state.load(Ordering::Relaxed);
        debug_assert_eq!(state_of(word), EMPTY, "publish into a non-empty slot");
        mine.state
            .store(pack(PENDING, epoch_of(word)), Ordering::Release);
    }

    /// Whether `mine` currently holds an in-flight (non-`EMPTY`) unit.
    pub(crate) fn in_flight(&self, mine: &Arc<Slot>) -> bool {
        state_of(mine.state.load(Ordering::Acquire)) != EMPTY
    }

    /// One non-blocking look at a published slot. `waited` is how many
    /// polls the owner has already spent on this unit: past the reclaim
    /// bound, a still-`CLAIMED` op is taken back from its (stalled or
    /// dead) combiner and republished under a fresh epoch — the lease
    /// rule. Returns what the poll found; `Ready`/`Failed` consume the
    /// unit and release the slot.
    pub(crate) fn poll(&self, mine: &Arc<Slot>, waited: u32) -> SlotPoll {
        let word = mine.state.load(Ordering::Acquire);
        match state_of(word) {
            DONE => {
                let out = std::mem::take(&mut *mine.results.lock());
                mine.state
                    .store(pack(EMPTY, epoch_of(word)), Ordering::Release);
                SlotPoll::Ready(out)
            }
            FAILED => {
                mine.state
                    .store(pack(EMPTY, epoch_of(word)), Ordering::Release);
                SlotPoll::Failed
            }
            PENDING => SlotPoll::Pending,
            CLAIMED if self.lease && waited >= self.reclaim_after => {
                // Reclaim: CAS on the exact (CLAIMED, e) word, racing
                // the combiner's seal on the same word — exactly one
                // wins, so the op cannot be both republished and kept
                // in the stale batch.
                if mine
                    .state
                    .compare_exchange(
                        word,
                        pack(PENDING, epoch_of(word).wrapping_add(1)),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    self.stats.record_reclaim();
                    SlotPoll::Pending
                } else {
                    SlotPoll::Claimed
                }
            }
            _ => SlotPoll::Claimed,
        }
    }

    /// Claim phase of a combine pass: CAS every `PENDING` slot to
    /// `CLAIMED` (remembering its epoch). Returns `None` when the
    /// advisory flag was held (`force` bypasses it) or nothing was
    /// pending. Dropping the returned pass without
    /// [`ShardCore::finish_combine`] models a combiner crash.
    pub(crate) fn begin_combine(&self, force: bool) -> Option<CombinePass> {
        if !force
            && self
                .combiner_busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            return None;
        }
        // Claim phase — lock-free with respect to other combiners: each
        // slot moves (PENDING, e) → (CLAIMED, e) by CAS, so racing
        // combiners split the pending set and no op is taken twice.
        let mut claimed: Vec<(Arc<Slot>, u32)> = Vec::new();
        {
            let slots = self.slots.read();
            for s in slots.iter() {
                let word = s.state.load(Ordering::Acquire);
                if state_of(word) == PENDING
                    && s.state
                        .compare_exchange(
                            word,
                            pack(CLAIMED, epoch_of(word)),
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    claimed.push((Arc::clone(s), epoch_of(word)));
                }
            }
        }
        self.park_point();
        if claimed.is_empty() {
            if !force {
                self.combiner_busy.store(false, Ordering::Release);
            }
            return None;
        }
        Some(CombinePass {
            claimed,
            forced: force,
        })
    }

    /// Execute-and-distribute phase of a combine pass. Seals every
    /// still-held claim under the replica write lock, appends the
    /// sealed ops as one batched log record, and distributes results —
    /// all inside the same critical section, so a pass that runs at all
    /// runs to delivery. Returns whether any ops were drained.
    pub(crate) fn finish_combine(&self, pass: CombinePass) -> bool {
        let CombinePass { claimed, forced } = pass;
        let mut sealed: Vec<(Arc<Slot>, u32)> = Vec::with_capacity(claimed.len());
        let drained = {
            let mut replica = self.replica.write();
            // Seal: pin each claim with a CAS on its exact (CLAIMED, e)
            // word. A failed seal means the owner reclaimed the op — it
            // is someone else's to apply now, so it leaves the batch.
            for (s, e) in claimed {
                if s.state
                    .compare_exchange(
                        pack(CLAIMED, e),
                        pack(SEALED, e),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    sealed.push((s, e));
                }
            }
            if sealed.is_empty() {
                false
            } else {
                let mut words: Vec<u64> = Vec::new();
                let mut counts: Vec<usize> = Vec::with_capacity(sealed.len());
                for (s, _) in &sealed {
                    let ops = s.ops.lock();
                    words.extend_from_slice(&ops);
                    counts.push(ops.len());
                }
                // Execute — one decided slot for the whole drain.
                let resps = replica.invoke_many(&words);
                let diverged = self.log.divergence_detected();
                self.stats.record_pass(words.len());
                // Distribute, still under the lock: a sealed op is
                // always delivered by the pass that sealed it.
                let mut off = 0;
                for ((s, e), n) in sealed.iter().zip(&counts) {
                    {
                        let mut out = s.results.lock();
                        out.clear();
                        out.extend_from_slice(&resps[off..off + n]);
                    }
                    off += n;
                    s.state.store(
                        pack(if diverged { FAILED } else { DONE }, *e),
                        Ordering::Release,
                    );
                }
                true
            }
        };
        if !forced {
            self.combiner_busy.store(false, Ordering::Release);
        }
        drained
    }

    /// Publish `ops` as one pending unit and wait for a combiner
    /// (possibly this caller) to execute and deliver. Returns one
    /// response word per op, or the shard index on divergence. Built
    /// on the same publish/poll/begin/finish primitives the split-phase
    /// (simulation-drivable) API exposes.
    pub(crate) fn submit(&self, mine: &Arc<Slot>, ops: &[u64]) -> Result<Vec<u64>, usize> {
        self.publish(mine, ops);
        let mut spins = 0u32;
        loop {
            match self.poll(mine, spins) {
                SlotPoll::Ready(out) => return Ok(out),
                SlotPoll::Failed => return Err(self.shard),
                // Unclaimed: try to combine it ourselves — advisory
                // first, forced once the current combiner has had
                // ample time (it may have stalled after claiming a
                // disjoint set, or died holding the advisory flag; our
                // op is still up for grabs).
                SlotPoll::Pending => {
                    if self.combine(false) || (spins > FORCE_AFTER && self.combine(true)) {
                        continue;
                    }
                }
                // Claimed: a combiner owns it and will deliver (or the
                // poll above reclaims once `spins` passes the bound).
                SlotPoll::Claimed => {}
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// One full combine pass (claim + execute + distribute). Returns
    /// whether any ops were drained. `force` bypasses the advisory flag
    /// (the stalled-combiner takeover path).
    fn combine(&self, force: bool) -> bool {
        match self.begin_combine(force) {
            Some(pass) => self.finish_combine(pass),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Kv, KvOp, Store, StoreConfig, StoreError};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn combining_store(backend: Backend, shards: usize) -> Store {
        Store::new(
            StoreConfig::builder()
                .shards(shards)
                .backend(backend)
                .combining(true)
                .checkpoint_interval(16)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn combined_round_trip_and_verify() {
        let store = combining_store(Backend::reliable(), 4);
        let mut c = store.client();
        assert_eq!(c.put(1, 10).unwrap(), None);
        assert_eq!(c.put(1, 20).unwrap(), Some(10));
        assert_eq!(c.get(1).unwrap(), Some(20));
        assert_eq!(c.del(1).unwrap(), Some(20));
        assert_eq!(c.get(1).unwrap(), None);
        assert!(store.verify(&mut [c]).all_consistent());
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.passes > 0, "no combine passes recorded");
    }

    #[test]
    fn read_fast_path_hits_when_replica_is_fresh() {
        let store = combining_store(Backend::reliable(), 1);
        let mut c = store.client();
        c.put(7, 70).unwrap();
        // The put's own combine pass advanced the core replica to the
        // tail, so this GET must be a snapshot hit, not a log pass.
        let slots_before = store.shard_log(0).slots_created();
        assert_eq!(c.get(7).unwrap(), Some(70));
        assert_eq!(
            store.shard_log(0).slots_created(),
            slots_before,
            "fast-path GET appended to the log"
        );
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.fastpath_hits >= 1, "{stats:?}");
    }

    #[test]
    fn concurrent_combined_clients_stay_consistent_under_faults() {
        let store = std::sync::Arc::new(Store::new(
            StoreConfig::builder()
                .shards(4)
                .backend(Backend::robust())
                .rotate_kinds(true)
                .combining(true)
                .checkpoint_interval(16)
                .build()
                .unwrap(),
        ));
        let mut clients: Vec<_> = std::thread::scope(|scope| {
            (0..4u32)
                .map(|w| {
                    let store = std::sync::Arc::clone(&store);
                    scope.spawn(move || {
                        let mut c = store.client();
                        for i in 0..300u32 {
                            let key = (w * 1000 + i) % 97;
                            match i % 4 {
                                0 => {
                                    c.put(key, i).unwrap();
                                }
                                3 => {
                                    c.del(key).unwrap();
                                }
                                _ => {
                                    c.get(key).unwrap();
                                }
                            }
                        }
                        c
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let report = store.verify(&mut clients);
        assert!(
            report.all_consistent(),
            "diverged: {:?}",
            report.diverged_shards()
        );
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.combined_ops > 0);
    }

    #[test]
    fn parked_combiner_is_taken_over_without_dropping_ops() {
        // Adversary: client A claims its op and parks mid-drain (between
        // claim and execute). Client B must take over — B's op was not
        // claimed — complete, and when A resumes, A's claimed op must
        // complete too: nothing dropped, nothing duplicated.
        let store = std::sync::Arc::new(combining_store(Backend::reliable(), 1));
        let gate = std::sync::Arc::new(Barrier::new(2));
        let parked = std::sync::Arc::new(AtomicUsize::new(0));
        {
            let gate = std::sync::Arc::clone(&gate);
            let parked = std::sync::Arc::clone(&parked);
            store.shard_core_for_tests(0).set_park_hook(move |_| {
                parked.fetch_add(1, Ordering::SeqCst);
                gate.wait(); // .. b published
                gate.wait(); // .. b completed
            });
        }
        let a_result = std::thread::scope(|scope| {
            let a = {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    let mut a = store.client();
                    // The hook is armed: A's own combine pass parks
                    // after claiming A's put.
                    a.put(1, 11).unwrap()
                })
            };
            // Wait until A is parked holding its claim.
            while parked.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            let mut b = store.client();
            gate.wait();
            // B combines for itself despite A's advisory flag being
            // held (the forced-takeover path) — B must complete while A
            // is still parked.
            assert_eq!(b.put(2, 22).unwrap(), None);
            assert_eq!(b.get(2).unwrap(), Some(22));
            gate.wait(); // release A
            a.join().unwrap()
        });
        assert_eq!(a_result, None, "A's put must have applied exactly once");
        let mut c = store.client();
        assert_eq!(c.get(1).unwrap(), Some(11));
        assert_eq!(c.get(2).unwrap(), Some(22));
        assert!(store.verify(&mut [c]).all_consistent());
    }

    #[test]
    fn reclaim_cannot_double_apply_against_a_resuming_combiner() {
        // The seal/reclaim race, driven deterministically through the
        // split-phase API: A claims both pending units and stalls
        // (models a combiner killed between claim and execute); B
        // outwaits the lease bound, reclaims its op, and force-combines
        // it past A's wedged advisory flag. When A resumes, the seal on
        // B's slot must fail — B's op was someone else's to apply — so
        // each op applies exactly once.
        let store = Store::new(
            StoreConfig::builder()
                .shards(1)
                .backend(Backend::reliable())
                .combining(true)
                .reclaim_after(4)
                .build()
                .unwrap(),
        );
        let mut a = store.client();
        let mut b = store.client();
        let mut pa = a.publish_to_shard(0, &[KvOp::Put(1, 11)]).unwrap();
        let mut pb = b.publish_to_shard(0, &[KvOp::Put(2, 22)]).unwrap();
        let ticket = a.combine_begin(0, false).expect("nothing was pending");
        // B's first polls find the unit claimed; past the bound the
        // embedded reclaim republishes it under a fresh epoch.
        for _ in 0..8 {
            assert!(b.poll_published(&mut pb).unwrap().is_none());
        }
        assert!(
            b.combine_begin(0, false).is_none(),
            "the stalled pass still holds the advisory flag"
        );
        let tb = b.combine_begin(0, true).expect("reclaimed op not pending");
        assert!(b.combine_finish(tb));
        assert_eq!(b.poll_published(&mut pb).unwrap(), Some(vec![None]));
        // A resumes its stale pass: B's slot drops out via the failed
        // seal CAS, A's own op still applies.
        assert!(a.combine_finish(ticket));
        assert_eq!(a.poll_published(&mut pa).unwrap(), Some(vec![None]));
        let stats = store.combine_snapshot().unwrap();
        assert!(stats.reclaims >= 1, "{stats:?}");
        assert_eq!(stats.combined_ops, 2, "an op was applied twice: {stats:?}");
        let mut c = store.client();
        assert_eq!(c.get(1).unwrap(), Some(11));
        assert_eq!(c.get(2).unwrap(), Some(22));
        assert!(store.verify(&mut [a, b, c]).all_consistent());
    }

    #[test]
    fn without_lease_a_dead_combiner_parks_claimed_ops() {
        // The ROADMAP bug the lease rule fixes, pinned at unit level
        // (the DST kill-the-combiner scenario pins it at whole-system
        // level): with `combiner_lease(false)`, an op claimed by a dead
        // combiner is stuck — no amount of polling reclaims it, and a
        // forced takeover pass finds nothing pending to drain.
        let store = Store::new(
            StoreConfig::builder()
                .shards(1)
                .backend(Backend::reliable())
                .combining(true)
                .combiner_lease(false)
                .reclaim_after(4)
                .build()
                .unwrap(),
        );
        let mut a = store.client();
        let mut b = store.client();
        let mut pa = a.publish_to_shard(0, &[KvOp::Put(1, 11)]).unwrap();
        let mut pb = b.publish_to_shard(0, &[KvOp::Put(2, 22)]).unwrap();
        let ticket = a.combine_begin(0, false).expect("nothing was pending");
        for _ in 0..64 {
            assert!(
                b.poll_published(&mut pb).unwrap().is_none(),
                "parked op delivered with the lease off"
            );
        }
        assert!(
            b.combine_begin(0, true).is_none(),
            "a CLAIMED op must not be re-claimable without the lease"
        );
        // Only the original combiner resuming can unpark the ops.
        assert!(a.combine_finish(ticket));
        assert_eq!(a.poll_published(&mut pa).unwrap(), Some(vec![None]));
        assert_eq!(b.poll_published(&mut pb).unwrap(), Some(vec![None]));
    }

    #[test]
    fn combined_batch_matches_uncombined_batch_results() {
        // Deterministic cross-check (the proptest in lib.rs covers the
        // randomized version across backends).
        let ops: Vec<KvOp> = (0..40u32)
            .flat_map(|k| [KvOp::Put(k, k + 1), KvOp::Get(k), KvOp::Del(k)])
            .collect();
        let run = |combining: bool| -> Vec<Option<u32>> {
            let store = Store::new(
                StoreConfig::builder()
                    .shards(4)
                    .backend(Backend::reliable())
                    .combining(combining)
                    .build()
                    .unwrap(),
            );
            let mut c = store.client();
            let out = c.batch(&ops).unwrap();
            assert!(store.verify(&mut [c]).all_consistent());
            out
        };
        assert_eq!(run(true), run(false));
    }

    /// The acceptance claim, kind by kind: combining changes the
    /// submission path, not the tolerance envelope — under each fault
    /// kind the robust backend tolerates, concurrent combining clients
    /// end with every replica verified consistent.
    #[test]
    fn every_tolerated_fault_kind_verifies_with_combining() {
        for kind in [
            ff_spec::FaultKind::Overriding,
            ff_spec::FaultKind::Silent,
            ff_spec::FaultKind::Arbitrary,
        ] {
            let store = std::sync::Arc::new(Store::new(
                StoreConfig::builder()
                    .shards(2)
                    .backend(Backend::robust())
                    .fault(crate::FaultConfig {
                        kind,
                        rate: 0.3,
                        // Silent faults are only tolerable on a finite
                        // budget (unbounded silent = nontermination).
                        t: ff_spec::Bound::Finite(3),
                        ..crate::FaultConfig::default()
                    })
                    .combining(true)
                    .checkpoint_interval(16)
                    .build()
                    .unwrap(),
            ));
            let mut clients: Vec<_> = std::thread::scope(|scope| {
                (0..3u32)
                    .map(|w| {
                        let store = std::sync::Arc::clone(&store);
                        scope.spawn(move || {
                            let mut c = store.client();
                            for i in 0..150u32 {
                                let key = (w * 500 + i) % 61;
                                match i % 3 {
                                    0 => {
                                        c.put(key, i).unwrap();
                                    }
                                    1 => {
                                        c.get(key).unwrap();
                                    }
                                    _ => {
                                        c.del(key).unwrap();
                                    }
                                }
                            }
                            c
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let report = store.verify(&mut clients);
            assert!(
                report.all_consistent(),
                "{kind:?}: diverged shards {:?}",
                report.diverged_shards()
            );
        }
    }

    #[test]
    fn corruption_is_detected_through_the_combined_path() {
        // Arbitrary-faulting naive cells corrupt the log even against a
        // single serialized proposer (combining funnels every propose
        // through the core replica, so overriding faults — which need
        // racing proposes — cannot fire here). Combining must never
        // hide the corruption: it surfaces mid-run as a `Divergence`
        // error (a decided cell resolves to junk with no announce
        // record) or at verification.
        let mut saw_detection = false;
        for seed in 0..20 {
            let store = std::sync::Arc::new(Store::new(
                StoreConfig::builder()
                    .shards(1)
                    .backend(Backend::naive())
                    .fault(crate::FaultConfig {
                        kind: ff_spec::FaultKind::Arbitrary,
                        rate: 1.0,
                        ..crate::FaultConfig::default()
                    })
                    .combining(true)
                    .checkpoint_interval(8)
                    .seed(seed)
                    .build()
                    .unwrap(),
            ));
            let errors: Vec<Option<StoreError>> = std::thread::scope(|scope| {
                (0..3u32)
                    .map(|w| {
                        let store = std::sync::Arc::clone(&store);
                        scope.spawn(move || {
                            let mut c = store.client();
                            for i in 0..40 {
                                if let Err(e) = c.put((w * 100 + i) % 50, i) {
                                    return Some(e);
                                }
                            }
                            None
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let mid_run = errors
                .iter()
                .flatten()
                .any(|e| matches!(e, StoreError::Divergence { .. }));
            let at_verify = !store.verify(&mut []).all_consistent();
            if mid_run || at_verify {
                saw_detection = true;
                break;
            }
        }
        assert!(
            saw_detection,
            "naive cells at 100% fault rate were never detected via combining"
        );
    }
}
